//! The multi-session MI host: one engine process, many supervised
//! sessions.
//!
//! The paper's deployment shape — one tracker, one `mi-server` child —
//! caps a machine at tens of concurrent users, because every session
//! pays a whole OS process. [`SessionHost`] multiplexes instead: a
//! session table keyed by the `session` id carried in the
//! sequence-numbered [`CommandFrame`] envelope, an acceptor that takes
//! any number of client connections, and a small worker pool (N OS
//! threads driving M sessions via a run queue). A session with no
//! pending commands is *parked* — a table entry holding its engine, not
//! a blocked thread — so thousands of idle sessions cost memory only.
//!
//! ```text
//!  conn A ──reader──┐                   ┌─ worker 0 ─┐
//!  conn B ──reader──┼─► session table ──┤  run queue │──► engines
//!  conn C ──reader──┘   (parked M)      └─ worker N ─┘
//! ```
//!
//! Per session the host keeps an engine, an [`obs::Registry`] and export
//! ring of its own (so `Telemetry{since}` and `ProfileReport{since}`
//! cursors never bleed across sessions), and the last sequence number it
//! served (so duplicated or stale frames are rejected with typed errors
//! instead of desynchronizing the stream). Sessions belong to the
//! connection that opened them; a frame addressing another connection's
//! session is refused.
//!
//! Failure routing is per-session, never host-fatal: a connection whose
//! transport dies takes down *its* sessions (each ended like a
//! [`crate::ServeEnd::PeerClosed`] single-session serve) while every
//! other connection keeps being served. The client side
//! ([`HostHandle`] / [`SessionHandle`]) preserves the PR 3 supervision
//! contract: a dead session is reopened *inside* the host by the
//! tracker's journal replay, and a dead host process is respawned whole,
//! after which each tracker re-establishes its own session.

use crate::protocol::{Command, CommandFrame, ResourceKind, Response, ResponseFrame};
use crate::server::{CommandPort, Engine, SliceOutcome};
use crate::transport::{FrameRx, FrameTx, StreamFrameRx, StreamFrameTx, TransportCounters};
use crate::MiError;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead as _, BufReader};
use std::path::PathBuf;
use std::process::{Child, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A connection's send half, shared between the acceptor (typed errors)
/// and every worker serving one of its sessions.
type SharedTx = Arc<Mutex<Box<dyn FrameTx>>>;

/// Default fuel for one engine slice, in VM steps.
pub const DEFAULT_SLICE_STEPS: u64 = 50_000;

/// Resource-governance knobs for a [`SessionHost`].
///
/// The defaults keep preemption on: a hot-loop tenant costs one time
/// slice per turn instead of a worker thread forever. Admission limits
/// (`max_sessions`, `queue_high_water`) default to off because the
/// right capacity is a deployment decision; the per-session queue bound
/// defaults on because an unbounded queue is a memory bomb any client
/// can trigger.
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Worker threads driving the run queue.
    pub workers: usize,
    /// Hard cap on concurrently open sessions; opens past it are
    /// rejected with the retryable [`Response::Overloaded`].
    pub max_sessions: Option<usize>,
    /// Fuel for one engine slice, in VM steps. `None` disables
    /// preemption — a control command then runs to its next pause
    /// uninterrupted and a hot loop pins a worker (the pre-governance
    /// behavior, kept for A/B measurements).
    pub slice_steps: Option<u64>,
    /// Run-queue high-water mark: session commands arriving while at
    /// least this many sessions are runnable get the retryable
    /// [`Response::Overloaded`] instead of queueing behind a collapse.
    pub queue_high_water: Option<usize>,
    /// Per-session command-queue bound applied when the session has not
    /// set its own `max_queue_depth` via [`Command::SetLimits`].
    pub default_queue_depth: u64,
    /// A session continuously on a worker for longer than this is
    /// flagged by the watchdog (`mi.host.watchdog_flags`). With slicing
    /// on, one slice should never take this long — a flag means a stuck
    /// engine (a bug), not a long program (which yields).
    pub watchdog_ms: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            workers: 4,
            max_sessions: None,
            slice_steps: Some(DEFAULT_SLICE_STEPS),
            queue_high_water: None,
            default_queue_depth: 1024,
            watchdog_ms: 1_000,
        }
    }
}

/// One queued command for a parked or running session.
struct Job {
    seq: u64,
    trace: Option<obs::TraceContext>,
    cmd: Command,
}

/// The per-session state a worker takes ownership of while serving.
struct SessionState {
    engine: Box<dyn Engine + Send>,
    /// Session-private registry: `mi.server.cmd.*` counters and VM spans
    /// land here, and *only* this session's `Telemetry` drains read it.
    registry: obs::Registry,
    /// Session-private export ring backing event drains. Independent
    /// rings are what keep `Telemetry{since}` cursors per-session: one
    /// shared ring would interleave every session's events under one
    /// index space and bleed reads across drains.
    export: Arc<obs::ExportSink>,
    /// A control command preempted mid-run: the engine holds the paused
    /// inferior, this holds the reply routing, and the next slice picks
    /// both up via [`Engine::resume_sliced`]. Living in the state (not
    /// the slot) means only the worker holding the session can touch it.
    in_flight: Option<InFlight>,
}

/// Reply routing for a command that yielded between slices.
struct InFlight {
    seq: u64,
    trace: Option<obs::TraceContext>,
}

/// A session-table slot. `state` is `Some` while parked, `None` while a
/// worker is driving the session.
struct SessionSlot {
    conn: u64,
    tx: SharedTx,
    queue: VecDeque<Job>,
    running: bool,
    /// Close requested (explicitly or by connection death) while a
    /// worker held the state; the worker removes the slot when done and
    /// counts the end under this label.
    closed: Option<&'static str>,
    /// Highest sequence number accepted so far; lower or equal is a
    /// duplicate/stale frame and is refused with a typed error.
    last_seq: Option<u64>,
    state: Option<Box<SessionState>>,
    /// Host-enforced budgets set by `SetLimits` (wall clock and queue
    /// depth; steps and heap are the engine's to enforce).
    max_wall_ms: Option<u64>,
    max_queue_depth: Option<u64>,
    /// Engine wall time this session has consumed across all slices.
    wall_spent: Duration,
    /// When a worker started the session's current slice; `None` while
    /// parked or queued. The watchdog reads this.
    running_since: Option<Instant>,
    /// The watchdog already flagged the current slice (one flag per
    /// overdue slice, not one per scan).
    watchdog_flagged: bool,
}

enum Work {
    Run(u64),
    Stop,
}

/// The run queue feeding the worker pool: a plain FIFO of runnable
/// session ids, multi-producer (acceptor threads) and multi-consumer
/// (workers). Fairness comes from FIFO order plus the one-batch-per-
/// wakeup worker loop: a chatty session goes to the back of the line
/// after each batch.
struct RunQueue {
    q: Mutex<VecDeque<Work>>,
    cv: std::sync::Condvar,
}

impl RunQueue {
    fn new() -> Self {
        RunQueue {
            q: Mutex::new(VecDeque::new()),
            cv: std::sync::Condvar::new(),
        }
    }

    fn push(&self, w: Work) {
        self.q.lock().expect("run queue").push_back(w);
        self.cv.notify_one();
    }

    fn pop(&self) -> Work {
        let mut q = self.q.lock().expect("run queue");
        loop {
            if let Some(w) = q.pop_front() {
                return w;
            }
            q = self.cv.wait(q).expect("run queue");
        }
    }

    /// Runnable sessions currently waiting for a worker — the load
    /// signal behind the `queue_high_water` admission check and the
    /// `mi.host.run_queue_depth` gauge.
    fn len(&self) -> usize {
        self.q.lock().expect("run queue").len()
    }
}

struct HostShared {
    sessions: Mutex<HashMap<u64, SessionSlot>>,
    run_queue: RunQueue,
    next_session: AtomicU64,
    registry: obs::Registry,
    config: HostConfig,
    /// Recordings published with `PublishTrace`, shared read-only with
    /// every replay session `OpenReplay` spawns over them — one store,
    /// many concurrent scrubbing readers.
    shelf: crate::record::TraceShelf,
    /// Tells the watchdog thread to exit; workers stop via `Work::Stop`.
    shutdown: AtomicBool,
}

impl HostShared {
    fn queue_depth_gauge(&self) {
        self.registry
            .set_gauge("mi.host.run_queue_depth", self.run_queue.len() as u64);
    }
}

/// The session host: session table + acceptor + worker pool + watchdog.
pub struct SessionHost {
    shared: Arc<HostShared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    next_conn: AtomicU64,
}

/// Handle to one accepted connection; dropping it detaches the reader
/// thread (which exits on its own when the peer closes).
pub struct ConnHandle {
    /// Host-assigned connection id.
    pub id: u64,
    join: Option<JoinHandle<()>>,
}

impl ConnHandle {
    /// Blocks until the connection's reader thread exits (peer closed
    /// or transport failed). The `mi-server --host` binary joins its
    /// stdio connection here.
    pub fn join(mut self) {
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }
}

impl SessionHost {
    /// Creates a host with `workers` OS threads, default governance
    /// ([`HostConfig`]) and a private registry.
    pub fn new(workers: usize) -> Self {
        Self::with_registry(workers, obs::Registry::new())
    }

    /// Like [`SessionHost::new`], but host-level metrics (session opens
    /// and ends, rejected frames, malformed traffic) land in `registry`.
    pub fn with_registry(workers: usize, registry: obs::Registry) -> Self {
        Self::with_config(
            HostConfig {
                workers,
                ..HostConfig::default()
            },
            registry,
        )
    }

    /// Full control over the governance knobs: worker count, session
    /// cap, slice fuel, queue bounds and watchdog threshold.
    pub fn with_config(config: HostConfig, registry: obs::Registry) -> Self {
        let shared = Arc::new(HostShared {
            sessions: Mutex::new(HashMap::new()),
            run_queue: RunQueue::new(),
            next_session: AtomicU64::new(1),
            registry,
            config,
            shelf: crate::record::new_shelf(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("mi-host-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn host worker")
            })
            .collect();
        let watchdog = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("mi-host-watchdog".into())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawn host watchdog")
        };
        SessionHost {
            shared,
            workers,
            watchdog: Some(watchdog),
            next_conn: AtomicU64::new(1),
        }
    }

    /// Host-level metrics registry.
    pub fn registry(&self) -> &obs::Registry {
        &self.shared.registry
    }

    /// Number of open sessions across all connections.
    pub fn session_count(&self) -> usize {
        self.shared.sessions.lock().expect("session table").len()
    }

    /// Accepts one client connection: a reader thread pumps its frames
    /// into the session table until the transport dies or the peer
    /// closes, at which point the connection's sessions end
    /// individually and every other connection keeps being served.
    pub fn accept<R, T>(&self, rx: R, tx: T) -> ConnHandle
    where
        R: FrameRx + 'static,
        T: FrameTx + 'static,
    {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let shared = self.shared.clone();
        let shared_tx: SharedTx = Arc::new(Mutex::new(Box::new(tx)));
        let mut rx: Box<dyn FrameRx> = Box::new(rx);
        let join = std::thread::Builder::new()
            .name(format!("mi-host-conn-{id}"))
            .spawn(move || conn_reader(&shared, id, &mut rx, &shared_tx))
            .expect("spawn host connection reader");
        ConnHandle {
            id,
            join: Some(join),
        }
    }

    /// Stops the worker pool and joins it. Reader threads exit on their
    /// own when their peers close.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for _ in &self.workers {
            self.shared.run_queue.push(Work::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SessionHost {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Serializes and ships one response frame on a connection. A failed
/// send means the connection is gone; the caller treats that like a
/// peer close for whatever session it was serving.
fn reply(tx: &SharedTx, frame: &ResponseFrame) -> Result<(), MiError> {
    let bytes = serde_json::to_vec(frame).expect("responses always serialize");
    tx.lock().expect("connection writer").send(&bytes)
}

fn typed_error(seq: u64, session: Option<u64>, message: String) -> ResponseFrame {
    ResponseFrame {
        seq,
        resp: Response::Error { message },
        session,
    }
}

/// The typed liveness rejection: the addressed session no longer exists
/// (or is on its way out). Distinct from [`typed_error`] so the client
/// can treat it as engine loss — supervision then re-opens the session
/// and replays its journal — rather than as a command failure.
fn session_gone(seq: u64, sid: u64) -> ResponseFrame {
    ResponseFrame {
        seq,
        resp: Response::SessionGone { session: sid },
        session: Some(sid),
    }
}

/// One connection's reader loop: decode, route control commands inline,
/// enqueue session commands, and on transport death end this
/// connection's sessions — never the host.
fn conn_reader(shared: &Arc<HostShared>, conn: u64, rx: &mut dyn FrameRx, tx: &SharedTx) {
    loop {
        let frame = match rx.recv() {
            Ok(frame) => frame,
            Err(MiError::Codec(m)) => {
                // Framing-level garbage: report on this connection and
                // keep it alive, like the single-session serve loop.
                shared.registry.inc("mi.host.malformed");
                let resp = Response::Error {
                    message: format!("unreadable frame: {m}"),
                };
                let bytes = serde_json::to_vec(&resp).expect("responses always serialize");
                if tx.lock().expect("connection writer").send(&bytes).is_err() {
                    break;
                }
                continue;
            }
            // Disconnected or anything else: the connection is over.
            Err(_) => break,
        };
        let cf = match serde_json::from_slice::<CommandFrame>(&frame) {
            Ok(cf) => cf,
            Err(e) => {
                shared.registry.inc("mi.host.malformed");
                let resp = Response::Error {
                    message: format!("malformed command: {e}"),
                };
                let bytes = serde_json::to_vec(&resp).expect("responses always serialize");
                if tx.lock().expect("connection writer").send(&bytes).is_err() {
                    break;
                }
                continue;
            }
        };
        let rf = match (cf.session, cf.cmd) {
            (None, Command::OpenSession { file, source, opt }) => {
                shared.registry.inc("mi.host.cmd.OpenSession");
                let resp = open_session(shared, conn, tx, &file, &source, opt);
                ResponseFrame {
                    seq: cf.seq,
                    resp,
                    session: None,
                }
            }
            (None, Command::CloseSession { session }) => {
                shared.registry.inc("mi.host.cmd.CloseSession");
                let resp = close_session(shared, conn, session);
                ResponseFrame {
                    seq: cf.seq,
                    resp,
                    session: None,
                }
            }
            (None, Command::OpenReplay { name }) => {
                shared.registry.inc("mi.host.cmd.OpenReplay");
                let resp = open_replay(shared, conn, tx, &name);
                ResponseFrame {
                    seq: cf.seq,
                    resp,
                    session: None,
                }
            }
            (None, Command::Ping) => ResponseFrame {
                seq: cf.seq,
                resp: Response::Pong {
                    now_us: shared.registry.now_us(),
                },
                session: None,
            },
            (None, Command::Telemetry { since }) => ResponseFrame {
                seq: cf.seq,
                resp: Response::Telemetry(Box::new(obs::telemetry::collect_frame(
                    &shared.registry,
                    None,
                    since,
                ))),
                session: None,
            },
            (None, cmd) => {
                shared.registry.inc("mi.host.rejected.no_session");
                typed_error(
                    cf.seq,
                    None,
                    format!("{} requires a session id in the envelope", cmd.kind()),
                )
            }
            (
                Some(_),
                cmd @ (Command::OpenSession { .. }
                | Command::CloseSession { .. }
                | Command::OpenReplay { .. }),
            ) => {
                shared.registry.inc("mi.host.rejected.control_in_session");
                typed_error(
                    cf.seq,
                    cf.session,
                    format!(
                        "{} is a control command; send it with no session id",
                        cmd.kind()
                    ),
                )
            }
            (Some(sid), cmd) => {
                if let Some(rf) = enqueue(shared, conn, sid, cf.seq, cf.trace, cmd) {
                    rf
                } else {
                    continue;
                }
            }
        };
        if reply(tx, &rf).is_err() {
            break;
        }
    }
    end_connection_sessions(shared, conn);
}

/// Compiles a program shipped in `OpenSession` and registers a fresh
/// session for it. Compilation runs on the acceptor thread — it is the
/// once-per-session cost, and keeping it off the worker pool means a
/// giant program cannot stall other sessions' command service.
/// The typed admission rejection for opens past `max_sessions`.
fn overloaded_open(shared: &HostShared, open: usize, cap: usize) -> Response {
    shared.registry.inc("mi.host.rejected_overloaded");
    Response::Overloaded {
        load: open as u64,
        limit: cap as u64,
    }
}

fn open_session(
    shared: &Arc<HostShared>,
    conn: u64,
    tx: &SharedTx,
    file: &str,
    source: &str,
    opt: u8,
) -> Response {
    // Admission control, checked before compiling so a full host sheds
    // load at the cheapest possible point.
    if let Some(cap) = shared.config.max_sessions {
        let open = shared.sessions.lock().expect("session table").len();
        if open >= cap {
            return overloaded_open(shared, open, cap);
        }
    }
    let registry = obs::Registry::new();
    let shelf = Some(shared.shelf.clone());
    let engine: Box<dyn Engine + Send> = if file.ends_with(".s") || file.ends_with(".asm") {
        match miniasm::asm::assemble(file, source) {
            Ok(p) => {
                let mut e = crate::asm_engine::AsmEngine::new(&p);
                e.set_registry(registry.clone());
                Box::new(crate::record::RecordingEngine::with_shelf(e, shelf))
            }
            Err(e) => {
                return Response::Error {
                    message: e.to_string(),
                }
            }
        }
    } else {
        match minic::compile(file, source)
            .map_err(|e| e.to_string())
            .and_then(|p| crate::minic_engine::MinicEngine::with_opt(&p, opt))
        {
            Ok(mut e) => {
                e.set_registry(registry.clone());
                Box::new(crate::record::RecordingEngine::with_shelf(e, shelf))
            }
            Err(message) => return Response::Error { message },
        }
    };
    register_session(shared, conn, tx, engine, registry)
}

/// Opens a replay session over a recording on the host's trace shelf.
/// The shared `Arc<trace::Store>` is cloned, never the recording itself:
/// every replay session scrubs the same bytes with its own cursor,
/// segment cache, and registry.
fn open_replay(shared: &Arc<HostShared>, conn: u64, tx: &SharedTx, name: &str) -> Response {
    if let Some(cap) = shared.config.max_sessions {
        let open = shared.sessions.lock().expect("session table").len();
        if open >= cap {
            return overloaded_open(shared, open, cap);
        }
    }
    let store = match shared.shelf.lock().expect("trace shelf").get(name) {
        Some(store) => store.clone(),
        None => {
            return Response::Error {
                message: format!("no recording published as {name:?}"),
            }
        }
    };
    let registry = obs::Registry::new();
    let engine =
        crate::record::ReplayEngine::new(store, registry.clone()).with_shelf(shared.shelf.clone());
    register_session(shared, conn, tx, Box::new(engine), registry)
}

/// Registers a compiled engine in the session table — the tail shared by
/// `OpenSession` and `OpenReplay`.
fn register_session(
    shared: &Arc<HostShared>,
    conn: u64,
    tx: &SharedTx,
    engine: Box<dyn Engine + Send>,
    registry: obs::Registry,
) -> Response {
    let export = Arc::new(obs::ExportSink::new(1024));
    registry.add_sink(export.clone());
    let sid = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let mut table = shared.sessions.lock().expect("session table");
    // Re-check under the lock: concurrent opens race past the early
    // check, and `max_sessions` is a hard cap.
    if let Some(cap) = shared.config.max_sessions {
        if table.len() >= cap {
            return overloaded_open(shared, table.len(), cap);
        }
    }
    table.insert(
        sid,
        SessionSlot {
            conn,
            tx: tx.clone(),
            queue: VecDeque::new(),
            running: false,
            closed: None,
            last_seq: None,
            state: Some(Box::new(SessionState {
                engine,
                registry,
                export,
                in_flight: None,
            })),
            max_wall_ms: None,
            max_queue_depth: None,
            wall_spent: Duration::ZERO,
            running_since: None,
            watchdog_flagged: false,
        },
    );
    shared.registry.inc("mi.host.session_open");
    shared
        .registry
        .set_gauge("mi.host.sessions_open", table.len() as u64);
    Response::SessionOpened { session: sid }
}

/// Explicit close. Only the owning connection may close a session;
/// closing an unknown (or already-closed) id is a typed error the
/// caller can treat as "already done".
fn close_session(shared: &Arc<HostShared>, conn: u64, sid: u64) -> Response {
    let mut table = shared.sessions.lock().expect("session table");
    match table.get_mut(&sid) {
        None => Response::Error {
            message: format!("unknown session {sid}"),
        },
        Some(slot) if slot.conn != conn => {
            shared.registry.inc("mi.host.rejected.foreign_session");
            Response::Error {
                message: format!("session {sid} belongs to another connection"),
            }
        }
        Some(slot) => {
            if slot.running {
                // A worker holds the state; it removes the slot when it
                // finishes the current batch.
                slot.closed = Some("closed");
            } else {
                table.remove(&sid);
                finish_session(shared, &table, "closed");
            }
            Response::Ok
        }
    }
}

/// Bookkeeping shared by every way a session can end.
fn finish_session(shared: &HostShared, table: &HashMap<u64, SessionSlot>, how: &str) {
    shared.registry.inc(&format!("mi.host.session_end.{how}"));
    shared
        .registry
        .set_gauge("mi.host.sessions_open", table.len() as u64);
}

/// Validates and queues one session command; wakes a worker when the
/// session is parked. Returns a typed-error frame to ship when the
/// envelope is rejected.
fn enqueue(
    shared: &Arc<HostShared>,
    conn: u64,
    sid: u64,
    seq: u64,
    trace: Option<obs::TraceContext>,
    cmd: Command,
) -> Option<ResponseFrame> {
    let mut table = shared.sessions.lock().expect("session table");
    match table.get_mut(&sid) {
        None => {
            shared.registry.inc("mi.host.rejected.unknown_session");
            Some(session_gone(seq, sid))
        }
        Some(slot) if slot.conn != conn => {
            // Session ids are never guessable into someone else's
            // stream: isolation between connections is structural.
            shared.registry.inc("mi.host.rejected.foreign_session");
            Some(typed_error(
                seq,
                Some(sid),
                format!("session {sid} belongs to another connection"),
            ))
        }
        Some(slot) if slot.closed.is_some() => {
            shared.registry.inc("mi.host.rejected.unknown_session");
            Some(session_gone(seq, sid))
        }
        Some(slot) => {
            if slot.last_seq.is_some_and(|last| seq <= last) {
                // A duplicated or replayed frame. Refusing it (rather
                // than serving it twice) is what keeps one faulty frame
                // from desynchronizing the rest of the stream: the
                // client discards this error as stale if its real
                // command already completed.
                shared.registry.inc("mi.host.rejected.stale_seq");
                return Some(typed_error(
                    seq,
                    Some(sid),
                    format!(
                        "stale or duplicate seq {seq} for session {sid} (last served {})",
                        slot.last_seq.unwrap_or(0)
                    ),
                ));
            }
            // Backpressure, per-session depth first: a rejected frame
            // is not accepted, so it does not advance `last_seq` — the
            // client retries with a fresh seq after backing off.
            let depth = slot.queue.len() as u64;
            let depth_limit = slot
                .max_queue_depth
                .unwrap_or(shared.config.default_queue_depth);
            if depth >= depth_limit {
                shared.registry.inc("mi.host.rejected_queue_full");
                return Some(ResponseFrame {
                    seq,
                    resp: Response::QueueFull {
                        depth,
                        limit: depth_limit,
                    },
                    session: Some(sid),
                });
            }
            // Then the global high-water mark: when too many sessions
            // are already runnable, shed load instead of queueing into
            // latency collapse.
            if let Some(hw) = shared.config.queue_high_water {
                let load = shared.run_queue.len();
                if load >= hw {
                    shared.registry.inc("mi.host.rejected_overloaded");
                    return Some(ResponseFrame {
                        seq,
                        resp: Response::Overloaded {
                            load: load as u64,
                            limit: hw as u64,
                        },
                        session: Some(sid),
                    });
                }
            }
            slot.last_seq = Some(seq);
            slot.queue.push_back(Job { seq, trace, cmd });
            if !slot.running && slot.state.is_some() {
                slot.running = true;
                shared.run_queue.push(Work::Run(sid));
                shared.queue_depth_gauge();
            }
            None
        }
    }
}

/// Ends every session owned by a dead connection — the multi-session
/// analogue of a single-session serve returning `PeerClosed`. Sessions
/// currently held by a worker are flagged and removed by that worker;
/// all other connections are untouched.
fn end_connection_sessions(shared: &Arc<HostShared>, conn: u64) {
    let mut table = shared.sessions.lock().expect("session table");
    let mine: Vec<u64> = table
        .iter()
        .filter(|(_, slot)| slot.conn == conn)
        .map(|(sid, _)| *sid)
        .collect();
    for sid in mine {
        let slot = table.get_mut(&sid).expect("session listed");
        if slot.running {
            slot.closed = Some("peer_closed");
            // The worker counts the end when it drops the state.
        } else {
            table.remove(&sid);
            finish_session(shared, &table, "peer_closed");
        }
    }
}

/// Executes one command against a session's engine under a fuel bound,
/// mirroring the single-session serve loop: `Ping` and `Telemetry`
/// answered at the boundary from the *session's* registry and export
/// ring, everything else handed to the engine under the caller's trace
/// context. `fuel: None` means unsliced (run to the next pause).
fn serve_one(
    state: &mut SessionState,
    trace: Option<obs::TraceContext>,
    cmd: Command,
    fuel: Option<u64>,
) -> SliceOutcome {
    state.registry.inc(&format!("mi.server.cmd.{}", cmd.kind()));
    match cmd {
        Command::Ping => SliceOutcome::Done(Response::Pong {
            now_us: state.registry.now_us(),
        }),
        Command::Telemetry { since } => SliceOutcome::Done(Response::Telemetry(Box::new(
            obs::telemetry::collect_frame(&state.registry, Some(&state.export), since),
        ))),
        cmd => {
            obs::set_remote_context(trace);
            let out = match fuel {
                Some(fuel) => state.engine.handle_sliced(cmd, fuel),
                None => SliceOutcome::Done(state.engine.handle(cmd)),
            };
            obs::set_remote_context(None);
            out
        }
    }
}

/// A worker: pop a runnable session, serve one bounded slice, repeat.
fn worker_loop(shared: &Arc<HostShared>) {
    loop {
        let work = shared.run_queue.pop();
        shared.queue_depth_gauge();
        match work {
            Work::Run(sid) => serve_slice(shared, sid),
            Work::Stop => break,
        }
    }
}

/// One bounded service turn for a runnable session: resume a preempted
/// command or start the next queued one, spend at most one slice of
/// fuel on it, then put the session back — parked if idle, at the back
/// of the run queue if it still has work (a hot-loop tenant costs one
/// time slice per turn, never a worker thread), or retired if it ended.
fn serve_slice(shared: &Arc<HostShared>, sid: u64) {
    // Take ownership of the state and pick this turn's unit of work: a
    // preempted command beats the queue (FIFO within the session).
    let (mut state, tx, job, wall) = {
        let mut table = shared.sessions.lock().expect("session table");
        let Some(slot) = table.get_mut(&sid) else {
            return;
        };
        let Some(state) = slot.state.take() else {
            slot.running = false;
            return;
        };
        let job = if state.in_flight.is_some() {
            None
        } else {
            slot.queue.pop_front()
        };
        if job.is_none() && state.in_flight.is_none() {
            // Woken with nothing to do (e.g. the session was closed and
            // its queue swept between enqueue and here): park again.
            slot.state = Some(state);
            slot.running = false;
            return;
        }
        slot.running_since = Some(Instant::now());
        slot.watchdog_flagged = false;
        let wall = slot.max_wall_ms.map(|ms| (ms, slot.wall_spent));
        (state, slot.tx.clone(), job, slot_wall(wall))
    };
    let fuel = shared.config.slice_steps;
    let mut ended: Option<&'static str> = None;
    let slice_started = Instant::now();

    // Run the unit: (reply routing, outcome), or nothing to answer.
    let served: Option<(InFlight, SliceOutcome)> = if let Some((limit_ms, spent)) = wall {
        // The wall budget is already spent: whatever comes next —
        // resumed or fresh — gets the typed verdict instead of more
        // engine time. Wall exhaustion is terminal like any other
        // budget, so even a `SetLimits` raising the cap is refused.
        let inflight = state.in_flight.take().or(job.map(|j| InFlight {
            seq: j.seq,
            trace: j.trace,
        }));
        inflight.map(|f| {
            (
                f,
                SliceOutcome::Done(Response::ResourceExhausted {
                    which: ResourceKind::WallMs,
                    used: spent.as_millis() as u64,
                    limit: limit_ms,
                }),
            )
        })
    } else if let Some(inflight) = state.in_flight.take() {
        // Transparent resume: the protocol stream never saw the yield.
        obs::set_remote_context(inflight.trace);
        let out = state.engine.resume_sliced(fuel.unwrap_or(u64::MAX));
        obs::set_remote_context(None);
        Some((inflight, out))
    } else if let Some(Job { seq, trace, cmd }) = job {
        if matches!(cmd, Command::Terminate) {
            ended = Some("terminated");
        }
        if let Command::SetLimits {
            max_wall_ms,
            max_queue_depth,
            ..
        } = &cmd
        {
            // Wall and queue budgets are host-enforced: they live on
            // the slot, visible to `enqueue` and to later slices. Step
            // and heap budgets ride the same command into the engine.
            let mut table = shared.sessions.lock().expect("session table");
            if let Some(slot) = table.get_mut(&sid) {
                slot.max_wall_ms = *max_wall_ms;
                slot.max_queue_depth = *max_queue_depth;
            }
        }
        Some((
            InFlight { seq, trace },
            serve_one(&mut state, trace, cmd, fuel),
        ))
    } else {
        None
    };
    let elapsed = slice_started.elapsed();

    let reply_frame = match served {
        None => None,
        Some((inflight, SliceOutcome::Yielded)) => {
            // Out of fuel mid-command: remember the routing and go to
            // the back of the line. Nothing is shipped — the client is
            // still waiting on this seq and cannot tell a sliced run
            // from an unsliced one.
            shared.registry.inc("mi.host.preemptions");
            state.in_flight = Some(inflight);
            None
        }
        Some((inflight, SliceOutcome::Done(resp))) => {
            if matches!(resp, Response::ResourceExhausted { .. }) {
                shared.registry.inc("mi.host.budget_exhausted");
                ended = Some("budget_exhausted");
            }
            Some(ResponseFrame {
                seq: inflight.seq,
                resp,
                session: Some(sid),
            })
        }
    };
    if let Some(rf) = &reply_frame {
        if reply(&tx, rf).is_err() {
            // This connection is gone; its reader will sweep the
            // sibling sessions. Ending just this one here keeps the
            // blast radius at exactly one connection.
            ended = Some("peer_closed");
        }
    }

    // Put the session back.
    let mut table = shared.sessions.lock().expect("session table");
    let Some(slot) = table.get_mut(&sid) else {
        return;
    };
    slot.running_since = None;
    slot.wall_spent += elapsed;
    if let Some(how) = ended.or(slot.closed) {
        // The preempted command (if any) and everything still queued
        // get a typed refusal instead of silence. Bookkeeping first,
        // refusals after the lock drops: the moment a client sees its
        // refusal, the end is already counted and the slot gone.
        let refused: Vec<u64> = state
            .in_flight
            .take()
            .map(|f| f.seq)
            .into_iter()
            .chain(slot.queue.drain(..).map(|j| j.seq))
            .collect();
        table.remove(&sid);
        finish_session(shared, &table, how);
        drop(table);
        for seq in refused {
            let _ = reply(&tx, &session_gone(seq, sid));
        }
    } else if state.in_flight.is_some() || !slot.queue.is_empty() {
        // More to do: back of the run queue, other sessions go first.
        slot.state = Some(state);
        shared.run_queue.push(Work::Run(sid));
        shared.queue_depth_gauge();
    } else {
        // Park: the engine waits in the table, no thread attached.
        slot.state = Some(state);
        slot.running = false;
    }
}

/// Collapses the wall budget to `Some` only when already exceeded.
fn slot_wall(wall: Option<(u64, Duration)>) -> Option<(u64, Duration)> {
    wall.filter(|(limit_ms, spent)| *spent >= Duration::from_millis(*limit_ms))
}

/// The watchdog: periodically scans for sessions that have been on a
/// worker longer than the configured threshold. With slicing on, a
/// slice should always finish well inside it, so a flag distinguishes a
/// stuck engine (a bug worth paging on) from a long program (which
/// yields every slice). Flags are observable as `mi.host.watchdog_flags`
/// (one per overdue slice) and the `mi.host.watchdog_stuck` gauge.
fn watchdog_loop(shared: &Arc<HostShared>) {
    let threshold = Duration::from_millis(shared.config.watchdog_ms.max(1));
    let tick = Duration::from_millis((shared.config.watchdog_ms / 4).clamp(5, 50));
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        let mut stuck = 0u64;
        {
            let mut table = shared.sessions.lock().expect("session table");
            for slot in table.values_mut() {
                if slot.running_since.is_some_and(|s| s.elapsed() > threshold) {
                    stuck += 1;
                    if !slot.watchdog_flagged {
                        slot.watchdog_flagged = true;
                        shared.registry.inc("mi.host.watchdog_flags");
                    }
                }
            }
        }
        shared.registry.set_gauge("mi.host.watchdog_stuck", stuck);
    }
}

// ---------------------------------------------------------------------------
// Client side: HostHandle / SessionHandle
// ---------------------------------------------------------------------------

/// Where a [`HostHandle`] gets (and re-gets) its host process.
struct HostSpawnSpec {
    server_bin: PathBuf,
    workers: usize,
}

/// A live host child: the process plus its stderr tail.
struct ChildInfo {
    child: Mutex<Child>,
    pid: u32,
    stderr_tail: Arc<Mutex<String>>,
}

/// One live connection to a host (in-process or a child process).
struct Conn {
    writer: SharedTx,
    routes: Arc<Mutex<HashMap<u64, Sender<ResponseFrame>>>>,
    control_rx: Receiver<ResponseFrame>,
    dead: Arc<AtomicBool>,
    child: Option<ChildInfo>,
}

struct ControlState {
    conn: Option<Conn>,
    spawn: Option<HostSpawnSpec>,
    had_conn: bool,
    respawns: u64,
    next_ctl_seq: u64,
}

struct HostHandleInner {
    control: Mutex<ControlState>,
}

/// Client-side handle to a session host, shared by every tracker using
/// it (`Clone` is cheap). Serializes control traffic (open/close,
/// respawn) and demultiplexes response frames to per-session mailboxes.
///
/// When built by [`HostHandle::spawn_process`] the handle owns the host
/// child and respawns it after a crash: the next `open_session` from
/// any tracker starts a fresh host, and every other tracker's own
/// recovery then re-establishes its session against it — the
/// whole-process half of the PR 3 recovery matrix.
#[derive(Clone)]
pub struct HostHandle {
    inner: Arc<HostHandleInner>,
}

impl std::fmt::Debug for HostHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ctl = self.inner.control.lock().expect("host control");
        f.debug_struct("HostHandle")
            .field("connected", &ctl.conn.is_some())
            .field("respawns", &ctl.respawns)
            .finish()
    }
}

/// Builds the client-side plumbing over a connection's two halves: a
/// demux reader routing response frames by session id, a shared writer,
/// and a control mailbox for session-less replies.
fn make_conn(tx: Box<dyn FrameTx>, mut rx: Box<dyn FrameRx>, child: Option<ChildInfo>) -> Conn {
    let routes: Arc<Mutex<HashMap<u64, Sender<ResponseFrame>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let (control_tx, control_rx) = unbounded();
    let dead = Arc::new(AtomicBool::new(false));
    let reader_routes = routes.clone();
    let reader_dead = dead.clone();
    std::thread::Builder::new()
        .name("mi-host-demux".into())
        .spawn(move || {
            loop {
                let frame = match rx.recv() {
                    Ok(f) => f,
                    Err(MiError::Codec(_)) => continue,
                    Err(_) => break,
                };
                let Ok(rf) = serde_json::from_slice::<ResponseFrame>(&frame) else {
                    continue;
                };
                match rf.session {
                    None => {
                        let _ = control_tx.send(rf);
                    }
                    Some(sid) => {
                        if let Some(mailbox) = reader_routes.lock().expect("routes").get(&sid) {
                            let _ = mailbox.send(rf);
                        }
                    }
                }
            }
            // Dropping every mailbox sender is what turns a dead
            // connection into MiError::Disconnected at each waiting
            // SessionHandle — their supervision takes it from there.
            reader_dead.store(true, Ordering::SeqCst);
            reader_routes.lock().expect("routes").clear();
        })
        .expect("spawn host demux reader");
    Conn {
        writer: Arc::new(Mutex::new(tx)),
        routes,
        control_rx,
        dead,
        child,
    }
}

/// Spawns `mi-server --host` and returns the connected conn.
fn spawn_host_child(spec: &HostSpawnSpec) -> Result<Conn, MiError> {
    let mut child = std::process::Command::new(&spec.server_bin)
        .arg("--host")
        .arg("--workers")
        .arg(spec.workers.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| MiError::Engine(format!("cannot spawn session host: {e}")))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    let stderr = child.stderr.take().expect("piped stderr");
    let pid = child.id();
    let stderr_tail = Arc::new(Mutex::new(String::new()));
    let tail = stderr_tail.clone();
    std::thread::Builder::new()
        .name("mi-host-stderr-tail".into())
        .spawn(move || {
            let reader = BufReader::new(stderr);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                let mut tail = tail.lock().expect("stderr tail");
                tail.push_str(&line);
                tail.push('\n');
                // Keep the tail bounded; post-mortems want the end.
                if tail.len() > 16 * 1024 {
                    let cut = tail.len() - 8 * 1024;
                    tail.drain(..cut);
                }
            }
        })
        .expect("spawn host stderr tail");
    Ok(make_conn(
        Box::new(StreamFrameTx::new(stdin)),
        Box::new(StreamFrameRx::new(stdout)),
        Some(ChildInfo {
            child: Mutex::new(child),
            pid,
            stderr_tail,
        }),
    ))
}

impl HostHandle {
    /// Spawns an `mi-server --host` child over `server_bin` with a
    /// worker pool of `workers` threads, and keeps respawning it when
    /// it dies (the next session open after a host death starts a
    /// fresh child).
    ///
    /// # Errors
    ///
    /// [`MiError::Engine`] when the child cannot be spawned.
    pub fn spawn_process(server_bin: impl Into<PathBuf>, workers: usize) -> Result<Self, MiError> {
        let spec = HostSpawnSpec {
            server_bin: server_bin.into(),
            workers,
        };
        let conn = spawn_host_child(&spec)?;
        Ok(HostHandle {
            inner: Arc::new(HostHandleInner {
                control: Mutex::new(ControlState {
                    conn: Some(conn),
                    spawn: Some(spec),
                    had_conn: true,
                    respawns: 0,
                    next_ctl_seq: 0,
                }),
            }),
        })
    }

    /// Connects to an in-process [`SessionHost`] over a channel pair.
    /// No respawn is possible in this mode: the host's lifetime is the
    /// caller's problem.
    pub fn connect_in_process(host: &SessionHost) -> Self {
        let (a, b) = crate::transport::duplex();
        let (btx, brx) = b.split();
        let _conn = host.accept(brx, btx);
        let (atx, arx) = a.split();
        let conn = make_conn(Box::new(atx), Box::new(arx), None);
        HostHandle {
            inner: Arc::new(HostHandleInner {
                control: Mutex::new(ControlState {
                    conn: Some(conn),
                    spawn: None,
                    had_conn: true,
                    respawns: 0,
                    next_ctl_seq: 0,
                }),
            }),
        }
    }

    /// The host child's pid, when this handle owns a process.
    pub fn host_pid(&self) -> Option<u32> {
        let ctl = self.inner.control.lock().expect("host control");
        ctl.conn.as_ref()?.child.as_ref().map(|c| c.pid)
    }

    /// How many times the host child was respawned after dying.
    pub fn respawns(&self) -> u64 {
        self.inner.control.lock().expect("host control").respawns
    }

    /// When the host *process* is confirmed dead, its exit code and
    /// stderr tail — the ingredients of a typed
    /// [`MiError::EngineDied`]. `None` for in-process hosts or while
    /// the child still runs.
    pub fn engine_died(&self) -> Option<(Option<i32>, String)> {
        let ctl = self.inner.control.lock().expect("host control");
        let child = ctl.conn.as_ref()?.child.as_ref()?;
        let status = child.child.lock().expect("host child").try_wait().ok()??;
        let stderr = child.stderr_tail.lock().expect("stderr tail").clone();
        Some((status.code(), stderr))
    }

    /// Ensures a live connection, respawning the host child if this
    /// handle owns one and the previous child died.
    fn ensure_conn<'c>(&self, ctl: &'c mut ControlState) -> Result<&'c Conn, MiError> {
        let live = ctl
            .conn
            .as_ref()
            .is_some_and(|c| !c.dead.load(Ordering::SeqCst));
        if !live {
            let Some(spec) = &ctl.spawn else {
                return Err(MiError::Disconnected);
            };
            if let Some(old) = ctl.conn.take() {
                if let Some(info) = &old.child {
                    // Reap the corpse so respawn storms don't leak
                    // zombies; kill first in case only the pipe died.
                    let mut child = info.child.lock().expect("host child");
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
            let conn = spawn_host_child(spec)?;
            if ctl.had_conn {
                ctl.respawns += 1;
            }
            ctl.had_conn = true;
            ctl.conn = Some(conn);
        }
        Ok(ctl.conn.as_ref().expect("conn just ensured"))
    }

    /// One control-plane roundtrip (no session id on the envelope).
    fn control_call(
        &self,
        ctl: &mut ControlState,
        cmd: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        let seq = ctl.next_ctl_seq;
        ctl.next_ctl_seq += 1;
        let conn = self.ensure_conn(ctl)?;
        let bytes = serde_json::to_vec(&CommandFrame {
            seq,
            cmd,
            trace: None,
            session: None,
        })
        .map_err(|e| MiError::Codec(e.to_string()))?;
        conn.writer.lock().expect("host writer").send(&bytes)?;
        let start = Instant::now();
        loop {
            let rf = match deadline {
                None => conn.control_rx.recv().map_err(|_| MiError::Disconnected)?,
                Some(d) => {
                    let remaining = d.checked_sub(start.elapsed()).ok_or(MiError::Timeout)?;
                    conn.control_rx
                        .recv_timeout(remaining)
                        .map_err(|e| match e {
                            RecvTimeoutError::Timeout => MiError::Timeout,
                            RecvTimeoutError::Disconnected => MiError::Disconnected,
                        })?
                }
            };
            match rf.seq.cmp(&seq) {
                std::cmp::Ordering::Equal => return Ok(rf.resp),
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Greater => {
                    return Err(MiError::Codec(format!(
                        "control response seq {} is ahead of the call in flight ({seq})",
                        rf.seq
                    )))
                }
            }
        }
    }

    /// Opens a session for `source` (named `file`; the extension picks
    /// the engine) and returns its [`SessionHandle`]. When the host
    /// child is found dead the handle respawns it once and retries, so
    /// a tracker recovering from a host crash re-establishes its
    /// session in a single call.
    ///
    /// # Errors
    ///
    /// [`MiError::Engine`] when the program does not compile (or the
    /// host cannot be spawned); transport errors as usual.
    pub fn open_session(
        &self,
        file: &str,
        source: &str,
        deadline: Option<Duration>,
    ) -> Result<SessionHandle, MiError> {
        self.open_session_opt(file, source, 0, deadline)
    }

    /// [`Self::open_session`] with an optimization level for MiniC
    /// programs (0 = run the compiler's output unchanged). Optimization
    /// is observation-preserving, so sessions at different levels are
    /// indistinguishable through the MI surface.
    ///
    /// # Errors
    ///
    /// As [`Self::open_session`]; additionally [`MiError::Engine`] when
    /// the bytecode verifier rejects the program or a pass's output.
    pub fn open_session_opt(
        &self,
        file: &str,
        source: &str,
        opt: u8,
        deadline: Option<Duration>,
    ) -> Result<SessionHandle, MiError> {
        self.open_via(
            || Command::OpenSession {
                file: file.into(),
                source: source.into(),
                opt,
            },
            deadline,
        )
    }

    /// Opens a *replay* session over a recording previously published on
    /// the host's trace shelf with `Command::PublishTrace`. The handle
    /// drives the recorded execution exactly like a live session's:
    /// `Start`/`Step`/`Seek`/inspections, all served from the shared
    /// store. Any number of replay sessions can scrub one recording
    /// concurrently.
    ///
    /// # Errors
    ///
    /// [`MiError::Engine`] when no recording is shelved under `name`;
    /// transport errors as usual.
    pub fn open_replay(
        &self,
        name: &str,
        deadline: Option<Duration>,
    ) -> Result<SessionHandle, MiError> {
        self.open_via(|| Command::OpenReplay { name: name.into() }, deadline)
    }

    /// The shared open loop: issue a session-creating control command,
    /// absorbing overload backpressure and one host respawn.
    fn open_via(
        &self,
        make_cmd: impl Fn() -> Command,
        deadline: Option<Duration>,
    ) -> Result<SessionHandle, MiError> {
        let mut ctl = self.inner.control.lock().expect("host control");
        let mut attempt = 0;
        let mut overload_attempts = 0u32;
        loop {
            let result = self.control_call(&mut ctl, make_cmd(), deadline);
            match result {
                Ok(Response::SessionOpened { session }) => {
                    let conn = ctl.conn.as_ref().expect("live conn after open");
                    let (mail_tx, mail_rx) = unbounded();
                    conn.routes.lock().expect("routes").insert(session, mail_tx);
                    return Ok(SessionHandle {
                        host: self.clone(),
                        writer: conn.writer.clone(),
                        mailbox: mail_rx,
                        session,
                        next_seq: 0,
                        registry: None,
                        counters: TransportCounters::default(),
                    });
                }
                Ok(Response::Error { message }) => return Err(MiError::Engine(message)),
                Ok(Response::Overloaded { load, limit }) => {
                    // Admission pressure, not a fault: the host is at
                    // its session cap. Back off (bounded, exponential)
                    // and retry — capacity usually frees up as sessions
                    // close. Past the bound, degrade loudly.
                    if overload_attempts >= 5 {
                        return Err(MiError::Engine(format!(
                            "host overloaded: {load}/{limit} sessions open"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(10u64 << overload_attempts));
                    overload_attempts += 1;
                }
                Ok(other) => {
                    return Err(MiError::Codec(format!(
                        "unexpected reply to session open: {}",
                        other.summary()
                    )))
                }
                Err(MiError::Disconnected) if attempt == 0 && ctl.spawn.is_some() => {
                    // The host died under us: drop the dead conn and go
                    // again — ensure_conn respawns on the next attempt.
                    if let Some(conn) = &ctl.conn {
                        conn.dead.store(true, Ordering::SeqCst);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Closes a session (best effort, bounded): drops its client-side
    /// route and tells the host to free the slot.
    pub fn close_session(&self, session: u64) {
        let mut ctl = self.inner.control.lock().expect("host control");
        if let Some(conn) = &ctl.conn {
            conn.routes.lock().expect("routes").remove(&session);
        }
        if ctl
            .conn
            .as_ref()
            .is_some_and(|c| !c.dead.load(Ordering::SeqCst))
        {
            let _ = self.control_call(
                &mut ctl,
                Command::CloseSession { session },
                Some(Duration::from_secs(2)),
            );
        }
    }
}

/// A tracker-side port to one session inside a shared host: the
/// [`CommandPort`] the supervision stack wraps, so `MiTracker` drives a
/// hosted session with exactly the code it uses for a dedicated child.
pub struct SessionHandle {
    host: HostHandle,
    writer: SharedTx,
    mailbox: Receiver<ResponseFrame>,
    session: u64,
    next_seq: u64,
    registry: Option<obs::Registry>,
    counters: TransportCounters,
}

impl SessionHandle {
    /// The host-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The handle to the host this session lives in.
    pub fn host(&self) -> &HostHandle {
        &self.host
    }

    /// Reports roundtrips into `registry` like
    /// [`crate::Client::with_registry`]: per-kind latency histograms
    /// plus trace contexts stamped onto outgoing frames.
    pub fn set_registry(&mut self, registry: obs::Registry) {
        self.registry = Some(registry);
    }
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("session", &self.session)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl CommandPort for SessionHandle {
    fn call(&mut self, command: Command) -> Result<Response, MiError> {
        self.call_deadline(command, None)
    }

    fn call_deadline(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        let span = self
            .registry
            .as_ref()
            .map(|reg| reg.span(format!("mi.client.roundtrip.{}", command.kind())));
        let trace = span.as_ref().map(obs::Span::context);
        let seq = self.next_seq;
        self.next_seq += 1;
        let bytes = serde_json::to_vec(&CommandFrame {
            seq,
            cmd: command,
            trace,
            session: Some(self.session),
        })
        .map_err(|e| MiError::Codec(e.to_string()))?;
        self.writer.lock().expect("host writer").send(&bytes)?;
        self.counters.bytes_sent += bytes.len() as u64 + 1;
        self.counters.frames_sent += 1;
        let start = Instant::now();
        loop {
            let rf = match deadline {
                None => self.mailbox.recv().map_err(|_| MiError::Disconnected)?,
                Some(d) => {
                    let remaining = d.checked_sub(start.elapsed()).ok_or(MiError::Timeout)?;
                    self.mailbox.recv_timeout(remaining).map_err(|e| match e {
                        RecvTimeoutError::Timeout => MiError::Timeout,
                        RecvTimeoutError::Disconnected => MiError::Disconnected,
                    })?
                }
            };
            self.counters.frames_received += 1;
            match rf.seq.cmp(&seq) {
                std::cmp::Ordering::Equal => {
                    // The host swept this session (terminated, closed, or
                    // its connection died): that is engine loss from the
                    // tracker's point of view, so report it the way a
                    // dead dedicated child would report — supervision
                    // then re-opens the session and replays the journal.
                    if matches!(rf.resp, Response::SessionGone { .. }) {
                        if let Some(reg) = &self.registry {
                            reg.inc("mi.client.session_gone");
                        }
                        return Err(MiError::Disconnected);
                    }
                    return Ok(rf.resp);
                }
                std::cmp::Ordering::Less => {
                    // Stale reply to an earlier command (its deadline
                    // expired, or a duplicate was refused): discard,
                    // exactly like Client's envelope handling.
                    if let Some(reg) = &self.registry {
                        reg.inc("mi.client.stale_frames");
                    }
                    continue;
                }
                std::cmp::Ordering::Greater => {
                    return Err(MiError::Codec(format!(
                        "response seq {} is ahead of the command in flight ({seq})",
                        rf.seq
                    )))
                }
            }
        }
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{duplex, ChannelTransport, Transport as _};

    const PROG: &str = "int main() { int x = 1; x = x + 1; return x; }";

    fn call(h: &mut SessionHandle, cmd: Command) -> Response {
        h.call(cmd).expect("session call")
    }

    #[test]
    fn open_drive_close_one_session() {
        let host = SessionHost::new(2);
        let handle = HostHandle::connect_in_process(&host);
        let mut s = handle.open_session("t.c", PROG, None).unwrap();
        assert!(matches!(call(&mut s, Command::Start), Response::Paused(_)));
        assert!(matches!(call(&mut s, Command::Resume), Response::Paused(_)));
        assert_eq!(
            call(&mut s, Command::GetExitCode),
            Response::ExitCode(Some(2))
        );
        assert_eq!(host.session_count(), 1);
        handle.close_session(s.session_id());
        // The slot may be in a worker's hands when the close lands; the
        // worker retires it as soon as it finishes the batch.
        let deadline = Instant::now() + Duration::from_secs(5);
        while host.session_count() != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(host.session_count(), 0);
        host.shutdown();
    }

    #[test]
    fn terminate_ends_only_the_addressed_session() {
        let host = SessionHost::new(2);
        let handle = HostHandle::connect_in_process(&host);
        let mut a = handle.open_session("a.c", PROG, None).unwrap();
        let mut b = handle.open_session("b.c", PROG, None).unwrap();
        assert_eq!(call(&mut a, Command::Terminate), Response::Ok);
        // Session b keeps serving after a terminated.
        assert!(matches!(call(&mut b, Command::Start), Response::Paused(_)));
        let deadline = Instant::now() + Duration::from_secs(5);
        while host.session_count() != 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(host.session_count(), 1);
        let snap = host.registry().snapshot();
        assert_eq!(snap.counter("mi.host.session_end.terminated"), 1);
        host.shutdown();
    }

    #[test]
    fn record_once_scrub_many() {
        // One live session records and publishes; many replay sessions
        // then scrub the single shelved store concurrently.
        let prog = "int main() {\nint x = 0;\nx = x + 1;\nx = x + 2;\nx = x + 3;\nreturn x;\n}";
        let host = SessionHost::new(4);
        let handle = HostHandle::connect_in_process(&host);
        let mut live = handle.open_session("t.c", prog, None).unwrap();
        assert_eq!(
            call(&mut live, Command::Record { keyframe_every: 4 }),
            Response::Ok
        );
        assert!(matches!(
            call(&mut live, Command::Start),
            Response::Paused(_)
        ));
        loop {
            match call(&mut live, Command::Step) {
                Response::Paused(r) if r.is_alive() => {}
                Response::Paused(_) => break,
                other => panic!("unexpected: {other:?}"),
            }
        }
        let pauses = match call(&mut live, Command::TraceStats) {
            Response::TraceStats { pauses, .. } => pauses,
            other => panic!("unexpected: {other:?}"),
        };
        assert!(pauses >= 5, "{pauses}");
        assert_eq!(
            call(&mut live, Command::PublishTrace { name: "run".into() }),
            Response::Ok
        );
        // A missing name is a typed error, not a session.
        assert!(matches!(
            handle.open_replay("nope", None),
            Err(MiError::Engine(_))
        ));
        let threads: Vec<_> = (0..4)
            .map(|r| {
                let handle = handle.clone();
                std::thread::spawn(move || {
                    let mut s = handle.open_replay("run", None).unwrap();
                    // Each reader scrubs its own path over the shared store.
                    for i in 0..pauses {
                        let n = (i * 3 + r) % pauses;
                        assert!(matches!(
                            call(&mut s, Command::Seek { pause: n }),
                            Response::Paused(_)
                        ));
                        match call(&mut s, Command::GetState) {
                            Response::State(st) => {
                                assert_eq!(st.frame.name(), "main");
                            }
                            other => panic!("unexpected: {other:?}"),
                        }
                    }
                    // History answers without any replay.
                    match call(
                        &mut s,
                        Command::QueryHistory {
                            variable: "x".into(),
                            from: None,
                            to: None,
                            last_only: true,
                        },
                    ) {
                        Response::History { hits } => {
                            assert_eq!(hits.len(), 1);
                            assert_eq!(hits[0].value, "6");
                        }
                        other => panic!("unexpected: {other:?}"),
                    }
                    handle.close_session(s.session_id());
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = host.registry().snapshot();
        assert_eq!(snap.counter("mi.host.cmd.OpenReplay"), 5);
        host.shutdown();
    }

    #[test]
    fn sessions_park_without_dedicated_threads() {
        // Many more sessions than workers: they can only coexist by
        // parking in the table between commands.
        let host = SessionHost::new(2);
        let handle = HostHandle::connect_in_process(&host);
        let mut sessions: Vec<SessionHandle> = (0..32)
            .map(|i| handle.open_session(&format!("s{i}.c"), PROG, None).unwrap())
            .collect();
        for s in &mut sessions {
            assert!(matches!(call(s, Command::Start), Response::Paused(_)));
        }
        for s in &mut sessions {
            assert!(matches!(call(s, Command::Resume), Response::Paused(_)));
            assert_eq!(call(s, Command::GetExitCode), Response::ExitCode(Some(2)));
        }
        assert_eq!(host.session_count(), 32);
        host.shutdown();
    }

    /// Raw-wire client for envelope-abuse tests: hand-built frames over
    /// one channel transport.
    struct RawConn {
        t: ChannelTransport,
        seq: u64,
    }

    impl RawConn {
        fn connect(host: &SessionHost) -> Self {
            let (a, b) = duplex();
            let (btx, brx) = b.split();
            host.accept(brx, btx);
            RawConn { t: a, seq: 0 }
        }

        fn send_frame(&mut self, seq: u64, session: Option<u64>, cmd: Command) {
            let bytes = serde_json::to_vec(&CommandFrame {
                seq,
                cmd,
                trace: None,
                session,
            })
            .unwrap();
            self.t.send(&bytes).unwrap();
        }

        fn roundtrip(&mut self, session: Option<u64>, cmd: Command) -> ResponseFrame {
            let seq = self.seq;
            self.seq += 1;
            self.send_frame(seq, session, cmd);
            self.recv_frame()
        }

        fn recv_frame(&mut self) -> ResponseFrame {
            let bytes = self
                .t
                .recv_deadline(Duration::from_secs(10))
                .expect("host reply");
            serde_json::from_slice(&bytes).expect("response frame")
        }

        fn open(&mut self, file: &str) -> u64 {
            match self
                .roundtrip(
                    None,
                    Command::OpenSession {
                        file: file.into(),
                        source: PROG.into(),
                        opt: 0,
                    },
                )
                .resp
            {
                Response::SessionOpened { session } => session,
                other => panic!("expected SessionOpened, got {other:?}"),
            }
        }
    }

    fn expect_error(rf: &ResponseFrame, needle: &str) {
        match &rf.resp {
            Response::Error { message } => assert!(message.contains(needle), "{message}"),
            other => panic!("expected Error containing {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn unknown_session_rejected_with_typed_error() {
        let host = SessionHost::new(1);
        let mut c = RawConn::connect(&host);
        let rf = c.roundtrip(Some(999), Command::GetExitCode);
        assert_eq!(rf.resp, Response::SessionGone { session: 999 });
        assert_eq!(rf.session, Some(999));
        assert_eq!(
            host.registry()
                .snapshot()
                .counter("mi.host.rejected.unknown_session"),
            1
        );
        host.shutdown();
    }

    #[test]
    fn duplicate_seq_rejected_without_desync() {
        let host = SessionHost::new(1);
        let mut c = RawConn::connect(&host);
        let sid = c.open("t.c");
        let rf = c.roundtrip(Some(sid), Command::Start);
        assert!(matches!(rf.resp, Response::Paused(_)));
        let start_seq = rf.seq;
        // Replay the exact same seq: typed refusal, not double service.
        c.send_frame(start_seq, Some(sid), Command::Start);
        let dup = c.recv_frame();
        expect_error(&dup, "stale or duplicate seq");
        // The stream continues undisturbed at the next seq.
        let rf = c.roundtrip(Some(sid), Command::GetExitCode);
        assert_eq!(rf.resp, Response::ExitCode(None));
        assert_eq!(
            host.registry()
                .snapshot()
                .counter("mi.host.rejected.stale_seq"),
            1
        );
        host.shutdown();
    }

    #[test]
    fn foreign_connection_cannot_reach_a_session() {
        let host = SessionHost::new(1);
        let mut owner = RawConn::connect(&host);
        let sid = owner.open("t.c");
        let mut intruder = RawConn::connect(&host);
        let rf = intruder.roundtrip(Some(sid), Command::GetState);
        expect_error(&rf, "belongs to another connection");
        // The owner's stream is untouched by the refused frame.
        let rf = owner.roundtrip(Some(sid), Command::Start);
        assert!(matches!(rf.resp, Response::Paused(_)));
        host.shutdown();
    }

    #[test]
    fn session_command_without_id_rejected() {
        let host = SessionHost::new(1);
        let mut c = RawConn::connect(&host);
        let rf = c.roundtrip(None, Command::Step);
        expect_error(&rf, "requires a session id");
        host.shutdown();
    }

    #[test]
    fn dead_connection_ends_its_sessions_and_spares_the_rest() {
        let host = SessionHost::new(2);
        let casualty = HostHandle::connect_in_process(&host);
        let survivor = HostHandle::connect_in_process(&host);
        let mut dying = casualty.open_session("a.c", PROG, None).unwrap();
        let mut living = survivor.open_session("b.c", PROG, None).unwrap();
        assert!(matches!(
            call(&mut dying, Command::Start),
            Response::Paused(_)
        ));
        assert!(matches!(
            call(&mut living, Command::Start),
            Response::Paused(_)
        ));
        // Kill the casualty's transport mid-session (handle and session
        // dropped together: the channel halves close).
        drop(dying);
        drop(casualty);
        let deadline = Instant::now() + Duration::from_secs(5);
        while host.session_count() != 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(host.session_count(), 1);
        // The survivor's session is still fully served.
        assert!(matches!(
            call(&mut living, Command::Resume),
            Response::Paused(_)
        ));
        assert_eq!(
            host.registry()
                .snapshot()
                .counter("mi.host.session_end.peer_closed"),
            1
        );
        host.shutdown();
    }

    #[test]
    fn compile_error_is_a_typed_open_failure() {
        let host = SessionHost::new(1);
        let handle = HostHandle::connect_in_process(&host);
        let err = handle
            .open_session("bad.c", "int main( {", None)
            .unwrap_err();
        assert!(matches!(err, MiError::Engine(_)), "{err:?}");
        assert_eq!(host.session_count(), 0);
        host.shutdown();
    }

    /// 20 source-visible pauses with an inner loop between them: every
    /// Resume spans well over 100 VM steps, so any slice fuel below
    /// that must preempt at least once per Resume.
    const BREAK_PROG: &str = "int main() {\n  int i = 0;\n  int acc = 0;\n  while (i < 20) {\n    int j = 0;\n    while (j < 40) {\n      acc = acc + j;\n      j = j + 1;\n    }\n    i = i + 1;\n  }\n  return acc;\n}\n";

    /// A long-running loop: the hot-loop abuser and budget fodder.
    const LOOP_PROG: &str = "int main() {\n  int i = 0;\n  while (i < 20000000) {\n    i = i + 1;\n  }\n  return i;\n}\n";

    fn governed(config: HostConfig) -> SessionHost {
        SessionHost::with_config(config, obs::Registry::new())
    }

    /// Drives BREAK_PROG to completion and returns every response,
    /// serialized — the byte-level trace the transparency oracle
    /// compares across slice settings.
    fn pause_trace(slice_steps: Option<u64>) -> (Vec<String>, u64) {
        let host = governed(HostConfig {
            workers: 2,
            slice_steps,
            ..HostConfig::default()
        });
        let handle = HostHandle::connect_in_process(&host);
        let mut s = handle.open_session("b.c", BREAK_PROG, None).unwrap();
        let mut trace = Vec::new();
        let record = |r: Response, trace: &mut Vec<String>| {
            trace.push(serde_json::to_string(&r).unwrap());
        };
        record(call(&mut s, Command::Start), &mut trace);
        record(call(&mut s, Command::SetBreakLine { line: 10 }), &mut trace);
        loop {
            let r = call(&mut s, Command::Resume);
            let done = matches!(r, Response::Paused(state::PauseReason::Exited(_)));
            record(r, &mut trace);
            if done {
                break;
            }
        }
        record(call(&mut s, Command::GetExitCode), &mut trace);
        let preemptions = host.registry().snapshot().counter("mi.host.preemptions");
        host.shutdown();
        (trace, preemptions)
    }

    #[test]
    fn sliced_execution_is_pause_for_pause_identical_to_unsliced() {
        let (unsliced, p0) = pause_trace(None);
        assert_eq!(p0, 0, "unsliced host must never preempt");
        for fuel in [1, 7, 50] {
            let (sliced, preemptions) = pause_trace(Some(fuel));
            assert_eq!(
                sliced, unsliced,
                "slice fuel {fuel} changed the observable pause sequence"
            );
            assert!(
                preemptions > 0,
                "fuel {fuel} over {} responses never preempted",
                sliced.len()
            );
        }
    }

    #[test]
    fn step_budget_exhaustion_is_typed_and_terminal() {
        let host = governed(HostConfig {
            workers: 1,
            ..HostConfig::default()
        });
        let handle = HostHandle::connect_in_process(&host);
        let mut s = handle.open_session("hot.c", LOOP_PROG, None).unwrap();
        assert_eq!(
            call(
                &mut s,
                Command::SetLimits {
                    max_steps: Some(10_000),
                    max_heap_bytes: None,
                    max_wall_ms: None,
                    max_queue_depth: None,
                }
            ),
            Response::Ok
        );
        assert!(matches!(call(&mut s, Command::Start), Response::Paused(_)));
        match call(&mut s, Command::Resume) {
            Response::ResourceExhausted { which, used, limit } => {
                assert_eq!(which, ResourceKind::Steps);
                assert_eq!(limit, 10_000);
                assert!(used >= limit, "used {used} below limit {limit}");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // Terminal: the session is swept, and the next command reports
        // engine loss (SessionGone → Disconnected), never silence.
        assert!(matches!(
            s.call(Command::GetExitCode),
            Err(MiError::Disconnected)
        ));
        let snap = host.registry().snapshot();
        assert_eq!(snap.counter("mi.host.budget_exhausted"), 1);
        assert_eq!(snap.counter("mi.host.session_end.budget_exhausted"), 1);
        assert_eq!(host.session_count(), 0);
        host.shutdown();
    }

    #[test]
    fn wall_budget_gates_a_hot_loop() {
        let host = governed(HostConfig {
            workers: 1,
            slice_steps: Some(10_000),
            ..HostConfig::default()
        });
        let handle = HostHandle::connect_in_process(&host);
        let mut s = handle.open_session("hot.c", LOOP_PROG, None).unwrap();
        assert!(matches!(call(&mut s, Command::Start), Response::Paused(_)));
        assert_eq!(
            call(
                &mut s,
                Command::SetLimits {
                    max_steps: None,
                    max_heap_bytes: None,
                    max_wall_ms: Some(30),
                    max_queue_depth: None,
                }
            ),
            Response::Ok
        );
        // The loop body runs for far longer than 30ms of engine time;
        // the host must cut it off with the typed verdict mid-command.
        match call(&mut s, Command::Resume) {
            Response::ResourceExhausted { which, used, limit } => {
                assert_eq!(which, ResourceKind::WallMs);
                assert_eq!(limit, 30);
                assert!(used >= limit);
            }
            other => panic!("expected wall ResourceExhausted, got {other:?}"),
        }
        assert_eq!(
            host.registry()
                .snapshot()
                .counter("mi.host.budget_exhausted"),
            1
        );
        host.shutdown();
    }

    #[test]
    fn queue_depth_budget_rejects_floods_with_queue_full() {
        let host = governed(HostConfig {
            workers: 1,
            slice_steps: Some(50),
            ..HostConfig::default()
        });
        let mut c = RawConn::connect(&host);
        let sid = match c
            .roundtrip(
                None,
                Command::OpenSession {
                    file: "hot.c".into(),
                    source: LOOP_PROG.into(),
                    opt: 0,
                },
            )
            .resp
        {
            Response::SessionOpened { session } => session,
            other => panic!("expected SessionOpened, got {other:?}"),
        };
        assert_eq!(
            c.roundtrip(
                Some(sid),
                Command::SetLimits {
                    max_steps: None,
                    max_heap_bytes: None,
                    max_wall_ms: None,
                    max_queue_depth: Some(1),
                }
            )
            .resp,
            Response::Ok
        );
        assert!(matches!(
            c.roundtrip(Some(sid), Command::Start).resp,
            Response::Paused(_)
        ));
        // Resume runs the hot loop in tiny slices: the command stays
        // in flight, so anything queued behind it never drains.
        let resume_seq = c.seq;
        c.seq += 1;
        c.send_frame(resume_seq, Some(sid), Command::Resume);
        // Wait for the first preemption: from then on Resume is in
        // flight with the session's own queue empty, so the depth the
        // next frames see is deterministic.
        let deadline = Instant::now() + Duration::from_secs(10);
        while host.registry().snapshot().counter("mi.host.preemptions") == 0 {
            assert!(Instant::now() < deadline, "hot loop never preempted");
            std::thread::sleep(Duration::from_millis(2));
        }
        let step_seq = c.seq;
        c.seq += 1;
        c.send_frame(step_seq, Some(sid), Command::Step); // queued, depth 1
        let rf = c.roundtrip(Some(sid), Command::Step); // over the budget
        match rf.resp {
            Response::QueueFull { depth, limit } => {
                assert_eq!((depth, limit), (1, 1));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(
            host.registry()
                .snapshot()
                .counter("mi.host.rejected_queue_full"),
            1
        );
        host.shutdown();
    }

    #[test]
    fn opens_past_the_session_cap_get_overloaded() {
        let host = governed(HostConfig {
            workers: 1,
            max_sessions: Some(2),
            ..HostConfig::default()
        });
        let mut c = RawConn::connect(&host);
        c.open("a.c");
        c.open("b.c");
        let rf = c.roundtrip(
            None,
            Command::OpenSession {
                file: "c.c".into(),
                source: PROG.into(),
                opt: 0,
            },
        );
        assert_eq!(
            rf.resp,
            Response::Overloaded { load: 2, limit: 2 },
            "third open past max-sessions"
        );
        assert_eq!(
            host.registry()
                .snapshot()
                .counter("mi.host.rejected_overloaded"),
            1
        );
        host.shutdown();
    }

    #[test]
    fn client_open_retries_overload_then_degrades_loudly() {
        let host = governed(HostConfig {
            workers: 1,
            max_sessions: Some(0),
            ..HostConfig::default()
        });
        let handle = HostHandle::connect_in_process(&host);
        let err = handle.open_session("t.c", PROG, None).unwrap_err();
        match err {
            MiError::Engine(m) => assert!(m.contains("overloaded"), "{m}"),
            other => panic!("expected typed overload error, got {other:?}"),
        }
        host.shutdown();
    }

    #[test]
    fn run_queue_high_water_sheds_session_commands() {
        let host = governed(HostConfig {
            workers: 1,
            queue_high_water: Some(0),
            ..HostConfig::default()
        });
        let mut c = RawConn::connect(&host);
        let sid = c.open("t.c");
        let rf = c.roundtrip(Some(sid), Command::Start);
        assert_eq!(rf.resp, Response::Overloaded { load: 0, limit: 0 });
        let registry = host.registry().clone();
        host.shutdown();
        // Workers publish the depth gauge on every wakeup, including
        // the final Stop — the series must exist after any activity.
        assert!(registry
            .snapshot()
            .gauges
            .contains_key("mi.host.run_queue_depth"));
    }

    #[test]
    fn per_session_telemetry_cursors_are_independent() {
        // Two sessions draining interleaved: each sees its own command
        // counters and its own event index space, never the sibling's.
        let host = SessionHost::new(2);
        let handle = HostHandle::connect_in_process(&host);
        let mut a = handle.open_session("a.c", PROG, None).unwrap();
        let mut b = handle.open_session("b.c", PROG, None).unwrap();
        call(&mut a, Command::Start);
        call(&mut a, Command::Step);
        call(&mut a, Command::Step);
        call(&mut b, Command::Start);
        let drain = |h: &mut SessionHandle, since| match call(h, Command::Telemetry { since }) {
            Response::Telemetry(f) => *f,
            other => panic!("expected Telemetry, got {other:?}"),
        };
        let fa = drain(&mut a, 0);
        let fb = drain(&mut b, 0);
        assert_eq!(fa.counters.get("mi.server.cmd.Step"), Some(&2));
        assert!(!fb.counters.contains_key("mi.server.cmd.Step"));
        assert_eq!(fb.counters.get("mi.server.cmd.Start"), Some(&1));
        // Interleaved cursor advance: a's cursor must not move b's.
        let fa2 = drain(&mut a, fa.next_event);
        let fb2 = drain(&mut b, 0);
        assert!(fa2.events.is_empty());
        assert_eq!(fb2.events.len(), fb.events.len());
        host.shutdown();
    }
}
