//! Grid maps for the debugging game.

use std::fmt;

/// One map tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tile {
    /// Impassable wall (`#`).
    Wall,
    /// Walkable floor (`.`).
    Floor,
    /// The character's start tile (`S`, walkable).
    Start,
    /// The key tile (`K`).
    Key,
    /// The door tile (`D`, passable only with the key).
    Door,
    /// The exit tile (`E`).
    Exit,
}

impl Tile {
    fn from_char(c: char) -> Option<Tile> {
        Some(match c {
            '#' => Tile::Wall,
            '.' => Tile::Floor,
            'S' => Tile::Start,
            'K' => Tile::Key,
            'D' => Tile::Door,
            'E' => Tile::Exit,
            _ => return None,
        })
    }

    fn to_char(self) -> char {
        match self {
            Tile::Wall => '#',
            Tile::Floor => '.',
            Tile::Start => 'S',
            Tile::Key => 'K',
            Tile::Door => 'D',
            Tile::Exit => 'E',
        }
    }
}

/// A rectangular grid map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Map {
    rows: Vec<Vec<Tile>>,
}

impl Map {
    /// Parses a map from its textual form (rows of tile characters).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid character.
    pub fn parse(text: &str) -> Result<Map, String> {
        let mut rows = Vec::new();
        for (y, line) in text.lines().enumerate() {
            let mut row = Vec::new();
            for (x, c) in line.chars().enumerate() {
                let tile = Tile::from_char(c)
                    .ok_or_else(|| format!("invalid map character `{c}` at ({x}, {y})"))?;
                row.push(tile);
            }
            rows.push(row);
        }
        if rows.is_empty() {
            return Err("empty map".into());
        }
        Ok(Map { rows })
    }

    /// The tile at `(x, y)`; `None` outside the map.
    pub fn tile_at(&self, x: i64, y: i64) -> Option<Tile> {
        if x < 0 || y < 0 {
            return None;
        }
        self.rows
            .get(y as usize)
            .and_then(|row| row.get(x as usize))
            .copied()
    }

    /// The start tile's position.
    pub fn start(&self) -> Option<(i64, i64)> {
        self.find(Tile::Start)
    }

    /// The first position of a tile kind.
    pub fn find(&self, tile: Tile) -> Option<(i64, i64)> {
        for (y, row) in self.rows.iter().enumerate() {
            for (x, t) in row.iter().enumerate() {
                if *t == tile {
                    return Some((x as i64, y as i64));
                }
            }
        }
        None
    }

    /// Map dimensions `(width, height)` (width of the widest row).
    pub fn size(&self) -> (usize, usize) {
        let w = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        (w, self.rows.len())
    }

    /// Renders the map with the character (`@`) overlaid.
    pub fn render_with_character(&self, cx: i64, cy: i64) -> String {
        let mut out = String::new();
        for (y, row) in self.rows.iter().enumerate() {
            for (x, t) in row.iter().enumerate() {
                if (x as i64, y as i64) == (cx, cy) {
                    out.push('@');
                } else {
                    out.push(t.to_char());
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            for t in row {
                write!(f, "{}", t.to_char())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAP: &str = "#####\n#S.K#\n#.D.E\n#####";

    #[test]
    fn parse_and_query() {
        let m = Map::parse(MAP).unwrap();
        assert_eq!(m.size(), (5, 4));
        assert_eq!(m.tile_at(1, 1), Some(Tile::Start));
        assert_eq!(m.tile_at(3, 1), Some(Tile::Key));
        assert_eq!(m.tile_at(2, 2), Some(Tile::Door));
        assert_eq!(m.tile_at(4, 2), Some(Tile::Exit));
        assert_eq!(m.tile_at(0, 0), Some(Tile::Wall));
        assert_eq!(m.tile_at(-1, 0), None);
        assert_eq!(m.tile_at(99, 0), None);
        assert_eq!(m.start(), Some((1, 1)));
        assert_eq!(m.find(Tile::Exit), Some((4, 2)));
    }

    #[test]
    fn invalid_maps_rejected() {
        assert!(Map::parse("").is_err());
        assert!(Map::parse("#?#").unwrap_err().contains('?'));
    }

    #[test]
    fn character_overlay() {
        let m = Map::parse(MAP).unwrap();
        let text = m.render_with_character(2, 1);
        assert!(text.lines().nth(1).unwrap().contains("#S@K#"));
        // Display shows the raw map.
        assert_eq!(m.to_string().lines().count(), 4);
    }
}
