//! A game for learning debugging (paper §III-D, Fig. 9).
//!
//! Each [`Level`] bundles a grid map and a buggy program (MiniC like the
//! paper's levels, though any EasyTracker language works) that moves
//! a character across the map. The player's goal is to *fix the program*
//! so the character picks up the key and reaches the exit through the
//! door. The game controller drives the level program through the
//! EasyTracker API — stepping it, watching the interesting variables
//! (`has_key`, the position), and generating **incremental hints** from
//! live inspection, which is exactly what the paper argues trace-based
//! tools cannot do: the visualization (hints, map animation) depends on
//! the program control itself.
//!
//! # Examples
//!
//! ```
//! use game::{Level, Game};
//!
//! let level = Level::level_one();
//! // The shipped program is buggy: the character never picks up the key.
//! let report = Game::new(level.clone()).play(&level.buggy_source).unwrap();
//! assert!(!report.won);
//! assert!(!report.hints.is_empty());
//!
//! // After the "player" fixes the bug, the level is won.
//! let fixed = level.buggy_source.replace(
//!     "/* BUG: the key is never picked up */",
//!     "has_key = 1;",
//! );
//! let report = Game::new(level).play(&fixed).unwrap();
//! assert!(report.won);
//! ```

pub mod map;

pub use map::{Map, Tile};

use easytracker::{init_tracker, PauseReason, Tracker, TrackerError};
use std::fmt;

/// A game level: map, buggy program, and win metadata.
#[derive(Debug, Clone)]
pub struct Level {
    /// Display name.
    pub name: String,
    /// The grid map.
    pub map: Map,
    /// The buggy MiniC source handed to the player.
    pub buggy_source: String,
    /// File name used for the tracker.
    pub file: String,
}

impl Level {
    /// The paper's example level: the character walks over the key and to
    /// the door, but `check_key` forgets to record the pickup, so the door
    /// never opens.
    pub fn level_one() -> Level {
        let map = Map::parse(
            "#######\n\
             #S....#\n\
             #.K...#\n\
             #...D.E\n\
             #######",
        )
        .expect("level map is well-formed");
        let buggy_source = "\
int x = 1; int y = 1;\n\
int key_x = 2; int key_y = 2;\n\
int door_x = 4; int door_y = 3;\n\
int has_key = 0;\n\
int door_open = 0;\n\
\n\
void check_key() {\n\
    if (x == key_x && y == key_y) {\n\
        /* BUG: the key is never picked up */\n\
    }\n\
}\n\
\n\
void step_to(int nx, int ny) {\n\
    x = nx;\n\
    y = ny;\n\
    check_key();\n\
}\n\
\n\
void try_door() {\n\
    if (has_key == 1) {\n\
        door_open = 1;\n\
    }\n\
}\n\
\n\
int main() {\n\
    /* Walk over the key, then to the door (simulated play). */\n\
    step_to(2, 1);\n\
    step_to(2, 2);\n\
    step_to(3, 2);\n\
    step_to(3, 3);\n\
    step_to(4, 3);\n\
    try_door();\n\
    if (door_open == 1) {\n\
        step_to(6, 3);\n\
    }\n\
    return door_open;\n\
}\n"
        .to_owned();
        Level {
            name: "Level 1: the stubborn door".into(),
            map,
            buggy_source,
            file: "level1.c".into(),
        }
    }

    /// Level 2: an off-by-one bug. The walk loop stops one tile short of
    /// the door, so the character never arrives — students must spot the
    /// `<` that should be `<=` (or the wrong bound) by watching `x`.
    pub fn level_two() -> Level {
        let map = Map::parse(
            "########\n\
             #S.K..D.E\n\
             ########",
        )
        .expect("level map is well-formed");
        let buggy_source = "\
int x = 1; int y = 1;\n\
int key_x = 3; int key_y = 1;\n\
int door_x = 6; int door_y = 1;\n\
int has_key = 0;\n\
int door_open = 0;\n\
\n\
void check_key() {\n\
    if (x == key_x && y == key_y) {\n\
        has_key = 1;\n\
    }\n\
}\n\
\n\
void step_to(int nx, int ny) {\n\
    x = nx;\n\
    y = ny;\n\
    check_key();\n\
}\n\
\n\
void try_door() {\n\
    if (has_key == 1 && x == door_x && y == door_y) {\n\
        door_open = 1;\n\
    }\n\
}\n\
\n\
int main() {\n\
    /* BUG: walks to door_x - 1, one tile short of the door. */\n\
    for (int i = x + 1; i < door_x; i++) {\n\
        step_to(i, 1);\n\
    }\n\
    try_door();\n\
    if (door_open == 1) {\n\
        step_to(8, 1);\n\
    }\n\
    return door_open;\n\
}\n"
        .to_owned();
        Level {
            name: "Level 2: one step short".into(),
            map,
            buggy_source,
            file: "level2.c".into(),
        }
    }
}

/// One frame of the played game (for rendering/replaying the animation).
#[derive(Debug, Clone, PartialEq)]
pub struct PlayFrame {
    /// Character position.
    pub x: i64,
    /// Character position.
    pub y: i64,
    /// Whether the key has been collected.
    pub has_key: bool,
    /// Whether the door is open.
    pub door_open: bool,
    /// Source line paused at.
    pub line: u32,
}

/// The outcome of playing a level once.
#[derive(Debug, Clone)]
pub struct PlayReport {
    /// Whether the character reached the exit through an open door.
    pub won: bool,
    /// Hints generated during the run, in order.
    pub hints: Vec<String>,
    /// Animation frames (one per observed movement).
    pub frames: Vec<PlayFrame>,
    /// The program's exit code.
    pub exit_code: i64,
    /// Illegal moves detected (into walls / out of bounds).
    pub illegal_moves: Vec<(i64, i64)>,
}

impl fmt::Display for PlayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", if self.won { "YOU WIN!" } else { "not yet…" })?;
        for h in &self.hints {
            writeln!(f, "hint: {h}")?;
        }
        Ok(())
    }
}

/// The game controller.
#[derive(Debug)]
pub struct Game {
    level: Level,
}

impl Game {
    /// Creates a game for a level.
    pub fn new(level: Level) -> Self {
        Game { level }
    }

    /// The level being played.
    pub fn level(&self) -> &Level {
        &self.level
    }

    /// Plays one round with the given (possibly player-edited) source.
    ///
    /// The controller tracks the position variables with watchpoints,
    /// validates every move against the map, collects animation frames,
    /// and emits incremental hints derived from live inspection.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::Load`] when the edited program no longer
    /// compiles (the player is told to fix their syntax first).
    pub fn play(&self, source: &str) -> Result<PlayReport, TrackerError> {
        // Any EasyTracker language works as a level language; the file
        // extension picks the tracker (levels ship in MiniC, like the
        // paper's, but a `.py` level runs unchanged).
        let mut tracker = init_tracker(&self.level.file, source)?;
        tracker.start()?;
        tracker.watch("x")?;
        tracker.watch("y")?;
        tracker.watch("door_open")?;

        let mut frames = Vec::new();
        let mut hints = Vec::new();
        let mut illegal_moves = Vec::new();
        let mut visited_key_tile = false;
        let mut hinted_key = false;
        let mut hinted_door = false;

        let read_int = |t: &mut dyn Tracker, name: &str| -> Option<i64> {
            t.get_variable(name).ok().flatten().and_then(|v| {
                match v.value().deref_fully().content() {
                    state::Content::Primitive(state::Prim::Int(n)) => Some(*n),
                    _ => None,
                }
            })
        };

        loop {
            let reason = tracker.resume()?;
            match reason {
                PauseReason::Watchpoint { .. } => {
                    // Until the position is fully bound (Python levels bind
                    // variables one by one), there is nothing to draw.
                    let (Some(x), Some(y)) = (
                        read_int(tracker.as_mut(), "x"),
                        read_int(tracker.as_mut(), "y"),
                    ) else {
                        continue;
                    };
                    let has_key = read_int(tracker.as_mut(), "has_key").unwrap_or(0) != 0;
                    let door_open = read_int(tracker.as_mut(), "door_open").unwrap_or(0) != 0;
                    let line = tracker.current_line().unwrap_or(0);
                    frames.push(PlayFrame {
                        x,
                        y,
                        has_key,
                        door_open,
                        line,
                    });
                    match self.level.map.tile_at(x, y) {
                        None | Some(Tile::Wall) => illegal_moves.push((x, y)),
                        Some(Tile::Key) => visited_key_tile = true,
                        _ => {}
                    }
                    // Hint 1: walked over the key but has_key stayed 0.
                    if visited_key_tile && !has_key && !hinted_key {
                        // Only meaningful once check_key had its chance:
                        // i.e. the *next* pause after stepping on the key.
                        if self.level.map.tile_at(x, y) != Some(Tile::Key) {
                            hints.push(
                                "the character walked over the key, but `has_key` is \
                                 still 0 — inspect `check_key`"
                                    .into(),
                            );
                            hinted_key = true;
                        }
                    }
                    // Hint 2: at the door without the key.
                    if self.level.map.tile_at(x, y) == Some(Tile::Door) && !has_key && !hinted_door
                    {
                        hints.push(
                            "the character reached the door, but without the key the \
                             door stays closed"
                                .into(),
                        );
                        hinted_door = true;
                    }
                }
                PauseReason::Exited(_) => break,
                _ => {}
            }
        }
        // Post-run hint: the character never even reached the door.
        let reached_door = frames
            .iter()
            .any(|f| self.level.map.tile_at(f.x, f.y) == Some(Tile::Door));
        if !reached_door && !hinted_door {
            if let Some(last) = frames.last() {
                hints.push(format!(
                    "the run ended with the character at ({}, {}) — it never \
                     reached the door; check how far the walk goes",
                    last.x, last.y
                ));
            }
        }
        let exit_code = tracker.get_exit_code().unwrap_or(-1);
        let won = frames
            .last()
            .is_some_and(|f| self.level.map.tile_at(f.x, f.y) == Some(Tile::Exit) && f.door_open)
            && illegal_moves.is_empty();
        tracker.terminate();
        Ok(PlayReport {
            won,
            hints,
            frames,
            exit_code,
            illegal_moves,
        })
    }

    /// Renders the map with the character at the given frame (text mode).
    pub fn render_frame(&self, frame: &PlayFrame) -> String {
        self.level.map.render_with_character(frame.x, frame.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_source(level: &Level) -> String {
        level
            .buggy_source
            .replace("/* BUG: the key is never picked up */", "has_key = 1;")
    }

    #[test]
    fn buggy_level_loses_with_hints() {
        let level = Level::level_one();
        let report = Game::new(level.clone()).play(&level.buggy_source).unwrap();
        assert!(!report.won);
        assert_eq!(report.exit_code, 0);
        assert!(
            report.hints.iter().any(|h| h.contains("check_key")),
            "{:?}",
            report.hints
        );
        assert!(report.hints.iter().any(|h| h.contains("door stays closed")));
        // Character moved but never reached the exit tile.
        assert!(!report.frames.is_empty());
        let last = report.frames.last().unwrap();
        assert_ne!(level.map.tile_at(last.x, last.y), Some(Tile::Exit));
    }

    #[test]
    fn fixed_level_wins_cleanly() {
        let level = Level::level_one();
        let report = Game::new(level.clone())
            .play(&fixed_source(&level))
            .unwrap();
        assert!(report.won, "hints: {:?}", report.hints);
        assert_eq!(report.exit_code, 1);
        assert!(report.illegal_moves.is_empty());
        // The winning run needs no hints.
        assert!(report.hints.is_empty());
        let last = report.frames.last().unwrap();
        assert_eq!(level.map.tile_at(last.x, last.y), Some(Tile::Exit));
        assert!(last.has_key && last.door_open);
    }

    #[test]
    fn syntax_errors_reported_to_player() {
        let level = Level::level_one();
        let broken = level.buggy_source.replace("int main()", "int main(");
        assert!(matches!(
            Game::new(level).play(&broken),
            Err(TrackerError::Load(_))
        ));
    }

    #[test]
    fn walking_into_walls_is_detected() {
        let level = Level::level_one();
        let cheating = level
            .buggy_source
            .replace("step_to(2, 1);", "step_to(0, 0);");
        let report = Game::new(level).play(&cheating).unwrap();
        assert!(!report.illegal_moves.is_empty());
        assert!(!report.won);
    }

    #[test]
    fn level_two_off_by_one() {
        let level = Level::level_two();
        let game = Game::new(level.clone());
        // Buggy: picks the key up but stops short of the door.
        let report = game.play(&level.buggy_source).unwrap();
        assert!(!report.won);
        assert!(report.frames.iter().any(|f| f.has_key));
        assert!(
            report.hints.iter().all(|h| !h.contains("check_key")),
            "key hint must not fire: {:?}",
            report.hints
        );
        // The game hints that the walk never reached the door.
        assert!(
            report
                .hints
                .iter()
                .any(|h| h.contains("never") && h.contains("door")),
            "{:?}",
            report.hints
        );
        // Fix the loop bound; the level is won.
        let fixed = level.buggy_source.replace("i < door_x", "i <= door_x");
        let report = game.play(&fixed).unwrap();
        assert!(report.won, "hints: {:?}", report.hints);
        assert_eq!(report.exit_code, 1);
    }

    #[test]
    fn frames_animate_the_walk() {
        let level = Level::level_one();
        let game = Game::new(level.clone());
        let report = game.play(&fixed_source(&level)).unwrap();
        // x changes: 1 -> 2 -> ... -> 6 over the run.
        let xs: Vec<i64> = report.frames.iter().map(|f| f.x).collect();
        assert!(xs.contains(&2) && xs.contains(&6));
        // Rendering places the character.
        let text = game.render_frame(report.frames.last().unwrap());
        assert!(text.contains('@'));
    }
}

#[cfg(test)]
mod python_level_tests {
    use super::*;

    /// The same level-one game play expressed as a MiniPy program: the
    /// game controller does not change at all (the paper's
    /// language-agnosticity claim applied to the game tool).
    #[test]
    fn python_level_plays_through_the_same_controller() {
        let map = Map::parse(
            "#######\n\
             #S....#\n\
             #.K...#\n\
             #...D.E\n\
             #######",
        )
        .unwrap();
        let source = r#"x = 1
y = 1
key_x = 2
key_y = 2
has_key = 0
door_open = 0
def step_to(nx, ny):
    global x, y, has_key
    x = nx
    y = ny
    if x == key_x and y == key_y:
        has_key = 1
for pos in [(2, 1), (2, 2), (3, 2), (3, 3), (4, 3)]:
    step_to(pos[0], pos[1])
if has_key == 1:
    door_open = 1
if door_open == 1:
    step_to(6, 3)
"#;
        let level = Level {
            name: "Python level".into(),
            map,
            buggy_source: source.to_owned(),
            file: "level.py".into(),
        };
        let report = Game::new(level).play(source).unwrap();
        assert!(report.won, "hints: {:?}", report.hints);
        assert!(report.frames.iter().any(|f| f.has_key));
    }
}
