//! The RV32 simulator: fetch, decode, execute, one instruction per step.
//!
//! Each [`Cpu::step`] returns a [`StepInfo`] describing everything a
//! debugger engine needs: the executed pc and source line, any memory
//! store (for watchpoints), any output, call/return control transfers
//! (for `track_function` on labels), and the exit code when an exit
//! `ecall` ran.
//!
//! `ecall` follows the RARS conventions teaching courses use:
//! `a7=1` print integer in `a0`; `a7=4` print the NUL-terminated string at
//! `a0`; `a7=11` print the character in `a0`; `a7=10` exit(0); `a7=93`
//! exit with code `a0`.

use crate::asm::AsmProgram;
use crate::isa::{decode, reg_name, BOp, IOp, Inst, ROp, Width};
use crate::Error;
use state::{Location, Prim, Scope, Value, Variable};

/// Control-transfer classification of an executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// A `jal ra, target` — a function call to `target`.
    Call {
        /// The callee's address.
        target: u32,
    },
    /// A `jalr zero, 0(ra)` — a function return.
    Return,
}

/// Everything that happened during one executed instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct StepInfo {
    /// Address of the executed instruction.
    pub pc: u32,
    /// Its source line.
    pub line: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Memory store performed, as `(addr, size)`.
    pub store: Option<(u32, u32)>,
    /// Output produced by an `ecall`.
    pub output: Option<String>,
    /// Exit code, if the instruction terminated the program.
    pub exit: Option<i64>,
    /// Call/return classification.
    pub control: Option<Control>,
}

/// The simulated CPU.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    mem: Vec<u8>,
    program: AsmProgram,
    output: String,
    exited: Option<i64>,
    instret: u64,
}

impl Cpu {
    /// Creates a CPU with the program loaded and `sp` at the top of memory.
    pub fn new(program: &AsmProgram) -> Self {
        let mut mem = vec![0u8; program.mem_size as usize];
        mem[..program.image.len()].copy_from_slice(&program.image);
        let mut regs = [0u32; 32];
        regs[2] = program.mem_size; // sp
        regs[1] = EXIT_SENTINEL; // ra: returning from main falls into the sentinel
        Cpu {
            regs,
            pc: program.entry,
            mem,
            program: program.clone(),
            output: String::new(),
            exited: None,
            instret: 0,
        }
    }

    /// The loaded program (debug info).
    pub fn program(&self) -> &AsmProgram {
        &self.program
    }

    /// Register file (x0..x31).
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// One register by number.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 32`.
    pub fn reg(&self, r: u8) -> u32 {
        self.regs[r as usize]
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The source line of the *next* instruction to execute.
    pub fn current_line(&self) -> u32 {
        self.program.line_at(self.pc).unwrap_or(0)
    }

    /// Total instructions retired (bench metric).
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Output so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Exit code once terminated.
    pub fn exit_code(&self) -> Option<i64> {
        self.exited
    }

    /// Reads raw memory for inspectors (the Fig. 7 memory viewer).
    pub fn read_mem(&self, addr: u32, len: u32) -> Option<&[u8]> {
        self.mem.get(addr as usize..addr as usize + len as usize)
    }

    /// Reads one little-endian word for inspectors.
    pub fn read_word(&self, addr: u32) -> Option<u32> {
        self.read_mem(addr, 4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// The registers as language-agnostic [`Variable`]s (plus `pc`), the
    /// inferior state the Fig. 7 viewer renders.
    pub fn register_variables(&self) -> Vec<Variable> {
        let mut out = Vec::with_capacity(33);
        for (i, v) in self.regs.iter().enumerate() {
            out.push(Variable::new(
                reg_name(i as u8),
                Scope::Register,
                Value::primitive(Prim::Int(*v as i32 as i64), "u32")
                    .with_location(Location::Register),
            ));
        }
        out.push(Variable::new(
            "pc",
            Scope::Register,
            Value::primitive(Prim::Int(self.pc as i64), "u32").with_location(Location::Register),
        ));
        out
    }

    fn serr(&self, message: impl Into<String>) -> Error {
        Error::Sim {
            pc: self.pc,
            message: message.into(),
        }
    }

    fn load(&self, addr: u32, size: u32) -> Result<u32, Error> {
        let bytes = self.read_mem(addr, size).ok_or_else(|| {
            self.serr(format!("load of {size} byte(s) at {addr:#x} out of range"))
        })?;
        Ok(match size {
            1 => bytes[0] as u32,
            2 => u16::from_le_bytes(bytes.try_into().expect("2 bytes")) as u32,
            4 => u32::from_le_bytes(bytes.try_into().expect("4 bytes")),
            _ => unreachable!("load size {size}"),
        })
    }

    fn store(&mut self, addr: u32, size: u32, value: u32) -> Result<(), Error> {
        let end = addr as usize + size as usize;
        if end > self.mem.len() {
            return Err(self.serr(format!("store of {size} byte(s) at {addr:#x} out of range")));
        }
        self.mem[addr as usize..end].copy_from_slice(&value.to_le_bytes()[..size as usize]);
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// After exit, further calls return the same exit info with no effect.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] on out-of-range memory access, undecodable
    /// instruction words, or pc escaping the text segment.
    pub fn step(&mut self) -> Result<StepInfo, Error> {
        if let Some(code) = self.exited {
            return Ok(StepInfo {
                pc: self.pc,
                line: 0,
                inst: Inst::Ecall,
                store: None,
                output: None,
                exit: Some(code),
                control: None,
            });
        }
        if self.pc == EXIT_SENTINEL {
            // main returned without an exit ecall: exit with a0.
            let code = self.regs[10] as i32 as i64;
            self.exited = Some(code);
            return Ok(StepInfo {
                pc: self.pc,
                line: 0,
                inst: Inst::Ecall,
                store: None,
                output: None,
                exit: Some(code),
                control: None,
            });
        }
        if self.pc >= self.program.text_end {
            return Err(self.serr("program counter left the text segment"));
        }
        let word = self.load(self.pc, 4)?;
        let inst = decode(word)
            .ok_or_else(|| self.serr(format!("cannot decode instruction word {word:#010x}")))?;
        let pc = self.pc;
        let line = self.program.line_at(pc).unwrap_or(0);
        let mut info = StepInfo {
            pc,
            line,
            inst,
            store: None,
            output: None,
            exit: None,
            control: None,
        };
        let mut next_pc = pc.wrapping_add(4);
        match inst {
            Inst::R { op, rd, rs1, rs2 } => {
                let a = self.regs[rs1 as usize];
                let b = self.regs[rs2 as usize];
                let v = match op {
                    ROp::Add => a.wrapping_add(b),
                    ROp::Sub => a.wrapping_sub(b),
                    ROp::Sll => a.wrapping_shl(b & 31),
                    ROp::Slt => ((a as i32) < (b as i32)) as u32,
                    ROp::Sltu => (a < b) as u32,
                    ROp::Xor => a ^ b,
                    ROp::Srl => a.wrapping_shr(b & 31),
                    ROp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
                    ROp::Or => a | b,
                    ROp::And => a & b,
                    ROp::Mul => a.wrapping_mul(b),
                    ROp::Div => {
                        if b == 0 {
                            u32::MAX
                        } else {
                            ((a as i32).wrapping_div(b as i32)) as u32
                        }
                    }
                    ROp::Rem => {
                        if b == 0 {
                            a
                        } else {
                            ((a as i32).wrapping_rem(b as i32)) as u32
                        }
                    }
                };
                self.set_reg(rd, v);
            }
            Inst::I { op, rd, rs1, imm } => {
                let a = self.regs[rs1 as usize];
                let i = imm as u32;
                let v = match op {
                    IOp::Addi => a.wrapping_add(i),
                    IOp::Slti => ((a as i32) < imm) as u32,
                    IOp::Sltiu => (a < i) as u32,
                    IOp::Xori => a ^ i,
                    IOp::Ori => a | i,
                    IOp::Andi => a & i,
                    IOp::Slli => a.wrapping_shl(i & 31),
                    IOp::Srli => a.wrapping_shr(i & 31),
                    IOp::Srai => ((a as i32).wrapping_shr(i & 31)) as u32,
                };
                self.set_reg(rd, v);
            }
            Inst::Load {
                width,
                rd,
                rs1,
                imm,
            } => {
                let addr = self.regs[rs1 as usize].wrapping_add(imm as u32);
                let v = match width {
                    Width::B => self.load(addr, 1)? as i8 as i32 as u32,
                    Width::Bu => self.load(addr, 1)?,
                    Width::H => self.load(addr, 2)? as i16 as i32 as u32,
                    Width::Hu => self.load(addr, 2)?,
                    Width::W => self.load(addr, 4)?,
                };
                self.set_reg(rd, v);
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let addr = self.regs[rs1 as usize].wrapping_add(imm as u32);
                let size = match width {
                    Width::B | Width::Bu => 1,
                    Width::H | Width::Hu => 2,
                    Width::W => 4,
                };
                self.store(addr, size, self.regs[rs2 as usize])?;
                info.store = Some((addr, size));
            }
            Inst::Branch { op, rs1, rs2, imm } => {
                let a = self.regs[rs1 as usize];
                let b = self.regs[rs2 as usize];
                let taken = match op {
                    BOp::Beq => a == b,
                    BOp::Bne => a != b,
                    BOp::Blt => (a as i32) < (b as i32),
                    BOp::Bge => (a as i32) >= (b as i32),
                    BOp::Bltu => a < b,
                    BOp::Bgeu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Inst::Lui { rd, imm } => self.set_reg(rd, (imm as u32) << 12),
            Inst::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add((imm as u32) << 12)),
            Inst::Jal { rd, imm } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(imm as u32);
                if rd == 1 {
                    info.control = Some(Control::Call { target: next_pc });
                }
            }
            Inst::Jalr { rd, rs1, imm } => {
                let target = self.regs[rs1 as usize].wrapping_add(imm as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
                if rd == 0 && rs1 == 1 && imm == 0 {
                    info.control = Some(Control::Return);
                }
            }
            Inst::Ecall => {
                let a7 = self.regs[17];
                let a0 = self.regs[10];
                match a7 {
                    1 => {
                        let text = (a0 as i32).to_string();
                        self.output.push_str(&text);
                        info.output = Some(text);
                    }
                    4 => {
                        let mut s = String::new();
                        let mut a = a0;
                        while let Some(bytes) = self.read_mem(a, 1) {
                            if bytes[0] == 0 {
                                break;
                            }
                            s.push(bytes[0] as char);
                            a += 1;
                        }
                        self.output.push_str(&s);
                        info.output = Some(s);
                    }
                    11 => {
                        let c = char::from_u32(a0 & 0xff).unwrap_or('\u{fffd}');
                        self.output.push(c);
                        info.output = Some(c.to_string());
                    }
                    10 => {
                        self.exited = Some(0);
                        info.exit = Some(0);
                    }
                    93 => {
                        let code = a0 as i32 as i64;
                        self.exited = Some(code);
                        info.exit = Some(code);
                    }
                    other => return Err(self.serr(format!("unsupported ecall number {other}"))),
                }
            }
        }
        self.instret += 1;
        if info.exit.is_none() {
            self.pc = next_pc;
        }
        Ok(info)
    }

    fn set_reg(&mut self, rd: u8, value: u32) {
        if rd != 0 {
            self.regs[rd as usize] = value;
        }
    }

    /// Runs until exit or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Returns a simulator fault, or an error when the step budget is
    /// exhausted (runaway program).
    pub fn run_to_exit(&mut self, max_steps: u64) -> Result<i64, Error> {
        for _ in 0..max_steps {
            let info = self.step()?;
            if let Some(code) = info.exit {
                return Ok(code);
            }
        }
        Err(self.serr(format!("no exit after {max_steps} instructions")))
    }
}

/// Sentinel return address for `main`; reaching it exits with `a0`.
const EXIT_SENTINEL: u32 = 0xffff_fff0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> (i64, String) {
        let p = assemble("t.s", src).unwrap();
        let mut cpu = Cpu::new(&p);
        let code = cpu.run_to_exit(1_000_000).unwrap();
        (code, cpu.output().to_owned())
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10.
        let src = "
main:
    li t0, 0        # sum
    li t1, 1        # i
loop:
    bgt t1, 10, done_check
    add t0, t0, t1
    addi t1, t1, 1
    j loop
done_check:
    mv a0, t0
    li a7, 93
    ecall
";
        // `bgt t1, 10, ...` is invalid (immediate operand); rewrite with a reg.
        let src = src.replace(
            "bgt t1, 10, done_check",
            "li t2, 10\n    bgt t1, t2, done_check",
        );
        let (code, _) = run(&src);
        assert_eq!(code, 55);
    }

    #[test]
    fn memory_and_data_segment() {
        let src = "
.data
arr: .word 3, 1, 4, 1, 5
.text
main:
    la t0, arr
    lw t1, 0(t0)
    lw t2, 8(t0)
    add a0, t1, t2
    li a7, 93
    ecall
";
        let (code, _) = run(src);
        assert_eq!(code, 7);
    }

    #[test]
    fn stack_push_pop() {
        let src = "
main:
    addi sp, sp, -8
    li t0, 99
    sw t0, 4(sp)
    lw a0, 4(sp)
    addi sp, sp, 8
    li a7, 93
    ecall
";
        let (code, _) = run(src);
        assert_eq!(code, 99);
    }

    #[test]
    fn function_call_and_return() {
        let src = "
main:
    li a0, 20
    jal double
    li a7, 93
    ecall
double:
    add a0, a0, a0
    ret
";
        let (code, _) = run(src);
        assert_eq!(code, 40);
    }

    #[test]
    fn recursive_factorial() {
        let src = "
main:
    li a0, 5
    call fact
    li a7, 93
    ecall
fact:
    li t0, 2
    bge a0, t0, recurse
    li a0, 1
    ret
recurse:
    addi sp, sp, -8
    sw ra, 4(sp)
    sw a0, 0(sp)
    addi a0, a0, -1
    call fact
    lw t1, 0(sp)
    mul a0, a0, t1
    lw ra, 4(sp)
    addi sp, sp, 8
    ret
";
        let (code, _) = run(src);
        assert_eq!(code, 120);
    }

    #[test]
    fn ecall_output() {
        let src = "
.data
msg: .asciz \"n=\"
.text
main:
    la a0, msg
    li a7, 4
    ecall
    li a0, 7
    li a7, 1
    ecall
    li a0, 10
    li a7, 11
    ecall
    li a7, 10
    ecall
";
        let (code, out) = run(src);
        assert_eq!(code, 0);
        assert_eq!(out, "n=7\n");
    }

    #[test]
    fn main_return_exits_with_a0() {
        let (code, _) = run("main:\n    li a0, 17\n    ret");
        assert_eq!(code, 17);
    }

    #[test]
    fn step_info_reports_stores_and_control() {
        let src = "
main:
    addi sp, sp, -4
    li t0, 5
    sw t0, 0(sp)
    jal f
    li a7, 10
    ecall
f:
    ret
";
        let p = assemble("t.s", src).unwrap();
        let mut cpu = Cpu::new(&p);
        let mut saw_store = false;
        let mut saw_call = false;
        let mut saw_ret = false;
        loop {
            let info = cpu.step().unwrap();
            if info.store.is_some() {
                saw_store = true;
            }
            match info.control {
                Some(Control::Call { target }) => {
                    assert_eq!(Some(target), p.label("f"));
                    saw_call = true;
                }
                Some(Control::Return) => saw_ret = true,
                None => {}
            }
            if info.exit.is_some() {
                break;
            }
        }
        assert!(saw_store && saw_call && saw_ret);
    }

    #[test]
    fn line_tracking() {
        let p = assemble("t.s", "main:\n    li a0, 1\n    li a7, 93\n    ecall").unwrap();
        let mut cpu = Cpu::new(&p);
        assert_eq!(cpu.current_line(), 2);
        let info = cpu.step().unwrap();
        assert_eq!(info.line, 2);
        assert_eq!(cpu.current_line(), 3);
    }

    #[test]
    fn register_variables_for_inspection() {
        let p = assemble("t.s", "main:\n    li a0, 42\n    li a7, 93\n    ecall").unwrap();
        let mut cpu = Cpu::new(&p);
        cpu.step().unwrap();
        let vars = cpu.register_variables();
        assert_eq!(vars.len(), 33);
        let a0 = vars.iter().find(|v| v.name() == "a0").unwrap();
        assert_eq!(state::render_value(a0.value()), "42");
        assert_eq!(a0.scope(), Scope::Register);
        assert!(vars.iter().any(|v| v.name() == "pc"));
    }

    #[test]
    fn faults() {
        let p = assemble("t.s", "main:\n    lw t0, 0(zero)\n    ecall").unwrap();
        // Load at 0 is fine (text segment) — but a wild address is not.
        let p2 = assemble("t.s", "main:\n    li t0, 0x10000\n    lw t1, 0(t0)").unwrap();
        let mut cpu = Cpu::new(&p2);
        let mut fault = None;
        for _ in 0..10 {
            match cpu.step() {
                Ok(_) => {}
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }
        assert!(fault.unwrap().message().contains("out of range"));
        drop(p);

        // zero register is immutable.
        let p3 = assemble(
            "t.s",
            "main:\n    li zero, 5\n    mv a0, zero\n    li a7, 93\n    ecall",
        )
        .unwrap();
        let mut cpu = Cpu::new(&p3);
        assert_eq!(cpu.run_to_exit(100).unwrap(), 0);
    }

    #[test]
    fn runaway_detected() {
        let p = assemble("t.s", "main:\n    j main").unwrap();
        let mut cpu = Cpu::new(&p);
        assert!(cpu.run_to_exit(1000).is_err());
        assert_eq!(cpu.instret(), 1000);
    }
}
