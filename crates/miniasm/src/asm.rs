//! Two-pass assembler: labels, `.data` directives, pseudo-instructions.

use crate::isa::{encode, parse_reg, BOp, IOp, Inst, ROp, Width};
use crate::Error;
use std::collections::HashMap;

/// Base address of the text segment.
pub const TEXT_BASE: u32 = 0x0000;
/// Default memory size (also the initial stack pointer).
pub const DEFAULT_MEM_SIZE: u32 = 64 * 1024;

/// An assembled program: the memory image plus debug info.
#[derive(Debug, Clone)]
pub struct AsmProgram {
    /// Initial memory image (text, then data), loaded at address 0.
    pub image: Vec<u8>,
    /// First address of the data segment.
    pub data_base: u32,
    /// One past the last text byte.
    pub text_end: u32,
    /// Entry point (address of `main` if defined, else 0).
    pub entry: u32,
    /// Source line of each instruction address.
    pub line_of: HashMap<u32, u32>,
    /// Labels in definition order.
    pub labels: Vec<(String, u32)>,
    /// Total simulated memory size (stack pointer starts here).
    pub mem_size: u32,
    /// Source file name for reported locations.
    pub file: String,
    /// Full source text.
    pub source: String,
}

impl AsmProgram {
    /// Address of a label.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.iter().find(|(n, _)| n == name).map(|(_, a)| *a)
    }

    /// The label at exactly this address, if any (prefers text labels).
    pub fn label_at(&self, addr: u32) -> Option<&str> {
        self.labels
            .iter()
            .find(|(_, a)| *a == addr)
            .map(|(n, _)| n.as_str())
    }

    /// The source line of the instruction at `addr`.
    pub fn line_at(&self, addr: u32) -> Option<u32> {
        self.line_of.get(&addr).copied()
    }

    /// All source lines carrying instructions (breakpoint targets).
    pub fn breakable_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self.line_of.values().copied().collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Section {
    Text,
    Data,
}

/// One parsed data item before label resolution.
#[derive(Debug)]
enum Item {
    Word(i64),
    Byte(u8),
    Asciz(String),
    Space,
}

/// Assembles RISC-V source into an [`AsmProgram`].
///
/// # Errors
///
/// Returns [`Error::Asm`] with the offending line for unknown mnemonics,
/// bad operands, duplicate or undefined labels, and out-of-range
/// immediates.
///
/// # Examples
///
/// ```
/// let p = miniasm::asm::assemble("t.s", "main: li a7, 10\n ecall")?;
/// assert_eq!(p.entry, 0);
/// assert!(p.label("main").is_some());
/// # Ok::<(), miniasm::Error>(())
/// ```
pub fn assemble(file: &str, source: &str) -> Result<AsmProgram, Error> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut label_order: Vec<(String, u32)> = Vec::new();
    let mut text_items: Vec<(u32, String, u32)> = Vec::new(); // (addr, text, line)
    let mut data_items: Vec<(u32, Item)> = Vec::new();
    let mut section = Section::Text;
    let mut text_addr: u32 = TEXT_BASE;
    let mut data_len: u32 = 0;

    let aerr = |line: u32, message: String| Error::Asm { line, message };

    // ---- pass 1: layout ----------------------------------------------------
    let mut pending_data_labels: Vec<(String, u32, u32)> = Vec::new(); // name, offset, line
    for (idx, raw) in source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let mut text = raw;
        if let Some(pos) = text.find('#') {
            text = &text[..pos];
        }
        let mut text = text.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            let addr = match section {
                Section::Text => text_addr,
                Section::Data => data_len, // patched after text size is known
            };
            if labels.contains_key(name) {
                return Err(aerr(line_no, format!("duplicate label `{name}`")));
            }
            if section == Section::Data {
                pending_data_labels.push((name.to_owned(), addr, line_no));
            } else {
                labels.insert(name.to_owned(), addr);
                label_order.push((name.to_owned(), addr));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(directive) = text.strip_prefix('.') {
            let (name, args) = directive
                .split_once(char::is_whitespace)
                .unwrap_or((directive, ""));
            match name {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "globl" | "global" | "align" => {}
                "word" => {
                    for part in args.split(',') {
                        let part = part.trim();
                        if part.is_empty() {
                            continue;
                        }
                        // Labels in .word are resolved in pass 2 via a
                        // sentinel; numeric values resolve now.
                        let v = parse_int(part).unwrap_or(i64::MIN);
                        if v == i64::MIN && !part.is_empty() {
                            // Store the label name; resolve later.
                            data_items.push((data_len, Item::Asciz(format!("\0WORDLABEL:{part}"))));
                            data_len += 4;
                            continue;
                        }
                        data_items.push((data_len, Item::Word(v)));
                        data_len += 4;
                    }
                }
                "byte" => {
                    for part in args.split(',') {
                        let part = part.trim();
                        if part.is_empty() {
                            continue;
                        }
                        let v = parse_int(part)
                            .ok_or_else(|| aerr(line_no, format!("bad byte `{part}`")))?;
                        data_items.push((data_len, Item::Byte(v as u8)));
                        data_len += 1;
                    }
                }
                "asciz" | "string" => {
                    let s = parse_string(args)
                        .ok_or_else(|| aerr(line_no, format!("bad string `{args}`")))?;
                    let len = s.len() as u32 + 1;
                    data_items.push((data_len, Item::Asciz(s)));
                    data_len += len;
                }
                "space" => {
                    let n = parse_int(args.trim())
                        .ok_or_else(|| aerr(line_no, format!("bad size `{args}`")))?;
                    data_items.push((data_len, Item::Space));
                    data_len += n as u32;
                }
                other => return Err(aerr(line_no, format!("unknown directive `.{other}`"))),
            }
            continue;
        }
        if section != Section::Text {
            return Err(aerr(line_no, "instructions must be in .text".into()));
        }
        let words = pseudo_size(text).ok_or_else(|| {
            aerr(
                line_no,
                format!(
                    "unknown instruction `{}`",
                    text.split_whitespace().next().unwrap_or("")
                ),
            )
        })?;
        text_items.push((text_addr, text.to_owned(), line_no));
        text_addr += 4 * words;
    }

    let text_end = text_addr;
    let data_base = text_end.div_ceil(16) * 16;
    for (name, off, line) in pending_data_labels {
        if labels.contains_key(&name) {
            return Err(aerr(line, format!("duplicate label `{name}`")));
        }
        labels.insert(name.clone(), data_base + off);
        label_order.push((name, data_base + off));
    }

    // ---- pass 2: encode ------------------------------------------------------
    let mut image = vec![0u8; (data_base + data_len) as usize];
    let mut line_of = HashMap::new();
    for (addr, text, line) in &text_items {
        let insts = lower(text, *addr, &labels).map_err(|message| aerr(*line, message))?;
        for (i, inst) in insts.iter().enumerate() {
            let a = *addr + 4 * i as u32;
            let w = encode(inst);
            image[a as usize..a as usize + 4].copy_from_slice(&w.to_le_bytes());
            line_of.insert(a, *line);
        }
    }
    for (off, item) in &data_items {
        let a = (data_base + off) as usize;
        match item {
            Item::Word(v) => image[a..a + 4].copy_from_slice(&(*v as i32).to_le_bytes()),
            Item::Byte(v) => image[a] = *v,
            Item::Asciz(s) => {
                if let Some(label) = s.strip_prefix("\0WORDLABEL:") {
                    let target = *labels
                        .get(label)
                        .ok_or_else(|| aerr(0, format!("undefined label `{label}` in .word")))?;
                    image[a..a + 4].copy_from_slice(&target.to_le_bytes());
                } else {
                    image[a..a + s.len()].copy_from_slice(s.as_bytes());
                    image[a + s.len()] = 0;
                }
            }
            Item::Space => {}
        }
    }

    let entry = labels.get("main").copied().unwrap_or(TEXT_BASE);
    Ok(AsmProgram {
        image,
        data_base,
        text_end,
        entry,
        line_of,
        labels: label_order,
        mem_size: DEFAULT_MEM_SIZE,
        file: file.to_owned(),
        source: source.to_owned(),
    })
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(hex) = s.strip_prefix("-0x") {
        return i64::from_str_radix(hex, 16).ok().map(|v| -v);
    }
    if s.len() == 3 && s.starts_with('\'') && s.ends_with('\'') {
        return Some(s.as_bytes()[1] as i64);
    }
    s.parse().ok()
}

fn parse_string(s: &str) -> Option<String> {
    let s = s.trim();
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '0' => out.push('\0'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => out.push(other),
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Number of machine words a (possibly pseudo) instruction expands to;
/// `None` for unknown mnemonics.
fn pseudo_size(text: &str) -> Option<u32> {
    let mnemonic = text.split_whitespace().next()?;
    let rest = text[mnemonic.len()..].trim();
    Some(match mnemonic {
        "li" => {
            let imm = rest.split(',').nth(1).and_then(parse_int).unwrap_or(0);
            if (-2048..2048).contains(&imm) {
                1
            } else {
                2
            }
        }
        "la" => 2,
        "mv" | "not" | "neg" | "seqz" | "snez" | "nop" | "j" | "jr" | "ret" | "call" | "beqz"
        | "bnez" | "blez" | "bgez" | "bltz" | "bgtz" | "ble" | "bgt" => 1,
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" | "mul"
        | "div" | "rem" | "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli"
        | "srai" | "lb" | "lbu" | "lh" | "lhu" | "lw" | "sb" | "sh" | "sw" | "beq" | "bne"
        | "blt" | "bge" | "bltu" | "bgeu" | "lui" | "auipc" | "jal" | "jalr" | "ecall" => 1,
        _ => return None,
    })
}

/// Lowers one source instruction (expanding pseudos) into machine
/// instructions; `addr` is its address, used for branch offsets.
fn lower(text: &str, addr: u32, labels: &HashMap<String, u32>) -> Result<Vec<Inst>, String> {
    let mnemonic = text.split_whitespace().next().unwrap_or("");
    let rest = text[mnemonic.len()..].trim();
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(|s| s.trim()).collect()
    };

    let reg = |s: &str| parse_reg(s).ok_or_else(|| format!("unknown register `{s}`"));
    let imm = |s: &str| parse_int(s).ok_or_else(|| format!("bad immediate `{s}`"));
    let target = |s: &str, from: u32| -> Result<i32, String> {
        if let Some(v) = parse_int(s) {
            return Ok(v as i32);
        }
        let a = labels
            .get(s)
            .ok_or_else(|| format!("undefined label `{s}`"))?;
        Ok(*a as i32 - from as i32)
    };
    let need = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!(
                "`{mnemonic}` expects {n} operand(s), got {}",
                ops.len()
            ))
        }
    };
    /// `off(rs)` operand.
    fn base_off(s: &str) -> Result<(i32, u8), String> {
        let open = s
            .find('(')
            .ok_or_else(|| format!("expected `off(reg)`, got `{s}`"))?;
        let close = s
            .rfind(')')
            .ok_or_else(|| format!("missing `)` in `{s}`"))?;
        let off = if s[..open].trim().is_empty() {
            0
        } else {
            parse_int(&s[..open]).ok_or_else(|| format!("bad offset in `{s}`"))?
        };
        let r = parse_reg(s[open + 1..close].trim())
            .ok_or_else(|| format!("unknown register in `{s}`"))?;
        Ok((off as i32, r))
    }

    let rop = |op: ROp| -> Result<Vec<Inst>, String> {
        need(3)?;
        Ok(vec![Inst::R {
            op,
            rd: reg(ops[0])?,
            rs1: reg(ops[1])?,
            rs2: reg(ops[2])?,
        }])
    };
    let iop = |op: IOp| -> Result<Vec<Inst>, String> {
        need(3)?;
        let v = imm(ops[2])?;
        check_imm12(v)?;
        Ok(vec![Inst::I {
            op,
            rd: reg(ops[0])?,
            rs1: reg(ops[1])?,
            imm: v as i32,
        }])
    };
    let load = |width: Width| -> Result<Vec<Inst>, String> {
        need(2)?;
        let (off, rs1) = base_off(ops[1])?;
        Ok(vec![Inst::Load {
            width,
            rd: reg(ops[0])?,
            rs1,
            imm: off,
        }])
    };
    let store = |width: Width| -> Result<Vec<Inst>, String> {
        need(2)?;
        let (off, rs1) = base_off(ops[1])?;
        Ok(vec![Inst::Store {
            width,
            rs2: reg(ops[0])?,
            rs1,
            imm: off,
        }])
    };
    let branch = |op: BOp, a: &str, b: &str, t: &str| -> Result<Vec<Inst>, String> {
        Ok(vec![Inst::Branch {
            op,
            rs1: reg(a)?,
            rs2: reg(b)?,
            imm: target(t, addr)?,
        }])
    };

    match mnemonic {
        "add" => rop(ROp::Add),
        "sub" => rop(ROp::Sub),
        "sll" => rop(ROp::Sll),
        "slt" => rop(ROp::Slt),
        "sltu" => rop(ROp::Sltu),
        "xor" => rop(ROp::Xor),
        "srl" => rop(ROp::Srl),
        "sra" => rop(ROp::Sra),
        "or" => rop(ROp::Or),
        "and" => rop(ROp::And),
        "mul" => rop(ROp::Mul),
        "div" => rop(ROp::Div),
        "rem" => rop(ROp::Rem),
        "addi" => iop(IOp::Addi),
        "slti" => iop(IOp::Slti),
        "sltiu" => iop(IOp::Sltiu),
        "xori" => iop(IOp::Xori),
        "ori" => iop(IOp::Ori),
        "andi" => iop(IOp::Andi),
        "slli" => iop(IOp::Slli),
        "srli" => iop(IOp::Srli),
        "srai" => iop(IOp::Srai),
        "lb" => load(Width::B),
        "lbu" => load(Width::Bu),
        "lh" => load(Width::H),
        "lhu" => load(Width::Hu),
        "lw" => load(Width::W),
        "sb" => store(Width::B),
        "sh" => store(Width::H),
        "sw" => store(Width::W),
        "beq" => {
            need(3)?;
            branch(BOp::Beq, ops[0], ops[1], ops[2])
        }
        "bne" => {
            need(3)?;
            branch(BOp::Bne, ops[0], ops[1], ops[2])
        }
        "blt" => {
            need(3)?;
            branch(BOp::Blt, ops[0], ops[1], ops[2])
        }
        "bge" => {
            need(3)?;
            branch(BOp::Bge, ops[0], ops[1], ops[2])
        }
        "bltu" => {
            need(3)?;
            branch(BOp::Bltu, ops[0], ops[1], ops[2])
        }
        "bgeu" => {
            need(3)?;
            branch(BOp::Bgeu, ops[0], ops[1], ops[2])
        }
        "ble" => {
            need(3)?;
            branch(BOp::Bge, ops[1], ops[0], ops[2])
        }
        "bgt" => {
            need(3)?;
            branch(BOp::Blt, ops[1], ops[0], ops[2])
        }
        "beqz" => {
            need(2)?;
            branch(BOp::Beq, ops[0], "zero", ops[1])
        }
        "bnez" => {
            need(2)?;
            branch(BOp::Bne, ops[0], "zero", ops[1])
        }
        "blez" => {
            need(2)?;
            branch(BOp::Bge, "zero", ops[0], ops[1])
        }
        "bgez" => {
            need(2)?;
            branch(BOp::Bge, ops[0], "zero", ops[1])
        }
        "bltz" => {
            need(2)?;
            branch(BOp::Blt, ops[0], "zero", ops[1])
        }
        "bgtz" => {
            need(2)?;
            branch(BOp::Blt, "zero", ops[0], ops[1])
        }
        "lui" => {
            need(2)?;
            Ok(vec![Inst::Lui {
                rd: reg(ops[0])?,
                imm: imm(ops[1])? as i32,
            }])
        }
        "auipc" => {
            need(2)?;
            Ok(vec![Inst::Auipc {
                rd: reg(ops[0])?,
                imm: imm(ops[1])? as i32,
            }])
        }
        "jal" => match ops.as_slice() {
            [t] => Ok(vec![Inst::Jal {
                rd: 1,
                imm: target(t, addr)?,
            }]),
            [rd, t] => Ok(vec![Inst::Jal {
                rd: reg(rd)?,
                imm: target(t, addr)?,
            }]),
            _ => Err("`jal` expects 1 or 2 operands".into()),
        },
        "jalr" => match ops.as_slice() {
            [rs] => Ok(vec![Inst::Jalr {
                rd: 1,
                rs1: reg(rs)?,
                imm: 0,
            }]),
            [rd, bo] => {
                let (off, rs1) = base_off(bo)?;
                Ok(vec![Inst::Jalr {
                    rd: reg(rd)?,
                    rs1,
                    imm: off,
                }])
            }
            _ => Err("`jalr` expects 1 or 2 operands".into()),
        },
        "ecall" => Ok(vec![Inst::Ecall]),
        // ---- pseudo-instructions ----
        "nop" => Ok(vec![Inst::I {
            op: IOp::Addi,
            rd: 0,
            rs1: 0,
            imm: 0,
        }]),
        "li" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let v = imm(ops[1])?;
            if (-2048..2048).contains(&v) {
                Ok(vec![Inst::I {
                    op: IOp::Addi,
                    rd,
                    rs1: 0,
                    imm: v as i32,
                }])
            } else {
                let v = v as i32;
                let lo = (v << 20) >> 20; // sign-extended low 12 bits
                let hi = (v - lo) >> 12;
                Ok(vec![
                    Inst::Lui {
                        rd,
                        imm: hi & 0xfffff,
                    },
                    Inst::I {
                        op: IOp::Addi,
                        rd,
                        rs1: rd,
                        imm: lo,
                    },
                ])
            }
        }
        "la" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let a = *labels
                .get(ops[1])
                .ok_or_else(|| format!("undefined label `{}`", ops[1]))? as i32;
            let lo = (a << 20) >> 20;
            let hi = (a - lo) >> 12;
            Ok(vec![
                Inst::Lui {
                    rd,
                    imm: hi & 0xfffff,
                },
                Inst::I {
                    op: IOp::Addi,
                    rd,
                    rs1: rd,
                    imm: lo,
                },
            ])
        }
        "mv" => {
            need(2)?;
            Ok(vec![Inst::I {
                op: IOp::Addi,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: 0,
            }])
        }
        "not" => {
            need(2)?;
            Ok(vec![Inst::I {
                op: IOp::Xori,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: -1,
            }])
        }
        "neg" => {
            need(2)?;
            Ok(vec![Inst::R {
                op: ROp::Sub,
                rd: reg(ops[0])?,
                rs1: 0,
                rs2: reg(ops[1])?,
            }])
        }
        "seqz" => {
            need(2)?;
            Ok(vec![Inst::I {
                op: IOp::Sltiu,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: 1,
            }])
        }
        "snez" => {
            need(2)?;
            Ok(vec![Inst::R {
                op: ROp::Sltu,
                rd: reg(ops[0])?,
                rs1: 0,
                rs2: reg(ops[1])?,
            }])
        }
        "j" => {
            need(1)?;
            Ok(vec![Inst::Jal {
                rd: 0,
                imm: target(ops[0], addr)?,
            }])
        }
        "jr" => {
            need(1)?;
            Ok(vec![Inst::Jalr {
                rd: 0,
                rs1: reg(ops[0])?,
                imm: 0,
            }])
        }
        "ret" => {
            need(0)?;
            Ok(vec![Inst::Jalr {
                rd: 0,
                rs1: 1,
                imm: 0,
            }])
        }
        "call" => {
            need(1)?;
            Ok(vec![Inst::Jal {
                rd: 1,
                imm: target(ops[0], addr)?,
            }])
        }
        other => Err(format!("unknown instruction `{other}`")),
    }
}

fn check_imm12(v: i64) -> Result<(), String> {
    if (-2048..2048).contains(&v) {
        Ok(())
    } else {
        Err(format!("immediate {v} does not fit in 12 bits (use `li`)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::decode;

    fn words(p: &AsmProgram) -> Vec<Inst> {
        (0..p.text_end)
            .step_by(4)
            .map(|a| {
                let w = u32::from_le_bytes(p.image[a as usize..a as usize + 4].try_into().unwrap());
                decode(w).unwrap_or_else(|| panic!("undecodable word {w:#x} at {a:#x}"))
            })
            .collect()
    }

    #[test]
    fn assembles_simple_program() {
        let p = assemble("t.s", "main:\n    addi a0, zero, 5\n    ecall").unwrap();
        let insts = words(&p);
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[1], Inst::Ecall);
        assert_eq!(p.entry, 0);
        assert_eq!(p.line_at(0), Some(2));
        assert_eq!(p.line_at(4), Some(3));
    }

    #[test]
    fn branches_resolve_labels_backwards_and_forwards() {
        let src = "loop:\n    addi t0, t0, 1\n    blt t0, t1, loop\n    beq t0, t1, done\n    nop\ndone:\n    ecall";
        let p = assemble("t.s", src).unwrap();
        let insts = words(&p);
        match insts[1] {
            Inst::Branch { imm, .. } => assert_eq!(imm, -4),
            other => panic!("unexpected {other}"),
        }
        match insts[2] {
            Inst::Branch { imm, .. } => assert_eq!(imm, 8),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn li_expands_by_size() {
        let small = assemble("t.s", "li a0, 100").unwrap();
        assert_eq!(small.text_end, 4);
        let big = assemble("t.s", "li a0, 100000").unwrap();
        assert_eq!(big.text_end, 8);
        let insts = words(&big);
        assert!(matches!(insts[0], Inst::Lui { .. }));
        assert!(matches!(insts[1], Inst::I { op: IOp::Addi, .. }));
    }

    #[test]
    fn la_points_at_data() {
        let src = ".data\nvalue: .word 42\n.text\nmain:\n    la t0, value\n    lw t1, 0(t0)";
        let p = assemble("t.s", src).unwrap();
        let value_addr = p.label("value").unwrap();
        assert!(value_addr >= p.data_base);
        let v = i32::from_le_bytes(
            p.image[value_addr as usize..value_addr as usize + 4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn data_directives() {
        let src = ".data\nmsg: .asciz \"hi\\n\"\nbytes: .byte 1, 2, 3\nbuf: .space 8\nnums: .word 1, -2, 0x10";
        let p = assemble("t.s", src).unwrap();
        let msg = p.label("msg").unwrap() as usize;
        assert_eq!(&p.image[msg..msg + 4], b"hi\n\0");
        let bytes = p.label("bytes").unwrap() as usize;
        assert_eq!(&p.image[bytes..bytes + 3], &[1, 2, 3]);
        let nums = p.label("nums").unwrap() as usize;
        assert_eq!(
            i32::from_le_bytes(p.image[nums + 4..nums + 8].try_into().unwrap()),
            -2
        );
    }

    #[test]
    fn pseudo_instructions_lower() {
        let src = "main:\n    mv a0, a1\n    neg a2, a3\n    not a4, a5\n    seqz t0, t1\n    snez t2, t3\n    j main\n    ret";
        let p = assemble("t.s", src).unwrap();
        let insts = words(&p);
        assert_eq!(insts.len(), 7);
        assert!(matches!(insts[5], Inst::Jal { rd: 0, .. }));
        assert!(matches!(
            insts[6],
            Inst::Jalr {
                rd: 0,
                rs1: 1,
                imm: 0
            }
        ));
    }

    #[test]
    fn errors() {
        assert!(assemble("t.s", "frob a0, a1").is_err());
        assert!(assemble("t.s", "addi a0, a1").is_err());
        assert!(assemble("t.s", "addi a0, a1, 5000").is_err());
        assert!(assemble("t.s", "beq a0, a1, nowhere").is_err());
        assert!(assemble("t.s", "dup:\nnop\ndup:\nnop").is_err());
        assert!(assemble("t.s", ".bogus 1").is_err());
        assert!(assemble("t.s", ".data\naddi a0, a0, 1").is_err());
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("t.s", "# header\n\nmain: # entry\n    nop # do nothing\n").unwrap();
        assert_eq!(p.text_end, 4);
    }

    #[test]
    fn entry_defaults_to_main_label() {
        let p = assemble("t.s", "helper:\n    ret\nmain:\n    nop").unwrap();
        assert_eq!(p.entry, 4);
        assert_eq!(p.label_at(4), Some("main"));
    }

    #[test]
    fn breakable_lines_sorted() {
        let p = assemble("t.s", "main:\n    nop\n\n    nop\n    nop").unwrap();
        assert_eq!(p.breakable_lines(), vec![2, 4, 5]);
    }
}
