//! RV32I(+M) instruction set: typed instructions and real binary
//! encoding/decoding.
//!
//! Only the subset teaching programs need is implemented; the encodings
//! are the genuine RISC-V ones, so memory dumps show real code bytes and
//! `encode`/`decode` round-trip (property-tested).

use std::fmt;

/// ABI register names indexed by register number.
pub const REG_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// Parses a register name: ABI (`a0`, `sp`), numeric (`x12`), or `fp`.
pub fn parse_reg(name: &str) -> Option<u8> {
    if name == "fp" {
        return Some(8);
    }
    if let Some(rest) = name.strip_prefix('x') {
        if let Ok(n) = rest.parse::<u8>() {
            if n < 32 {
                return Some(n);
            }
        }
    }
    REG_NAMES.iter().position(|r| *r == name).map(|i| i as u8)
}

/// The ABI name of register `r`.
///
/// # Panics
///
/// Panics if `r >= 32`.
pub fn reg_name(r: u8) -> &'static str {
    REG_NAMES[r as usize]
}

/// Register-register ALU operations (R-type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ROp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Div,
    Rem,
}

/// Register-immediate ALU operations (I-type arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
}

/// Branch conditions (B-type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BOp {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// Byte (sign-extended on load).
    B,
    /// Byte unsigned.
    Bu,
    /// Halfword (sign-extended on load).
    H,
    /// Halfword unsigned.
    Hu,
    /// Word.
    W,
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// R-type: `rd = rs1 op rs2`.
    R {
        /// Operation.
        op: ROp,
        /// Destination.
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// I-type ALU: `rd = rs1 op imm`.
    I {
        /// Operation.
        op: IOp,
        /// Destination.
        rd: u8,
        /// Source.
        rs1: u8,
        /// Sign-extended 12-bit immediate (shift amount for shifts).
        imm: i32,
    },
    /// Load: `rd = mem[rs1 + imm]`.
    Load {
        /// Access width.
        width: Width,
        /// Destination.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Offset.
        imm: i32,
    },
    /// Store: `mem[rs1 + imm] = rs2`.
    Store {
        /// Access width (B/H/W only).
        width: Width,
        /// Source register.
        rs2: u8,
        /// Base register.
        rs1: u8,
        /// Offset.
        imm: i32,
    },
    /// Branch: `if rs1 op rs2 then pc += imm`.
    Branch {
        /// Condition.
        op: BOp,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
        /// Byte offset (even).
        imm: i32,
    },
    /// `rd = imm << 12`.
    Lui {
        /// Destination.
        rd: u8,
        /// Upper 20 bits.
        imm: i32,
    },
    /// `rd = pc + (imm << 12)`.
    Auipc {
        /// Destination.
        rd: u8,
        /// Upper 20 bits.
        imm: i32,
    },
    /// `rd = pc + 4; pc += imm`.
    Jal {
        /// Destination (link register).
        rd: u8,
        /// Byte offset.
        imm: i32,
    },
    /// `rd = pc + 4; pc = (rs1 + imm) & !1`.
    Jalr {
        /// Destination.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Offset.
        imm: i32,
    },
    /// Environment call (syscall).
    Ecall,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = reg_name;
        match self {
            Inst::R { op, rd, rs1, rs2 } => {
                let name = format!("{op:?}").to_lowercase();
                write!(f, "{name} {}, {}, {}", r(*rd), r(*rs1), r(*rs2))
            }
            Inst::I { op, rd, rs1, imm } => {
                let name = format!("{op:?}").to_lowercase();
                write!(f, "{name} {}, {}, {imm}", r(*rd), r(*rs1))
            }
            Inst::Load {
                width,
                rd,
                rs1,
                imm,
            } => {
                let name = match width {
                    Width::B => "lb",
                    Width::Bu => "lbu",
                    Width::H => "lh",
                    Width::Hu => "lhu",
                    Width::W => "lw",
                };
                write!(f, "{name} {}, {imm}({})", r(*rd), r(*rs1))
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let name = match width {
                    Width::B | Width::Bu => "sb",
                    Width::H | Width::Hu => "sh",
                    Width::W => "sw",
                };
                write!(f, "{name} {}, {imm}({})", r(*rs2), r(*rs1))
            }
            Inst::Branch { op, rs1, rs2, imm } => {
                let name = format!("{op:?}").to_lowercase();
                write!(f, "{name} {}, {}, {imm}", r(*rs1), r(*rs2))
            }
            Inst::Lui { rd, imm } => write!(f, "lui {}, {imm}", r(*rd)),
            Inst::Auipc { rd, imm } => write!(f, "auipc {}, {imm}", r(*rd)),
            Inst::Jal { rd, imm } => write!(f, "jal {}, {imm}", r(*rd)),
            Inst::Jalr { rd, rs1, imm } => write!(f, "jalr {}, {imm}({})", r(*rd), r(*rs1)),
            Inst::Ecall => write!(f, "ecall"),
        }
    }
}

// Field packing helpers.
fn b(v: u32, lo: u32, len: u32) -> u32 {
    (v >> lo) & ((1 << len) - 1)
}

/// Encodes an instruction to its RV32I word.
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::R { op, rd, rs1, rs2 } => {
            let (funct7, funct3) = match op {
                ROp::Add => (0b0000000, 0b000),
                ROp::Sub => (0b0100000, 0b000),
                ROp::Sll => (0b0000000, 0b001),
                ROp::Slt => (0b0000000, 0b010),
                ROp::Sltu => (0b0000000, 0b011),
                ROp::Xor => (0b0000000, 0b100),
                ROp::Srl => (0b0000000, 0b101),
                ROp::Sra => (0b0100000, 0b101),
                ROp::Or => (0b0000000, 0b110),
                ROp::And => (0b0000000, 0b111),
                ROp::Mul => (0b0000001, 0b000),
                ROp::Div => (0b0000001, 0b100),
                ROp::Rem => (0b0000001, 0b110),
            };
            (funct7 << 25)
                | ((rs2 as u32) << 20)
                | ((rs1 as u32) << 15)
                | (funct3 << 12)
                | ((rd as u32) << 7)
                | 0b0110011
        }
        Inst::I { op, rd, rs1, imm } => {
            let (funct3, imm) = match op {
                IOp::Addi => (0b000, imm as u32),
                IOp::Slti => (0b010, imm as u32),
                IOp::Sltiu => (0b011, imm as u32),
                IOp::Xori => (0b100, imm as u32),
                IOp::Ori => (0b110, imm as u32),
                IOp::Andi => (0b111, imm as u32),
                IOp::Slli => (0b001, imm as u32 & 0x1f),
                IOp::Srli => (0b101, imm as u32 & 0x1f),
                IOp::Srai => (0b101, (imm as u32 & 0x1f) | (0b0100000 << 5)),
            };
            (b(imm, 0, 12) << 20)
                | ((rs1 as u32) << 15)
                | (funct3 << 12)
                | ((rd as u32) << 7)
                | 0b0010011
        }
        Inst::Load {
            width,
            rd,
            rs1,
            imm,
        } => {
            let funct3 = match width {
                Width::B => 0b000,
                Width::H => 0b001,
                Width::W => 0b010,
                Width::Bu => 0b100,
                Width::Hu => 0b101,
            };
            (b(imm as u32, 0, 12) << 20)
                | ((rs1 as u32) << 15)
                | (funct3 << 12)
                | ((rd as u32) << 7)
                | 0b0000011
        }
        Inst::Store {
            width,
            rs2,
            rs1,
            imm,
        } => {
            let funct3 = match width {
                Width::B | Width::Bu => 0b000,
                Width::H | Width::Hu => 0b001,
                Width::W => 0b010,
            };
            let imm = imm as u32;
            (b(imm, 5, 7) << 25)
                | ((rs2 as u32) << 20)
                | ((rs1 as u32) << 15)
                | (funct3 << 12)
                | (b(imm, 0, 5) << 7)
                | 0b0100011
        }
        Inst::Branch { op, rs1, rs2, imm } => {
            let funct3 = match op {
                BOp::Beq => 0b000,
                BOp::Bne => 0b001,
                BOp::Blt => 0b100,
                BOp::Bge => 0b101,
                BOp::Bltu => 0b110,
                BOp::Bgeu => 0b111,
            };
            let imm = imm as u32;
            (b(imm, 12, 1) << 31)
                | (b(imm, 5, 6) << 25)
                | ((rs2 as u32) << 20)
                | ((rs1 as u32) << 15)
                | (funct3 << 12)
                | (b(imm, 1, 4) << 8)
                | (b(imm, 11, 1) << 7)
                | 0b1100011
        }
        Inst::Lui { rd, imm } => (b(imm as u32, 0, 20) << 12) | ((rd as u32) << 7) | 0b0110111,
        Inst::Auipc { rd, imm } => (b(imm as u32, 0, 20) << 12) | ((rd as u32) << 7) | 0b0010111,
        Inst::Jal { rd, imm } => {
            let imm = imm as u32;
            (b(imm, 20, 1) << 31)
                | (b(imm, 1, 10) << 21)
                | (b(imm, 11, 1) << 20)
                | (b(imm, 12, 8) << 12)
                | ((rd as u32) << 7)
                | 0b1101111
        }
        Inst::Jalr { rd, rs1, imm } => {
            (b(imm as u32, 0, 12) << 20) | ((rs1 as u32) << 15) | ((rd as u32) << 7) | 0b1100111
        }
        Inst::Ecall => 0b1110011,
    }
}

fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Decodes an RV32I word back into an instruction.
///
/// Returns `None` for words outside the implemented subset.
pub fn decode(word: u32) -> Option<Inst> {
    let opcode = b(word, 0, 7);
    let rd = b(word, 7, 5) as u8;
    let funct3 = b(word, 12, 3);
    let rs1 = b(word, 15, 5) as u8;
    let rs2 = b(word, 20, 5) as u8;
    let funct7 = b(word, 25, 7);
    Some(match opcode {
        0b0110011 => {
            let op = match (funct7, funct3) {
                (0b0000000, 0b000) => ROp::Add,
                (0b0100000, 0b000) => ROp::Sub,
                (0b0000000, 0b001) => ROp::Sll,
                (0b0000000, 0b010) => ROp::Slt,
                (0b0000000, 0b011) => ROp::Sltu,
                (0b0000000, 0b100) => ROp::Xor,
                (0b0000000, 0b101) => ROp::Srl,
                (0b0100000, 0b101) => ROp::Sra,
                (0b0000000, 0b110) => ROp::Or,
                (0b0000000, 0b111) => ROp::And,
                (0b0000001, 0b000) => ROp::Mul,
                (0b0000001, 0b100) => ROp::Div,
                (0b0000001, 0b110) => ROp::Rem,
                _ => return None,
            };
            Inst::R { op, rd, rs1, rs2 }
        }
        0b0010011 => {
            let imm12 = sext(b(word, 20, 12), 12);
            let shamt = b(word, 20, 5) as i32;
            let (op, imm) = match funct3 {
                0b000 => (IOp::Addi, imm12),
                0b010 => (IOp::Slti, imm12),
                0b011 => (IOp::Sltiu, imm12),
                0b100 => (IOp::Xori, imm12),
                0b110 => (IOp::Ori, imm12),
                0b111 => (IOp::Andi, imm12),
                0b001 => (IOp::Slli, shamt),
                0b101 if funct7 == 0b0100000 => (IOp::Srai, shamt),
                0b101 => (IOp::Srli, shamt),
                _ => return None,
            };
            Inst::I { op, rd, rs1, imm }
        }
        0b0000011 => {
            let width = match funct3 {
                0b000 => Width::B,
                0b001 => Width::H,
                0b010 => Width::W,
                0b100 => Width::Bu,
                0b101 => Width::Hu,
                _ => return None,
            };
            Inst::Load {
                width,
                rd,
                rs1,
                imm: sext(b(word, 20, 12), 12),
            }
        }
        0b0100011 => {
            let width = match funct3 {
                0b000 => Width::B,
                0b001 => Width::H,
                0b010 => Width::W,
                _ => return None,
            };
            let imm = (b(word, 25, 7) << 5) | b(word, 7, 5);
            Inst::Store {
                width,
                rs2,
                rs1,
                imm: sext(imm, 12),
            }
        }
        0b1100011 => {
            let op = match funct3 {
                0b000 => BOp::Beq,
                0b001 => BOp::Bne,
                0b100 => BOp::Blt,
                0b101 => BOp::Bge,
                0b110 => BOp::Bltu,
                0b111 => BOp::Bgeu,
                _ => return None,
            };
            let imm = (b(word, 31, 1) << 12)
                | (b(word, 7, 1) << 11)
                | (b(word, 25, 6) << 5)
                | (b(word, 8, 4) << 1);
            Inst::Branch {
                op,
                rs1,
                rs2,
                imm: sext(imm, 13),
            }
        }
        0b0110111 => Inst::Lui {
            rd,
            imm: b(word, 12, 20) as i32,
        },
        0b0010111 => Inst::Auipc {
            rd,
            imm: b(word, 12, 20) as i32,
        },
        0b1101111 => {
            let imm = (b(word, 31, 1) << 20)
                | (b(word, 12, 8) << 12)
                | (b(word, 20, 1) << 11)
                | (b(word, 21, 10) << 1);
            Inst::Jal {
                rd,
                imm: sext(imm, 21),
            }
        }
        0b1100111 if funct3 == 0 => Inst::Jalr {
            rd,
            rs1,
            imm: sext(b(word, 20, 12), 12),
        },
        0b1110011 if word == 0b1110011 => Inst::Ecall,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn register_parsing() {
        assert_eq!(parse_reg("zero"), Some(0));
        assert_eq!(parse_reg("ra"), Some(1));
        assert_eq!(parse_reg("sp"), Some(2));
        assert_eq!(parse_reg("fp"), Some(8));
        assert_eq!(parse_reg("s0"), Some(8));
        assert_eq!(parse_reg("a0"), Some(10));
        assert_eq!(parse_reg("t6"), Some(31));
        assert_eq!(parse_reg("x13"), Some(13));
        assert_eq!(parse_reg("x32"), None);
        assert_eq!(parse_reg("bogus"), None);
    }

    #[test]
    fn known_encodings() {
        // addi a0, zero, 42  ->  0x02A00513
        let i = Inst::I {
            op: IOp::Addi,
            rd: 10,
            rs1: 0,
            imm: 42,
        };
        assert_eq!(encode(&i), 0x02A0_0513);
        // add a0, a1, a2 -> 0x00C58533
        let r = Inst::R {
            op: ROp::Add,
            rd: 10,
            rs1: 11,
            rs2: 12,
        };
        assert_eq!(encode(&r), 0x00C5_8533);
        // ecall -> 0x00000073
        assert_eq!(encode(&Inst::Ecall), 0x73);
        // lw a0, 8(sp) -> 0x00812503
        let lw = Inst::Load {
            width: Width::W,
            rd: 10,
            rs1: 2,
            imm: 8,
        };
        assert_eq!(encode(&lw), 0x0081_2503);
    }

    #[test]
    fn negative_immediates_roundtrip() {
        let cases = [
            Inst::I {
                op: IOp::Addi,
                rd: 5,
                rs1: 6,
                imm: -1,
            },
            Inst::Load {
                width: Width::W,
                rd: 1,
                rs1: 2,
                imm: -2048,
            },
            Inst::Store {
                width: Width::W,
                rs2: 3,
                rs1: 4,
                imm: -4,
            },
            Inst::Branch {
                op: BOp::Bne,
                rs1: 1,
                rs2: 2,
                imm: -8,
            },
            Inst::Jal { rd: 1, imm: -1024 },
        ];
        for inst in cases {
            assert_eq!(decode(encode(&inst)), Some(inst), "{inst}");
        }
    }

    #[test]
    fn display_is_readable() {
        let i = Inst::Load {
            width: Width::W,
            rd: 10,
            rs1: 2,
            imm: 8,
        };
        assert_eq!(i.to_string(), "lw a0, 8(sp)");
        let brz = Inst::Branch {
            op: BOp::Beq,
            rs1: 10,
            rs2: 0,
            imm: 16,
        };
        assert_eq!(brz.to_string(), "beq a0, zero, 16");
    }

    #[test]
    fn unknown_words_decode_to_none() {
        assert_eq!(decode(0), None);
        assert_eq!(decode(0xffff_ffff), None);
    }

    fn arb_inst() -> impl Strategy<Value = Inst> {
        let reg = 0u8..32;
        let imm12 = -2048i32..2048;
        let imm20 = 0i32..(1 << 20);
        let shamt = 0i32..32;
        prop_oneof![
            (
                prop_oneof![
                    Just(ROp::Add),
                    Just(ROp::Sub),
                    Just(ROp::Sll),
                    Just(ROp::Slt),
                    Just(ROp::Sltu),
                    Just(ROp::Xor),
                    Just(ROp::Srl),
                    Just(ROp::Sra),
                    Just(ROp::Or),
                    Just(ROp::And),
                    Just(ROp::Mul),
                    Just(ROp::Div),
                    Just(ROp::Rem),
                ],
                reg.clone(),
                reg.clone(),
                reg.clone()
            )
                .prop_map(|(op, rd, rs1, rs2)| Inst::R { op, rd, rs1, rs2 }),
            (
                prop_oneof![
                    Just(IOp::Addi),
                    Just(IOp::Slti),
                    Just(IOp::Sltiu),
                    Just(IOp::Xori),
                    Just(IOp::Ori),
                    Just(IOp::Andi),
                ],
                reg.clone(),
                reg.clone(),
                imm12.clone()
            )
                .prop_map(|(op, rd, rs1, imm)| Inst::I { op, rd, rs1, imm }),
            (
                prop_oneof![Just(IOp::Slli), Just(IOp::Srli), Just(IOp::Srai)],
                reg.clone(),
                reg.clone(),
                shamt
            )
                .prop_map(|(op, rd, rs1, imm)| Inst::I { op, rd, rs1, imm }),
            (
                prop_oneof![
                    Just(Width::B),
                    Just(Width::Bu),
                    Just(Width::H),
                    Just(Width::Hu),
                    Just(Width::W)
                ],
                reg.clone(),
                reg.clone(),
                imm12.clone()
            )
                .prop_map(|(width, rd, rs1, imm)| Inst::Load {
                    width,
                    rd,
                    rs1,
                    imm
                }),
            (
                prop_oneof![Just(Width::B), Just(Width::H), Just(Width::W)],
                reg.clone(),
                reg.clone(),
                imm12.clone()
            )
                .prop_map(|(width, rs2, rs1, imm)| Inst::Store {
                    width,
                    rs2,
                    rs1,
                    imm
                }),
            (
                prop_oneof![
                    Just(BOp::Beq),
                    Just(BOp::Bne),
                    Just(BOp::Blt),
                    Just(BOp::Bge),
                    Just(BOp::Bltu),
                    Just(BOp::Bgeu)
                ],
                reg.clone(),
                reg.clone(),
                (-2048i32..2048).prop_map(|v| v * 2)
            )
                .prop_map(|(op, rs1, rs2, imm)| Inst::Branch { op, rs1, rs2, imm }),
            (reg.clone(), imm20.clone()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
            (reg.clone(), imm20).prop_map(|(rd, imm)| Inst::Auipc { rd, imm }),
            (reg.clone(), (-262144i32..262144).prop_map(|v| v * 2))
                .prop_map(|(rd, imm)| Inst::Jal { rd, imm }),
            (reg.clone(), reg, imm12).prop_map(|(rd, rs1, imm)| Inst::Jalr { rd, rs1, imm }),
            Just(Inst::Ecall),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(inst in arb_inst()) {
            prop_assert_eq!(decode(encode(&inst)), Some(inst));
        }
    }
}
