//! An RV32I-subset assembler and simulator, built as the "assembly
//! language" substrate for the EasyTracker reproduction.
//!
//! The paper's Fig. 7 tool shows CPU registers and raw memory while
//! stepping a RISC-V program under GDB. This crate provides the whole
//! chain natively:
//!
//! * [`isa`] — the instruction set: typed instructions, real RV32I binary
//!   encoding and decoding (the simulator fetches and decodes actual
//!   instruction words, so tools that display raw memory show real code
//!   bytes);
//! * [`asm`] — a two-pass assembler with labels, `.data` directives and
//!   the common pseudo-instructions (`li`, `la`, `mv`, `j`, `ret`, ...);
//! * [`sim`] — a step-at-a-time simulator with per-instruction source-line
//!   debug info, register/memory access for inspectors, and RARS-style
//!   `ecall` conventions for output and exit.
//!
//! # Examples
//!
//! ```
//! let src = "
//! main:
//!     li a0, 21
//!     add a0, a0, a0
//!     li a7, 93      # exit(a0)
//!     ecall
//! ";
//! let program = miniasm::asm::assemble("t.s", src)?;
//! let mut cpu = miniasm::sim::Cpu::new(&program);
//! let exit = cpu.run_to_exit(10_000)?;
//! assert_eq!(exit, 42);
//! # Ok::<(), miniasm::Error>(())
//! ```

pub mod asm;
pub mod isa;
pub mod sim;

use std::fmt;

/// Errors from the assembler or simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Assembly-time error.
    Asm {
        /// 1-based source line.
        line: u32,
        /// Description.
        message: String,
    },
    /// Runtime error in the simulator.
    Sim {
        /// Program counter at the fault.
        pc: u32,
        /// Description.
        message: String,
    },
}

impl Error {
    /// The error message without location.
    pub fn message(&self) -> &str {
        match self {
            Error::Asm { message, .. } | Error::Sim { message, .. } => message,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Asm { line, message } => write!(f, "assembly error at line {line}: {message}"),
            Error::Sim { pc, message } => write!(f, "simulator fault at pc={pc:#x}: {message}"),
        }
    }
}

impl std::error::Error for Error {}
