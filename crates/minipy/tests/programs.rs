//! Program-level MiniPy battery: the teaching programs the paper's tools
//! display, run end to end and checked by output.

use minipy::{run_source, NullTracer};

fn out(src: &str) -> String {
    run_source(src, &mut NullTracer).expect("runs").output
}

#[test]
fn insertion_sort() {
    let src = "
def insertion_sort(a):
    i = 1
    while i < len(a):
        key = a[i]
        j = i - 1
        while j >= 0 and a[j] > key:
            a[j + 1] = a[j]
            j = j - 1
        a[j + 1] = key
        i = i + 1
    return a
print(insertion_sort([5, 2, 8, 1, 9, 3]))
";
    assert_eq!(out(src), "[1, 2, 3, 5, 8, 9]\n");
}

#[test]
fn fibonacci_memoized_with_dict() {
    let src = "
memo = {}
def fib(n):
    if n < 2:
        return n
    if n in memo:
        return memo[n]
    r = fib(n - 1) + fib(n - 2)
    memo[n] = r
    return r
print(fib(30))
print(len(memo))
";
    assert_eq!(out(src), "832040\n29\n");
}

#[test]
fn class_based_stack() {
    let src = "
class Stack:
    def __init__(self):
        self.items = []
    def push(self, v):
        self.items.append(v)
    def pop(self):
        return self.items.pop()
    def size(self):
        return len(self.items)
s = Stack()
for i in range(5):
    s.push(i * i)
print(s.pop(), s.pop(), s.size())
";
    assert_eq!(out(src), "16 9 3\n");
}

#[test]
fn linked_list_with_none_terminator() {
    let src = "
class Node:
    def __init__(self, v, next):
        self.v = v
        self.next = next
head = None
for i in range(5):
    head = Node(i, head)
total = 0
cur = head
while cur != None:
    total = total + cur.v
    cur = cur.next
print(total)
";
    assert_eq!(out(src), "10\n");
}

#[test]
fn word_frequency_with_dict() {
    let src = "
text = 'the cat and the dog and the bird'
counts = {}
for w in text.split():
    counts[w] = counts.get(w, 0) + 1
print(counts['the'], counts['and'], counts.get('fish', 0))
";
    assert_eq!(out(src), "3 2 0\n");
}

#[test]
fn tuple_swap_gcd() {
    let src = "
a, b = 252, 105
while b != 0:
    a, b = b, a % b
print(a)
";
    assert_eq!(out(src), "21\n");
}

#[test]
fn nested_list_mutation_through_alias() {
    let src = "
grid = [[0, 0], [0, 0]]
row = grid[1]
row[0] = 7
grid[0][1] = 3
print(grid)
";
    assert_eq!(out(src), "[[0, 3], [7, 0]]\n");
}

#[test]
fn string_processing() {
    let src = "
s = 'EasyTracker'
upper = 0
for c in s:
    if c == c.upper() and c != c.lower():
        upper = upper + 1
print(upper, s.lower(), len(s))
";
    assert_eq!(out(src), "2 easytracker 11\n");
}

#[test]
fn sorted_and_aggregates() {
    let src = "
data = [31, 4, 15, 9, 26, 5]
print(sorted(data))
print(min(data), max(data), sum(data))
";
    assert_eq!(out(src), "[4, 5, 9, 15, 26, 31]\n4 31 90\n");
}

#[test]
fn global_counter_across_functions() {
    let src = "
calls = 0
def traced(x):
    global calls
    calls = calls + 1
    return x * 2
total = 0
for i in range(4):
    total = total + traced(i)
print(total, calls)
";
    assert_eq!(out(src), "12 4\n");
}

#[test]
fn range_stepping_and_membership() {
    let src = "
evens = range(0, 20, 2)
print(len(evens), 8 in evens, 9 in evens)
print(list(range(5, 0, -1)))
";
    assert_eq!(out(src), "10 True False\n[5, 4, 3, 2, 1]\n");
}

#[test]
fn mutual_recursion() {
    let src = "
def is_even(n):
    if n == 0:
        return True
    return is_odd(n - 1)
def is_odd(n):
    if n == 0:
        return False
    return is_even(n - 1)
print(is_even(10), is_odd(7))
";
    assert_eq!(out(src), "True True\n");
}

#[test]
fn matrix_transpose() {
    let src = "
m = [[1, 2, 3], [4, 5, 6]]
t = []
for j in range(3):
    row = []
    for i in range(2):
        row.append(m[i][j])
    t.append(row)
print(t)
";
    assert_eq!(out(src), "[[1, 4], [2, 5], [3, 6]]\n");
}

#[test]
fn queue_via_list_methods() {
    let src = "
q = []
for job in ['a', 'b', 'c']:
    q.append(job)
served = []
while len(q) > 0:
    served.append(q.pop(0))
print(served)
";
    assert_eq!(out(src), "['a', 'b', 'c']\n");
}

#[test]
fn boolean_short_circuit_guards() {
    let src = "
data = []
if len(data) > 0 and data[0] == 1:
    print('first is one')
else:
    print('safe')
";
    assert_eq!(out(src), "safe\n");
}

#[test]
fn percent_format_report() {
    let src = "
name = 'fib'
value = 55
print('%s(10) = %d' % (name, value))
";
    assert_eq!(out(src), "fib(10) = 55\n");
}

#[test]
fn slicing() {
    assert_eq!(
        out("a = [0, 1, 2, 3, 4]\nprint(a[1:3], a[:2], a[3:], a[:])"),
        "[1, 2] [0, 1] [3, 4] [0, 1, 2, 3, 4]\n"
    );
    assert_eq!(
        out("print('easytracker'[:4], 'easytracker'[4:])"),
        "easy tracker\n"
    );
    assert_eq!(
        out("a = [1, 2, 3]\nprint(a[-2:], a[:-1])"),
        "[2, 3] [1, 2]\n"
    );
    assert_eq!(out("t = (1, 2, 3, 4)\nprint(t[1:3])"), "(2, 3)\n");
    // Out-of-range bounds clamp; empty when lo >= hi.
    assert_eq!(
        out("a = [1, 2]\nprint(a[0:99], a[5:], a[2:1])"),
        "[1, 2] [] []\n"
    );
    // Slices copy: mutating the copy leaves the source alone.
    assert_eq!(
        out("a = [1, 2, 3]\nb = a[:]\nb[0] = 9\nprint(a, b)"),
        "[1, 2, 3] [9, 2, 3]\n"
    );
}

#[test]
fn slice_errors() {
    let err = run_source("d = {}\nx = d[1:2]\n", &mut NullTracer).unwrap_err();
    assert!(err.message().contains("not sliceable"));
    let err = run_source("a = [1]\nx = a['q':2]\n", &mut NullTracer).unwrap_err();
    assert!(err.message().contains("slice indices"));
}
