//! A Python-subset interpreter, built as the "interpreted language"
//! substrate for the EasyTracker reproduction.
//!
//! The paper's Python tracker sits on CPython's `sys.settrace`: the
//! interpreter calls a registered trace function before every source line,
//! after every function entry, and before every function return. This crate
//! provides the same contract natively:
//!
//! * [`lexer`]/[`parser`] handle an indentation-sensitive Python subset;
//! * [`value`] implements an explicit object heap — every MiniPy value is a
//!   heap object named by an [`value::ObjRef`], so the paper's "every
//!   Python variable is a reference into the heap" model (and `id()`
//!   addresses) falls out naturally;
//! * [`interp`] is a tree-walking interpreter that invokes a [`Tracer`]
//!   callback with the same three event kinds as `sys.settrace` (plus
//!   output), giving the callback full frame/heap inspection access;
//! * [`inspect`] converts a paused interpreter's state into the
//!   language-agnostic [`state`] representation.
//!
//! # Language
//!
//! Integers, floats, booleans, strings, `None`, lists, tuples, dicts,
//! functions (with recursion and default-less positional parameters),
//! simple classes (`__init__`, methods, attributes), `if`/`elif`/`else`,
//! `while`, `for ... in`, `break`/`continue`/`pass`, `global`, tuple
//! assignment (`a, b = b, a`), augmented assignment, comparison/boolean
//! operators, indexing and slicing-free subscripts, attribute access, and
//! the builtins `print len range str int float abs min max sum sorted list
//! id type`. No closures over mutated locals, no generators, no
//! exceptions-as-control-flow (runtime errors stop the program, which is
//! what the teaching tools want).
//!
//! # Examples
//!
//! ```
//! use minipy::{run_source, NullTracer};
//!
//! let outcome = minipy::run_source("print(1 + 2)", &mut NullTracer).unwrap();
//! assert_eq!(outcome.output, "3\n");
//! assert_eq!(outcome.exit_code, 0);
//! ```

pub mod ast;
pub mod inspect;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod value;

pub use interp::{Interp, RunOutcome, TraceAction, TraceCtx, TraceEvent, Tracer};

use std::fmt;

/// Any error produced while parsing or running MiniPy code.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexical error (bad indentation, unterminated string, ...).
    Lex {
        /// 1-based line.
        line: u32,
        /// Description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based line.
        line: u32,
        /// Description.
        message: String,
    },
    /// Runtime error (`NameError`, `TypeError`, `IndexError`, ...).
    Runtime {
        /// 1-based line of the executing statement.
        line: u32,
        /// Description, prefixed with the Python exception name.
        message: String,
    },
    /// The tracer asked the interpreter to stop (tracker `terminate`).
    Stopped,
}

impl Error {
    /// The source line of the error (0 for [`Error::Stopped`]).
    pub fn line(&self) -> u32 {
        match self {
            Error::Lex { line, .. } | Error::Parse { line, .. } | Error::Runtime { line, .. } => {
                *line
            }
            Error::Stopped => 0,
        }
    }

    /// The message without the location prefix.
    pub fn message(&self) -> &str {
        match self {
            Error::Lex { message, .. }
            | Error::Parse { message, .. }
            | Error::Runtime { message, .. } => message,
            Error::Stopped => "stopped by tracer",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { line, message } => write!(f, "lexical error at line {line}: {message}"),
            Error::Parse { line, message } => write!(f, "syntax error at line {line}: {message}"),
            Error::Runtime { line, message } => write!(f, "line {line}: {message}"),
            Error::Stopped => write!(f, "stopped by tracer"),
        }
    }
}

impl std::error::Error for Error {}

/// A [`Tracer`] that ignores every event (plain, uncontrolled execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn trace(&mut self, _event: &TraceEvent, _ctx: &TraceCtx<'_>) -> TraceAction {
        TraceAction::Continue
    }
}

/// Parses and runs MiniPy source under the given tracer.
///
/// # Errors
///
/// Returns parse errors immediately; runtime errors after partial
/// execution (the [`RunOutcome`] is lost in that case — use [`Interp`]
/// directly if you need the partial output).
///
/// # Examples
///
/// ```
/// let out = minipy::run_source("x = [1, 2]\nx.append(3)\nprint(len(x))", &mut minipy::NullTracer)?;
/// assert_eq!(out.output, "3\n");
/// # Ok::<(), minipy::Error>(())
/// ```
pub fn run_source(source: &str, tracer: &mut dyn Tracer) -> Result<RunOutcome, Error> {
    let module = parser::parse(source)?;
    let mut interp = Interp::new(module);
    interp.run(tracer)
}
