//! Converts a paused MiniPy interpreter into the language-agnostic
//! [`state`] representation.
//!
//! Per the paper's model, every variable binding becomes a `REF` value on
//! the stack pointing to a heap object; aliasing is visible because two
//! bindings to the same object yield references with the same target
//! address.

use crate::interp::TraceCtx;
use state::{Frame, Scope, SourceLocation, Variable};

/// Builds the innermost [`Frame`] with the full parent chain from a trace
/// context.
///
/// The module frame is reported as function `<module>` at depth 0, like
/// CPython's. Variables appear in assignment order.
pub fn current_frame(ctx: &TraceCtx<'_>, file: &str) -> Frame {
    let mut result: Option<Frame> = None;
    for (depth, pf) in ctx.frames.iter().enumerate() {
        let mut frame = Frame::new(
            pf.name().to_owned(),
            depth as u32,
            SourceLocation::new(file.to_owned(), pf.line()),
        );
        for (name, obj) in pf.vars() {
            let value = ctx.heap.binding_value(obj);
            let scope = if depth == 0 {
                Scope::Global
            } else {
                Scope::Local
            };
            frame.insert_variable(Variable::new(name.to_owned(), scope, value));
        }
        if let Some(parent) = result.take() {
            frame.set_parent(parent);
        }
        result = Some(frame);
    }
    result.expect("interpreter always has a module frame")
}

/// Builds the global (module-level) variables list.
pub fn global_variables(ctx: &TraceCtx<'_>) -> Vec<Variable> {
    let module = ctx.frames.first().expect("module frame");
    module
        .vars()
        .map(|(name, obj)| {
            Variable::new(name.to_owned(), Scope::Global, ctx.heap.binding_value(obj))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{TraceAction, TraceEvent, Tracer};
    use crate::run_source;
    use state::{AbstractType, Content, Prim};

    /// Captures the frame at a given line.
    struct Capture {
        at_line: u32,
        frame: Option<Frame>,
        globals: Vec<Variable>,
    }

    impl Tracer for Capture {
        fn trace(&mut self, event: &TraceEvent, ctx: &TraceCtx<'_>) -> TraceAction {
            if let TraceEvent::Line { line } = event {
                if *line == self.at_line && self.frame.is_none() {
                    self.frame = Some(current_frame(ctx, "prog.py"));
                    self.globals = global_variables(ctx);
                }
            }
            TraceAction::Continue
        }
    }

    fn capture(src: &str, line: u32) -> (Frame, Vec<Variable>) {
        let mut c = Capture {
            at_line: line,
            frame: None,
            globals: Vec::new(),
        };
        run_source(src, &mut c).unwrap();
        (c.frame.expect("line reached"), c.globals)
    }

    #[test]
    fn module_frame_bindings_are_refs() {
        let (frame, globals) = capture("x = 41\ny = x + 1\nz = 0", 3);
        assert_eq!(frame.name(), "<module>");
        assert_eq!(frame.depth(), 0);
        let x = frame.variable("x").unwrap();
        assert_eq!(x.value().abstract_type(), AbstractType::Ref);
        match x.value().deref_fully().content() {
            Content::Primitive(Prim::Int(41)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(globals.len(), 2); // x, y assigned; z not yet
    }

    #[test]
    fn aliased_lists_share_target_address() {
        let (frame, _) = capture("a = [1, 2]\nb = a\nc = [1, 2]\nx = 0", 4);
        let addr = |name: &str| {
            frame
                .variable(name)
                .unwrap()
                .value()
                .deref_fully()
                .address()
                .unwrap()
        };
        assert_eq!(addr("a"), addr("b"));
        assert_ne!(addr("a"), addr("c"));
    }

    #[test]
    fn function_frame_chain() {
        let src = "def g(n):\n    return n\ndef f(x):\n    return g(x * 2)\nf(3)";
        let (frame, _) = capture(src, 2);
        let names: Vec<_> = frame.chain().map(|f| f.name().to_owned()).collect();
        assert_eq!(names, ["g", "f", "<module>"]);
        match frame.variable("n").unwrap().value().deref_fully().content() {
            Content::Primitive(Prim::Int(6)) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Location reported correctly.
        assert_eq!(frame.location().file(), "prog.py");
        assert_eq!(frame.location().line(), 2);
    }

    #[test]
    fn nested_structures() {
        let (frame, _) = capture("d = {'k': [1, (2, 3)]}\nx = 0", 2);
        let d = frame.variable("d").unwrap().value().deref_fully();
        assert_eq!(d.abstract_type(), AbstractType::Dict);
        assert_eq!(d.language_type(), "dict");
    }

    #[test]
    fn instances_are_structs() {
        let src = "class P:\n    def __init__(self):\n        self.v = 7\np = P()\nx = 0";
        let (frame, _) = capture(src, 5);
        let p = frame.variable("p").unwrap().value().deref_fully();
        assert_eq!(p.abstract_type(), AbstractType::Struct);
        assert_eq!(p.language_type(), "P");
    }

    #[test]
    fn none_maps_to_abstract_none() {
        let (frame, _) = capture("n = None\nx = 0", 2);
        let n = frame.variable("n").unwrap().value().deref_fully();
        assert_eq!(n.abstract_type(), AbstractType::None);
    }
}
