//! MiniPy values and the explicit object heap.
//!
//! Every value lives in the [`Heap`] and is named by an [`ObjRef`] — the
//! MiniPy equivalent of a CPython object pointer. This gives the tracker
//! the paper's conceptual model for free: variables are references into
//! the heap, `id()` returns a stable address, and aliasing is observable
//! (two variables naming the same list really share one object).

use state::{Location, Prim, Value};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Reference to a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(pub u32);

/// Conceptual base address of the MiniPy heap (used to fabricate CPython
/// `id()`-style addresses).
pub const PY_HEAP_BASE: u64 = 0x55_0000;

impl ObjRef {
    /// The fabricated memory address of this object.
    pub fn address(self) -> u64 {
        PY_HEAP_BASE + (self.0 as u64) * 0x20
    }
}

/// A MiniPy value.
#[derive(Debug, Clone, PartialEq)]
pub enum PyVal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// `None`.
    None,
    /// List (mutable).
    List(Vec<ObjRef>),
    /// Tuple (immutable).
    Tuple(Vec<ObjRef>),
    /// Dict with insertion-ordered entries.
    Dict(Vec<(ObjRef, ObjRef)>),
    /// A class instance with ordered attributes.
    Instance {
        /// Class name.
        class: String,
        /// Attributes in assignment order.
        fields: Vec<(String, ObjRef)>,
    },
    /// A user function (index into the interpreter's function table).
    Function {
        /// Function name.
        name: String,
        /// Index into the function table.
        index: usize,
    },
    /// A class object (callable constructor; index into the class table).
    Class {
        /// Class name.
        name: String,
        /// Index into the class table.
        index: usize,
    },
    /// A `range` object.
    Range {
        /// Inclusive start.
        start: i64,
        /// Exclusive stop.
        stop: i64,
        /// Step (nonzero).
        step: i64,
    },
    /// A bound method (receiver + function index).
    BoundMethod {
        /// The receiver object.
        receiver: ObjRef,
        /// Method name.
        name: String,
        /// Index into the function table.
        index: usize,
    },
}

impl PyVal {
    /// The Python type name (`type(x).__name__`).
    pub fn type_name(&self) -> &str {
        match self {
            PyVal::Int(_) => "int",
            PyVal::Float(_) => "float",
            PyVal::Bool(_) => "bool",
            PyVal::Str(_) => "str",
            PyVal::None => "NoneType",
            PyVal::List(_) => "list",
            PyVal::Tuple(_) => "tuple",
            PyVal::Dict(_) => "dict",
            PyVal::Instance { class, .. } => class,
            PyVal::Function { .. } | PyVal::BoundMethod { .. } => "function",
            PyVal::Class { .. } => "type",
            PyVal::Range { .. } => "range",
        }
    }

    /// Python truthiness.
    pub fn is_truthy(&self) -> bool {
        match self {
            PyVal::Int(v) => *v != 0,
            PyVal::Float(v) => *v != 0.0,
            PyVal::Bool(b) => *b,
            PyVal::Str(s) => !s.is_empty(),
            PyVal::None => false,
            PyVal::List(v) | PyVal::Tuple(v) => !v.is_empty(),
            PyVal::Dict(v) => !v.is_empty(),
            PyVal::Range { start, stop, step } => {
                (*step > 0 && start < stop) || (*step < 0 && start > stop)
            }
            _ => true,
        }
    }
}

/// The object heap. Objects are never collected (teaching-scale programs);
/// this keeps `id()` values stable, which the tools rely on for arrows.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<PyVal>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Allocates a value, returning its reference.
    pub fn alloc(&mut self, v: PyVal) -> ObjRef {
        self.objects.push(v);
        ObjRef((self.objects.len() - 1) as u32)
    }

    /// Reads an object.
    pub fn get(&self, r: ObjRef) -> &PyVal {
        &self.objects[r.0 as usize]
    }

    /// Mutates an object in place.
    pub fn get_mut(&mut self, r: ObjRef) -> &mut PyVal {
        &mut self.objects[r.0 as usize]
    }

    /// Number of live objects (bench metric).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Structural equality (`==` in MiniPy): deep for containers, identity
    /// for instances/functions.
    pub fn py_eq(&self, a: ObjRef, b: ObjRef) -> bool {
        if a == b {
            return true;
        }
        match (self.get(a), self.get(b)) {
            (PyVal::Int(x), PyVal::Int(y)) => x == y,
            (PyVal::Float(x), PyVal::Float(y)) => x == y,
            (PyVal::Int(x), PyVal::Float(y)) | (PyVal::Float(y), PyVal::Int(x)) => *x as f64 == *y,
            (PyVal::Bool(x), PyVal::Bool(y)) => x == y,
            (PyVal::Bool(x), PyVal::Int(y)) | (PyVal::Int(y), PyVal::Bool(x)) => (*x as i64) == *y,
            (PyVal::Str(x), PyVal::Str(y)) => x == y,
            (PyVal::None, PyVal::None) => true,
            (PyVal::List(x), PyVal::List(y)) | (PyVal::Tuple(x), PyVal::Tuple(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| self.py_eq(*p, *q))
            }
            (PyVal::Dict(x), PyVal::Dict(y)) => {
                x.len() == y.len()
                    && x.iter().all(|(k, v)| {
                        y.iter()
                            .any(|(k2, v2)| self.py_eq(*k, *k2) && self.py_eq(*v, *v2))
                    })
            }
            _ => false,
        }
    }

    /// `repr()`-style rendering (strings quoted).
    pub fn repr(&self, r: ObjRef) -> String {
        let mut out = String::new();
        self.repr_into(r, &mut out, &mut HashSet::new());
        out
    }

    /// `str()`-style rendering (top-level strings unquoted).
    pub fn str_of(&self, r: ObjRef) -> String {
        match self.get(r) {
            PyVal::Str(s) => s.clone(),
            _ => self.repr(r),
        }
    }

    fn repr_into(&self, r: ObjRef, out: &mut String, seen: &mut HashSet<ObjRef>) {
        if !seen.insert(r) {
            out.push_str("...");
            return;
        }
        match self.get(r) {
            PyVal::Int(v) => {
                let _ = write!(out, "{v}");
            }
            PyVal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            PyVal::Bool(true) => out.push_str("True"),
            PyVal::Bool(false) => out.push_str("False"),
            PyVal::Str(s) => {
                let _ = write!(out, "'{}'", s.replace('\\', "\\\\").replace('\'', "\\'"));
            }
            PyVal::None => out.push_str("None"),
            PyVal::List(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.repr_into(*it, out, seen);
                }
                out.push(']');
            }
            PyVal::Tuple(items) => {
                out.push('(');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.repr_into(*it, out, seen);
                }
                if items.len() == 1 {
                    out.push(',');
                }
                out.push(')');
            }
            PyVal::Dict(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.repr_into(*k, out, seen);
                    out.push_str(": ");
                    self.repr_into(*v, out, seen);
                }
                out.push('}');
            }
            PyVal::Instance { class, fields } => {
                let _ = write!(out, "{class}(");
                for (i, (name, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{name}=");
                    self.repr_into(*v, out, seen);
                }
                out.push(')');
            }
            PyVal::Function { name, .. } => {
                let _ = write!(out, "<function {name}>");
            }
            PyVal::BoundMethod { name, .. } => {
                let _ = write!(out, "<bound method {name}>");
            }
            PyVal::Class { name, .. } => {
                let _ = write!(out, "<class '{name}'>");
            }
            PyVal::Range { start, stop, step } => {
                if *step == 1 {
                    let _ = write!(out, "range({start}, {stop})");
                } else {
                    let _ = write!(out, "range({start}, {stop}, {step})");
                }
            }
        }
        seen.remove(&r);
    }

    /// Converts an object to the language-agnostic representation.
    ///
    /// Matching the paper's model: the returned value is the *object*; the
    /// caller wraps it in a `REF` when representing a variable binding.
    /// Containers hold `REF` children so aliasing stays visible.
    pub fn to_abstract(&self, r: ObjRef) -> Value {
        self.to_abstract_bounded(r, 24, &mut HashSet::new())
    }

    fn to_abstract_bounded(&self, r: ObjRef, depth: usize, seen: &mut HashSet<ObjRef>) -> Value {
        let addr = r.address();
        if depth == 0 || !seen.insert(r) {
            return Value::none(self.get(r).type_name().to_owned())
                .with_location(Location::Heap)
                .with_address(addr);
        }
        let v = match self.get(r) {
            PyVal::Int(v) => Value::primitive(Prim::Int(*v), "int"),
            PyVal::Float(v) => Value::primitive(Prim::Float(*v), "float"),
            PyVal::Bool(b) => Value::primitive(Prim::Bool(*b), "bool"),
            PyVal::Str(s) => Value::primitive(Prim::Str(s.clone()), "str"),
            PyVal::None => Value::none("NoneType"),
            PyVal::List(items) => {
                let children = items
                    .iter()
                    .map(|it| self.ref_value(*it, depth - 1, seen))
                    .collect();
                Value::list(children, "list")
            }
            PyVal::Tuple(items) => {
                let children = items
                    .iter()
                    .map(|it| self.ref_value(*it, depth - 1, seen))
                    .collect();
                Value::list(children, "tuple")
            }
            PyVal::Dict(entries) => {
                let children = entries
                    .iter()
                    .map(|(k, v)| {
                        (
                            self.ref_value(*k, depth - 1, seen),
                            self.ref_value(*v, depth - 1, seen),
                        )
                    })
                    .collect();
                Value::dict(children, "dict")
            }
            PyVal::Instance { class, fields } => {
                let children = fields
                    .iter()
                    .map(|(name, v)| (name.clone(), self.ref_value(*v, depth - 1, seen)))
                    .collect();
                Value::structure(children, class.clone())
            }
            PyVal::Function { name, .. } => Value::function(name.clone(), "function"),
            PyVal::BoundMethod { name, .. } => Value::function(name.clone(), "method"),
            PyVal::Class { name, .. } => Value::function(name.clone(), "type"),
            PyVal::Range { start, stop, step } => Value::structure(
                vec![
                    (
                        "start".to_owned(),
                        Value::primitive(Prim::Int(*start), "int"),
                    ),
                    ("stop".to_owned(), Value::primitive(Prim::Int(*stop), "int")),
                    ("step".to_owned(), Value::primitive(Prim::Int(*step), "int")),
                ],
                "range",
            ),
        };
        seen.remove(&r);
        v.with_location(Location::Heap).with_address(addr)
    }

    /// A `REF` value pointing at object `r` — how variables and container
    /// slots are represented (paper §II-B2: every Python variable is a REF
    /// on the stack pointing to the heap).
    pub fn ref_value(&self, r: ObjRef, depth: usize, seen: &mut HashSet<ObjRef>) -> Value {
        let target = self.to_abstract_bounded(r, depth, seen);
        let lt = format!("ref[{}]", self.get(r).type_name());
        Value::reference(target, lt).with_location(Location::Stack)
    }

    /// Public wrapper of [`Heap::ref_value`] with default limits.
    pub fn binding_value(&self, r: ObjRef) -> Value {
        self.ref_value(r, 24, &mut HashSet::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state::AbstractType;

    fn heap() -> Heap {
        Heap::new()
    }

    #[test]
    fn repr_forms() {
        let mut h = heap();
        let i = h.alloc(PyVal::Int(3));
        let f = h.alloc(PyVal::Float(2.0));
        let s = h.alloc(PyVal::Str("a'b".into()));
        let t = h.alloc(PyVal::Bool(true));
        let n = h.alloc(PyVal::None);
        let l = h.alloc(PyVal::List(vec![i, s]));
        let tup1 = h.alloc(PyVal::Tuple(vec![i]));
        let d = h.alloc(PyVal::Dict(vec![(s, i)]));
        assert_eq!(h.repr(i), "3");
        assert_eq!(h.repr(f), "2.0");
        assert_eq!(h.repr(s), "'a\\'b'");
        assert_eq!(h.repr(t), "True");
        assert_eq!(h.repr(n), "None");
        assert_eq!(h.repr(l), "[3, 'a\\'b']");
        assert_eq!(h.repr(tup1), "(3,)");
        assert_eq!(h.repr(d), "{'a\\'b': 3}");
        assert_eq!(h.str_of(s), "a'b");
    }

    #[test]
    fn cyclic_repr_terminates() {
        let mut h = heap();
        let l = h.alloc(PyVal::List(vec![]));
        if let PyVal::List(items) = h.get_mut(l) {
            items.push(l);
        }
        assert_eq!(h.repr(l), "[...]");
    }

    #[test]
    fn py_eq_structural_and_numeric() {
        let mut h = heap();
        let a = h.alloc(PyVal::Int(3));
        let b = h.alloc(PyVal::Int(3));
        let c = h.alloc(PyVal::Float(3.0));
        assert!(h.py_eq(a, b));
        assert!(h.py_eq(a, c));
        let l1 = h.alloc(PyVal::List(vec![a]));
        let l2 = h.alloc(PyVal::List(vec![b]));
        assert!(h.py_eq(l1, l2));
        let t = h.alloc(PyVal::Bool(true));
        let one = h.alloc(PyVal::Int(1));
        assert!(h.py_eq(t, one)); // True == 1 in Python
    }

    #[test]
    fn truthiness() {
        let mut h = heap();
        assert!(!PyVal::Int(0).is_truthy());
        assert!(PyVal::Str("x".into()).is_truthy());
        assert!(!PyVal::Str(String::new()).is_truthy());
        assert!(!PyVal::None.is_truthy());
        let empty = h.alloc(PyVal::List(vec![]));
        assert!(!h.get(empty).is_truthy());
        assert!(!PyVal::Range {
            start: 3,
            stop: 3,
            step: 1
        }
        .is_truthy());
        assert!(PyVal::Range {
            start: 0,
            stop: 3,
            step: 1
        }
        .is_truthy());
    }

    #[test]
    fn abstract_conversion_wraps_children_in_refs() {
        let mut h = heap();
        let i = h.alloc(PyVal::Int(1));
        let l = h.alloc(PyVal::List(vec![i, i]));
        let v = h.to_abstract(l);
        assert_eq!(v.abstract_type(), AbstractType::List);
        let kids: Vec<_> = v.children().collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].abstract_type(), AbstractType::Ref);
        // Aliasing: both children point at the same address.
        assert_eq!(
            kids[0].deref_fully().address(),
            kids[1].deref_fully().address()
        );
        assert_eq!(v.location(), Location::Heap);
        assert_eq!(v.address(), Some(l.address()));
    }

    #[test]
    fn abstract_conversion_handles_cycles() {
        let mut h = heap();
        let l = h.alloc(PyVal::List(vec![]));
        if let PyVal::List(items) = h.get_mut(l) {
            items.push(l);
        }
        let v = h.to_abstract(l);
        assert!(v.depth() < 10);
    }

    #[test]
    fn addresses_are_stable_and_distinct() {
        let mut h = heap();
        let a = h.alloc(PyVal::Int(1));
        let b = h.alloc(PyVal::Int(2));
        assert_ne!(a.address(), b.address());
        assert_eq!(a.address(), ObjRef(0).address());
    }
}
