//! Indentation-aware lexer for MiniPy.
//!
//! Indentation is translated into `Indent`/`Dedent` tokens with a classic
//! offside-rule stack; blank lines and comment-only lines produce nothing.

use crate::Error;
use std::fmt;

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: Tok,
    /// 1-based line.
    pub line: u32,
}

/// MiniPy token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (escapes resolved).
    Str(String),
    /// A keyword.
    Kw(Kw),
    /// Operator / punctuation.
    Op(OpTok),
    /// Logical end of a statement line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased (one level).
    Dedent,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Float(v) => write!(f, "float `{v}`"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Kw(k) => write!(f, "keyword `{k}`"),
            Tok::Op(o) => write!(f, "`{o}`"),
            Tok::Newline => write!(f, "end of line"),
            Tok::Indent => write!(f, "indent"),
            Tok::Dedent => write!(f, "dedent"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// MiniPy keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Def,
    Return,
    If,
    Elif,
    Else,
    While,
    For,
    In,
    Break,
    Continue,
    Pass,
    Global,
    Class,
    And,
    Or,
    Not,
    True,
    False,
    None,
}

impl Kw {
    fn from_ident(s: &str) -> Option<Kw> {
        Some(match s {
            "def" => Kw::Def,
            "return" => Kw::Return,
            "if" => Kw::If,
            "elif" => Kw::Elif,
            "else" => Kw::Else,
            "while" => Kw::While,
            "for" => Kw::For,
            "in" => Kw::In,
            "break" => Kw::Break,
            "continue" => Kw::Continue,
            "pass" => Kw::Pass,
            "global" => Kw::Global,
            "class" => Kw::Class,
            "and" => Kw::And,
            "or" => Kw::Or,
            "not" => Kw::Not,
            "True" => Kw::True,
            "False" => Kw::False,
            "None" => Kw::None,
            _ => return None,
        })
    }
}

impl fmt::Display for Kw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Kw::Def => "def",
            Kw::Return => "return",
            Kw::If => "if",
            Kw::Elif => "elif",
            Kw::Else => "else",
            Kw::While => "while",
            Kw::For => "for",
            Kw::In => "in",
            Kw::Break => "break",
            Kw::Continue => "continue",
            Kw::Pass => "pass",
            Kw::Global => "global",
            Kw::Class => "class",
            Kw::And => "and",
            Kw::Or => "or",
            Kw::Not => "not",
            Kw::True => "True",
            Kw::False => "False",
            Kw::None => "None",
        };
        f.write_str(s)
    }
}

/// MiniPy operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum OpTok {
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    SlashSlash,
    Percent,
    Eq,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    SlashSlashEq,
    PercentEq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
}

impl fmt::Display for OpTok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpTok::Plus => "+",
            OpTok::Minus => "-",
            OpTok::Star => "*",
            OpTok::StarStar => "**",
            OpTok::Slash => "/",
            OpTok::SlashSlash => "//",
            OpTok::Percent => "%",
            OpTok::Eq => "=",
            OpTok::EqEq => "==",
            OpTok::Ne => "!=",
            OpTok::Lt => "<",
            OpTok::Le => "<=",
            OpTok::Gt => ">",
            OpTok::Ge => ">=",
            OpTok::PlusEq => "+=",
            OpTok::MinusEq => "-=",
            OpTok::StarEq => "*=",
            OpTok::SlashEq => "/=",
            OpTok::SlashSlashEq => "//=",
            OpTok::PercentEq => "%=",
            OpTok::LParen => "(",
            OpTok::RParen => ")",
            OpTok::LBracket => "[",
            OpTok::RBracket => "]",
            OpTok::LBrace => "{",
            OpTok::RBrace => "}",
            OpTok::Comma => ",",
            OpTok::Colon => ":",
            OpTok::Dot => ".",
        };
        f.write_str(s)
    }
}

/// Tokenizes MiniPy source, producing `Indent`/`Dedent` per the offside
/// rule.
///
/// # Errors
///
/// Returns [`Error::Lex`] on tabs-vs-spaces confusion (tabs are rejected),
/// inconsistent dedents, unterminated strings, or unknown characters.
///
/// # Examples
///
/// ```
/// let toks = minipy::lexer::lex("if x:\n    y = 1\n")?;
/// assert!(toks.iter().any(|t| t.kind == minipy::lexer::Tok::Indent));
/// # Ok::<(), minipy::Error>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, Error> {
    let mut tokens = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut paren_depth = 0usize;

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        if raw_line.contains('\t') {
            return Err(Error::Lex {
                line: line_no,
                message: "tabs are not allowed for indentation; use spaces".into(),
            });
        }
        let trimmed = raw_line.trim_start_matches(' ');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let indent = raw_line.len() - trimmed.len();
        if paren_depth == 0 {
            let current = *indents.last().expect("indent stack never empty");
            if indent > current {
                indents.push(indent);
                tokens.push(Token {
                    kind: Tok::Indent,
                    line: line_no,
                });
            } else if indent < current {
                while *indents.last().expect("nonempty") > indent {
                    indents.pop();
                    tokens.push(Token {
                        kind: Tok::Dedent,
                        line: line_no,
                    });
                }
                if *indents.last().expect("nonempty") != indent {
                    return Err(Error::Lex {
                        line: line_no,
                        message: "unindent does not match any outer indentation level".into(),
                    });
                }
            }
        }
        lex_line(trimmed, line_no, &mut tokens, &mut paren_depth)?;
        if paren_depth == 0 {
            tokens.push(Token {
                kind: Tok::Newline,
                line: line_no,
            });
        }
    }
    let last_line = source.lines().count() as u32;
    while indents.len() > 1 {
        indents.pop();
        tokens.push(Token {
            kind: Tok::Dedent,
            line: last_line,
        });
    }
    tokens.push(Token {
        kind: Tok::Eof,
        line: last_line.max(1),
    });
    Ok(tokens)
}

fn lex_line(
    text: &str,
    line: u32,
    tokens: &mut Vec<Token>,
    paren_depth: &mut usize,
) -> Result<(), Error> {
    let b = text.as_bytes();
    let mut i = 0;
    let err = |message: String| Error::Lex { line, message };
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' => {
                i += 1;
            }
            b'#' => break,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &text[start..i];
                let kind = match Kw::from_ident(word) {
                    Some(k) => Tok::Kw(k),
                    None => Tok::Ident(word.to_owned()),
                };
                tokens.push(Token { kind, line });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text_num = &text[start..i];
                let kind = if is_float {
                    Tok::Float(
                        text_num
                            .parse()
                            .map_err(|_| err(format!("bad float `{text_num}`")))?,
                    )
                } else {
                    Tok::Int(
                        text_num
                            .parse()
                            .map_err(|_| err(format!("integer out of range `{text_num}`")))?,
                    )
                };
                tokens.push(Token { kind, line });
            }
            b'"' | b'\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(err("unterminated string literal".into()));
                    }
                    match b[i] {
                        q if q == quote => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= b.len() {
                                return Err(err("unterminated escape".into()));
                            }
                            s.push(match b[i] {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'\'' => '\'',
                                b'"' => '"',
                                other => {
                                    return Err(err(format!(
                                        "unknown escape `\\{}`",
                                        other as char
                                    )))
                                }
                            });
                            i += 1;
                        }
                        other => {
                            s.push(other as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: Tok::Str(s),
                    line,
                });
            }
            _ => {
                let (op, len) = lex_op(&text[i..])
                    .ok_or_else(|| err(format!("unexpected character `{}`", c as char)))?;
                match op {
                    OpTok::LParen | OpTok::LBracket | OpTok::LBrace => *paren_depth += 1,
                    OpTok::RParen | OpTok::RBracket | OpTok::RBrace => {
                        *paren_depth = paren_depth.saturating_sub(1)
                    }
                    _ => {}
                }
                tokens.push(Token {
                    kind: Tok::Op(op),
                    line,
                });
                i += len;
            }
        }
    }
    Ok(())
}

fn lex_op(s: &str) -> Option<(OpTok, usize)> {
    let three = s.get(..3);
    let two = s.get(..2);
    if three == Some("//=") {
        return Some((OpTok::SlashSlashEq, 3));
    }
    if let Some(t) = two {
        let op = match t {
            "**" => Some(OpTok::StarStar),
            "//" => Some(OpTok::SlashSlash),
            "==" => Some(OpTok::EqEq),
            "!=" => Some(OpTok::Ne),
            "<=" => Some(OpTok::Le),
            ">=" => Some(OpTok::Ge),
            "+=" => Some(OpTok::PlusEq),
            "-=" => Some(OpTok::MinusEq),
            "*=" => Some(OpTok::StarEq),
            "/=" => Some(OpTok::SlashEq),
            "%=" => Some(OpTok::PercentEq),
            _ => None,
        };
        if let Some(op) = op {
            return Some((op, 2));
        }
    }
    let op = match s.as_bytes().first()? {
        b'+' => OpTok::Plus,
        b'-' => OpTok::Minus,
        b'*' => OpTok::Star,
        b'/' => OpTok::Slash,
        b'%' => OpTok::Percent,
        b'=' => OpTok::Eq,
        b'<' => OpTok::Lt,
        b'>' => OpTok::Gt,
        b'(' => OpTok::LParen,
        b')' => OpTok::RParen,
        b'[' => OpTok::LBracket,
        b']' => OpTok::RBracket,
        b'{' => OpTok::LBrace,
        b'}' => OpTok::RBrace,
        b',' => OpTok::Comma,
        b':' => OpTok::Colon,
        b'.' => OpTok::Dot,
        _ => return None,
    };
    Some((op, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_statement() {
        assert_eq!(
            kinds("x = 1"),
            vec![
                Tok::Ident("x".into()),
                Tok::Op(OpTok::Eq),
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let ks = kinds("if a:\n    b = 1\n    c = 2\nd = 3");
        let indents = ks.iter().filter(|k| **k == Tok::Indent).count();
        let dedents = ks.iter().filter(|k| **k == Tok::Dedent).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn nested_dedents_at_eof() {
        let ks = kinds("if a:\n    if b:\n        c = 1");
        let dedents = ks.iter().filter(|k| **k == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_and_comment_lines_ignored() {
        let ks = kinds("a = 1\n\n# comment\n   \nb = 2");
        let newlines = ks.iter().filter(|k| **k == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn implicit_line_continuation_in_brackets() {
        let ks = kinds("a = [1,\n     2,\n     3]");
        let newlines = ks.iter().filter(|k| **k == Tok::Newline).count();
        assert_eq!(newlines, 1, "brackets suppress newlines");
        assert!(!ks.contains(&Tok::Indent));
    }

    #[test]
    fn strings_both_quotes_and_escapes() {
        assert_eq!(kinds("'a\\n'")[0], Tok::Str("a\n".into()));
        assert_eq!(kinds("\"b'c\"")[0], Tok::Str("b'c".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], Tok::Int(42));
        assert_eq!(kinds("2.5")[0], Tok::Float(2.5));
    }

    #[test]
    fn operators() {
        let ks = kinds("a //= b ** 2 != c");
        assert!(ks.contains(&Tok::Op(OpTok::SlashSlashEq)));
        assert!(ks.contains(&Tok::Op(OpTok::StarStar)));
        assert!(ks.contains(&Tok::Op(OpTok::Ne)));
    }

    #[test]
    fn keywords_vs_identifiers() {
        let ks = kinds("for iffy in None");
        assert_eq!(ks[0], Tok::Kw(Kw::For));
        assert_eq!(ks[1], Tok::Ident("iffy".into()));
        assert_eq!(ks[2], Tok::Kw(Kw::In));
        assert_eq!(ks[3], Tok::Kw(Kw::None));
    }

    #[test]
    fn errors() {
        assert!(lex("x = 'abc").is_err());
        assert!(lex("x = $").is_err());
        assert!(lex("\tx = 1").is_err());
        assert!(matches!(
            lex("if a:\n    b = 1\n  c = 2"),
            Err(Error::Lex { .. })
        ));
    }

    #[test]
    fn line_numbers_recorded() {
        let toks = lex("a = 1\nb = 2").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[4].line, 2);
    }
}
