//! Abstract syntax tree for MiniPy.

/// A parsed module (top-level statements).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Top-level statements, including `def`s and `class`es.
    pub body: Vec<Stmt>,
}

/// A statement with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// 1-based line.
    pub line: u32,
    /// The statement's form.
    pub kind: StmtKind,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `targets = value` (single target or tuple of names).
    Assign {
        /// Assignment target.
        target: Target,
        /// Right-hand side.
        value: Expr,
    },
    /// `target op= value`.
    AugAssign {
        /// Assignment target (no tuple targets).
        target: Target,
        /// `+`, `-`, `*`, `/`, `//`, `%`.
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if`/`elif`/`else` chain; `elif`s are nested `If`s in `orelse`.
    If {
        /// Condition.
        test: Expr,
        /// True branch.
        body: Vec<Stmt>,
        /// Else branch (may hold a single nested `If` for `elif`).
        orelse: Vec<Stmt>,
    },
    /// `while test:`
    While {
        /// Condition.
        test: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for target in iter:`
    For {
        /// Loop variable(s).
        target: Target,
        /// Iterable expression.
        iter: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `def name(params):`
    Def {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `class name:` with method definitions.
    Class {
        /// Class name.
        name: String,
        /// Methods (each a `Def`).
        methods: Vec<Stmt>,
    },
    /// `return value?`
    Return(Option<Expr>),
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `pass`
    Pass,
    /// `global name, ...`
    Global(Vec<String>),
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A plain name.
    Name(String),
    /// Subscript `base[index]`.
    Index {
        /// Container expression.
        base: Expr,
        /// Index expression.
        index: Expr,
    },
    /// Attribute `base.attr`.
    Attr {
        /// Object expression.
        base: Expr,
        /// Attribute name.
        attr: String,
    },
    /// Tuple of names `a, b = ...`.
    Tuple(Vec<Target>),
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// 1-based line.
    pub line: u32,
    /// Form.
    pub kind: ExprKind,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, line: u32) -> Self {
        Expr { kind, line }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    FloorDiv,
    Mod,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    In,
    NotIn,
}

impl BinOp {
    /// Whether the operator yields a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::In
                | BinOp::NotIn
        )
    }
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `True`/`False`.
    Bool(bool),
    /// `None`.
    None,
    /// Name reference.
    Name(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `and`/`or` (short-circuit, Python value semantics).
    Bool2 {
        /// true = `and`.
        is_and: bool,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `not e`.
    Not(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Call `func(args...)`; `func` is any expression (name, attribute).
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Subscript `base[index]`.
    Index {
        /// Container.
        base: Box<Expr>,
        /// Index.
        index: Box<Expr>,
    },
    /// Slice `base[lo:hi]` (either bound optional).
    Slice {
        /// Container.
        base: Box<Expr>,
        /// Lower bound (default 0).
        lo: Option<Box<Expr>>,
        /// Upper bound (default `len`).
        hi: Option<Box<Expr>>,
    },
    /// Attribute access `base.attr`.
    Attr {
        /// Object.
        base: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// List display `[a, b, c]`.
    List(Vec<Expr>),
    /// Tuple display `(a, b)` or bare `a, b`.
    Tuple(Vec<Expr>),
    /// Dict display `{k: v, ...}`.
    Dict(Vec<(Expr, Expr)>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_classification() {
        assert!(BinOp::In.is_comparison());
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Pow.is_comparison());
    }
}
