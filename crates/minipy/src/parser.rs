//! Recursive-descent parser for MiniPy.

use crate::ast::*;
use crate::lexer::{lex, Kw, OpTok, Tok, Token};
use crate::Error;

/// Parses MiniPy source into a [`Module`].
///
/// # Errors
///
/// Returns the first lexical or syntax error.
///
/// # Examples
///
/// ```
/// let m = minipy::parser::parse("def f(x):\n    return x + 1\nprint(f(2))")?;
/// assert_eq!(m.body.len(), 2);
/// # Ok::<(), minipy::Error>(())
/// ```
pub fn parse(source: &str) -> Result<Module, Error> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let body = p.statements_until_eof()?;
    Ok(Module { body })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn eat_op(&mut self, op: OpTok) -> bool {
        if self.peek() == &Tok::Op(op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: OpTok) -> Result<(), Error> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{op}`, found {}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.peek() == &Tok::Kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_newline(&mut self) -> Result<(), Error> {
        match self.bump() {
            Tok::Newline | Tok::Eof => Ok(()),
            other => Err(Error::Parse {
                line: self.tokens[self.pos.saturating_sub(1)].line,
                message: format!("expected end of line, found {other}"),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, Error> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn statements_until_eof(&mut self) -> Result<Vec<Stmt>, Error> {
        let mut out = Vec::new();
        while self.peek() != &Tok::Eof {
            out.push(self.statement()?);
        }
        Ok(out)
    }

    /// Parses `:` NEWLINE INDENT stmts DEDENT (an indented suite).
    fn suite(&mut self) -> Result<Vec<Stmt>, Error> {
        self.expect_op(OpTok::Colon)?;
        // Inline suite: `if x: y = 1` on one line.
        if self.peek() != &Tok::Newline {
            let stmt = self.simple_statement()?;
            return Ok(vec![stmt]);
        }
        self.expect_newline()?;
        if self.bump() != Tok::Indent {
            return Err(self.err("expected an indented block"));
        }
        let mut out = Vec::new();
        while self.peek() != &Tok::Dedent && self.peek() != &Tok::Eof {
            out.push(self.statement()?);
        }
        if self.peek() == &Tok::Dedent {
            self.bump();
        }
        if out.is_empty() {
            return Err(self.err("empty block"));
        }
        Ok(out)
    }

    fn statement(&mut self) -> Result<Stmt, Error> {
        let line = self.line();
        match self.peek() {
            Tok::Kw(Kw::If) => {
                self.bump();
                self.if_chain(line)
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                let test = self.expression()?;
                let body = self.suite()?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::While { test, body },
                })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                let target = self.name_target()?;
                if !self.eat_kw(Kw::In) {
                    return Err(self.err("expected `in` in for statement"));
                }
                let iter = self.expression()?;
                let body = self.suite()?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::For { target, iter, body },
                })
            }
            Tok::Kw(Kw::Def) => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect_op(OpTok::LParen)?;
                let mut params = Vec::new();
                if !self.eat_op(OpTok::RParen) {
                    loop {
                        params.push(self.expect_ident()?);
                        if !self.eat_op(OpTok::Comma) {
                            break;
                        }
                    }
                    self.expect_op(OpTok::RParen)?;
                }
                let body = self.suite()?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::Def { name, params, body },
                })
            }
            Tok::Kw(Kw::Class) => {
                self.bump();
                let name = self.expect_ident()?;
                let body = self.suite()?;
                let mut methods = Vec::new();
                for s in body {
                    match &s.kind {
                        StmtKind::Def { .. } => methods.push(s),
                        StmtKind::Pass => {}
                        _ => {
                            return Err(Error::Parse {
                                line: s.line,
                                message: "class bodies may only contain methods and `pass`".into(),
                            })
                        }
                    }
                }
                Ok(Stmt {
                    line,
                    kind: StmtKind::Class { name, methods },
                })
            }
            _ => self.simple_statement(),
        }
    }

    fn if_chain(&mut self, line: u32) -> Result<Stmt, Error> {
        let test = self.expression()?;
        let body = self.suite()?;
        let orelse = if self.peek() == &Tok::Kw(Kw::Elif) {
            let elif_line = self.line();
            self.bump();
            vec![self.if_chain(elif_line)?]
        } else if self.eat_kw(Kw::Else) {
            self.suite()?
        } else {
            Vec::new()
        };
        Ok(Stmt {
            line,
            kind: StmtKind::If { test, body, orelse },
        })
    }

    /// A one-line statement ending in NEWLINE.
    fn simple_statement(&mut self) -> Result<Stmt, Error> {
        let line = self.line();
        let kind = match self.peek() {
            Tok::Kw(Kw::Return) => {
                self.bump();
                let value = if matches!(self.peek(), Tok::Newline | Tok::Eof) {
                    None
                } else {
                    Some(self.expression()?)
                };
                StmtKind::Return(value)
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                StmtKind::Break
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                StmtKind::Continue
            }
            Tok::Kw(Kw::Pass) => {
                self.bump();
                StmtKind::Pass
            }
            Tok::Kw(Kw::Global) => {
                self.bump();
                let mut names = vec![self.expect_ident()?];
                while self.eat_op(OpTok::Comma) {
                    names.push(self.expect_ident()?);
                }
                StmtKind::Global(names)
            }
            _ => {
                let first = self.expression_no_tuple()?;
                match self.peek() {
                    // Tuple target: `a, b = ...`
                    Tok::Op(OpTok::Comma) => {
                        let mut targets = vec![self.expr_to_target(first)?];
                        while self.eat_op(OpTok::Comma) {
                            let e = self.expression_no_tuple()?;
                            targets.push(self.expr_to_target(e)?);
                        }
                        self.expect_op(OpTok::Eq)?;
                        let value = self.expression()?;
                        StmtKind::Assign {
                            target: Target::Tuple(targets),
                            value,
                        }
                    }
                    Tok::Op(OpTok::Eq) => {
                        self.bump();
                        let target = self.expr_to_target(first)?;
                        let value = self.expression()?;
                        StmtKind::Assign { target, value }
                    }
                    Tok::Op(
                        op @ (OpTok::PlusEq
                        | OpTok::MinusEq
                        | OpTok::StarEq
                        | OpTok::SlashEq
                        | OpTok::SlashSlashEq
                        | OpTok::PercentEq),
                    ) => {
                        let binop = match op {
                            OpTok::PlusEq => BinOp::Add,
                            OpTok::MinusEq => BinOp::Sub,
                            OpTok::StarEq => BinOp::Mul,
                            OpTok::SlashEq => BinOp::Div,
                            OpTok::SlashSlashEq => BinOp::FloorDiv,
                            OpTok::PercentEq => BinOp::Mod,
                            _ => unreachable!("matched above"),
                        };
                        self.bump();
                        let target = self.expr_to_target(first)?;
                        if matches!(target, Target::Tuple(_)) {
                            return Err(self.err("augmented assignment needs a single target"));
                        }
                        let value = self.expression()?;
                        StmtKind::AugAssign {
                            target,
                            op: binop,
                            value,
                        }
                    }
                    _ => StmtKind::Expr(first),
                }
            }
        };
        self.expect_newline()?;
        Ok(Stmt { line, kind })
    }

    fn expr_to_target(&self, e: Expr) -> Result<Target, Error> {
        match e.kind {
            ExprKind::Name(n) => Ok(Target::Name(n)),
            ExprKind::Index { base, index } => Ok(Target::Index {
                base: *base,
                index: *index,
            }),
            ExprKind::Attr { base, attr } => Ok(Target::Attr { base: *base, attr }),
            ExprKind::Tuple(items) => {
                let targets = items
                    .into_iter()
                    .map(|i| self.expr_to_target(i))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Target::Tuple(targets))
            }
            _ => Err(Error::Parse {
                line: e.line,
                message: "invalid assignment target".into(),
            }),
        }
    }

    /// For-loop target: names or tuple of names.
    fn name_target(&mut self) -> Result<Target, Error> {
        let first = Target::Name(self.expect_ident()?);
        if self.peek() != &Tok::Op(OpTok::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_op(OpTok::Comma) {
            items.push(Target::Name(self.expect_ident()?));
        }
        Ok(Target::Tuple(items))
    }

    // -- expressions ---------------------------------------------------------

    /// Full expression, allowing bare tuples `a, b`.
    fn expression(&mut self) -> Result<Expr, Error> {
        let line = self.line();
        let first = self.expression_no_tuple()?;
        if self.peek() != &Tok::Op(OpTok::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_op(OpTok::Comma) {
            // Trailing comma before a closer/newline ends the tuple.
            if matches!(
                self.peek(),
                Tok::Newline
                    | Tok::Eof
                    | Tok::Op(OpTok::RParen | OpTok::RBracket | OpTok::RBrace | OpTok::Colon)
            ) {
                break;
            }
            items.push(self.expression_no_tuple()?);
        }
        Ok(Expr::new(ExprKind::Tuple(items), line))
    }

    fn expression_no_tuple(&mut self) -> Result<Expr, Error> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::Kw(Kw::Or) {
            let line = self.line();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::new(
                ExprKind::Bool2 {
                    is_and: false,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.not_expr()?;
        while self.peek() == &Tok::Kw(Kw::And) {
            let line = self.line();
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::new(
                ExprKind::Bool2 {
                    is_and: true,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, Error> {
        if self.peek() == &Tok::Kw(Kw::Not) {
            let line = self.line();
            self.bump();
            let operand = self.not_expr()?;
            return Ok(Expr::new(ExprKind::Not(Box::new(operand)), line));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, Error> {
        let lhs = self.arith()?;
        let op = match self.peek() {
            Tok::Op(OpTok::EqEq) => Some(BinOp::Eq),
            Tok::Op(OpTok::Ne) => Some(BinOp::Ne),
            Tok::Op(OpTok::Lt) => Some(BinOp::Lt),
            Tok::Op(OpTok::Le) => Some(BinOp::Le),
            Tok::Op(OpTok::Gt) => Some(BinOp::Gt),
            Tok::Op(OpTok::Ge) => Some(BinOp::Ge),
            Tok::Kw(Kw::In) => Some(BinOp::In),
            Tok::Kw(Kw::Not) => {
                // `not in`
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&Tok::Kw(Kw::In)) {
                    Some(BinOp::NotIn)
                } else {
                    None
                }
            }
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        let line = self.line();
        self.bump();
        if op == BinOp::NotIn {
            self.bump(); // the `in`
        }
        let rhs = self.arith()?;
        Ok(Expr::new(
            ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            line,
        ))
    }

    fn arith(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Op(OpTok::Plus) => BinOp::Add,
                Tok::Op(OpTok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
    }

    fn term(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Tok::Op(OpTok::Star) => BinOp::Mul,
                Tok::Op(OpTok::Slash) => BinOp::Div,
                Tok::Op(OpTok::SlashSlash) => BinOp::FloorDiv,
                Tok::Op(OpTok::Percent) => BinOp::Mod,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
    }

    fn factor(&mut self) -> Result<Expr, Error> {
        if self.peek() == &Tok::Op(OpTok::Minus) {
            let line = self.line();
            self.bump();
            let operand = self.factor()?;
            return Ok(Expr::new(ExprKind::Neg(Box::new(operand)), line));
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, Error> {
        let base = self.postfix()?;
        if self.peek() == &Tok::Op(OpTok::StarStar) {
            let line = self.line();
            self.bump();
            let exp = self.factor()?; // right associative
            return Ok(Expr::new(
                ExprKind::Binary {
                    op: BinOp::Pow,
                    lhs: Box::new(base),
                    rhs: Box::new(exp),
                },
                line,
            ));
        }
        Ok(base)
    }

    fn postfix(&mut self) -> Result<Expr, Error> {
        let mut e = self.atom()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::Op(OpTok::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_op(OpTok::RParen) {
                        loop {
                            args.push(self.expression_no_tuple()?);
                            if !self.eat_op(OpTok::Comma) {
                                break;
                            }
                        }
                        self.expect_op(OpTok::RParen)?;
                    }
                    e = Expr::new(
                        ExprKind::Call {
                            func: Box::new(e),
                            args,
                        },
                        line,
                    );
                }
                Tok::Op(OpTok::LBracket) => {
                    self.bump();
                    // Slice forms: [:], [lo:], [:hi], [lo:hi]; otherwise an
                    // ordinary subscript.
                    let lo = if matches!(self.peek(), Tok::Op(OpTok::Colon)) {
                        None
                    } else {
                        Some(Box::new(self.expression_no_tuple()?))
                    };
                    if self.eat_op(OpTok::Colon) {
                        let hi = if matches!(self.peek(), Tok::Op(OpTok::RBracket)) {
                            None
                        } else {
                            Some(Box::new(self.expression_no_tuple()?))
                        };
                        self.expect_op(OpTok::RBracket)?;
                        e = Expr::new(
                            ExprKind::Slice {
                                base: Box::new(e),
                                lo,
                                hi,
                            },
                            line,
                        );
                    } else {
                        self.expect_op(OpTok::RBracket)?;
                        let index = *lo.ok_or_else(|| self.err("empty subscript"))?;
                        e = Expr::new(
                            ExprKind::Index {
                                base: Box::new(e),
                                index: Box::new(index),
                            },
                            line,
                        );
                    }
                }
                Tok::Op(OpTok::Dot) => {
                    self.bump();
                    let attr = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Attr {
                            base: Box::new(e),
                            attr,
                        },
                        line,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, Error> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::new(ExprKind::Int(v), line)),
            Tok::Float(v) => Ok(Expr::new(ExprKind::Float(v), line)),
            Tok::Str(s) => Ok(Expr::new(ExprKind::Str(s), line)),
            Tok::Kw(Kw::True) => Ok(Expr::new(ExprKind::Bool(true), line)),
            Tok::Kw(Kw::False) => Ok(Expr::new(ExprKind::Bool(false), line)),
            Tok::Kw(Kw::None) => Ok(Expr::new(ExprKind::None, line)),
            Tok::Ident(name) => Ok(Expr::new(ExprKind::Name(name), line)),
            Tok::Op(OpTok::LParen) => {
                if self.eat_op(OpTok::RParen) {
                    return Ok(Expr::new(ExprKind::Tuple(Vec::new()), line));
                }
                let inner = self.expression()?;
                self.expect_op(OpTok::RParen)?;
                Ok(inner)
            }
            Tok::Op(OpTok::LBracket) => {
                let mut items = Vec::new();
                if !self.eat_op(OpTok::RBracket) {
                    loop {
                        items.push(self.expression_no_tuple()?);
                        if !self.eat_op(OpTok::Comma) {
                            break;
                        }
                        if self.peek() == &Tok::Op(OpTok::RBracket) {
                            break;
                        }
                    }
                    self.expect_op(OpTok::RBracket)?;
                }
                Ok(Expr::new(ExprKind::List(items), line))
            }
            Tok::Op(OpTok::LBrace) => {
                let mut entries = Vec::new();
                if !self.eat_op(OpTok::RBrace) {
                    loop {
                        let k = self.expression_no_tuple()?;
                        self.expect_op(OpTok::Colon)?;
                        let v = self.expression_no_tuple()?;
                        entries.push((k, v));
                        if !self.eat_op(OpTok::Comma) {
                            break;
                        }
                        if self.peek() == &Tok::Op(OpTok::RBrace) {
                            break;
                        }
                    }
                    self.expect_op(OpTok::RBrace)?;
                }
                Ok(Expr::new(ExprKind::Dict(entries), line))
            }
            other => Err(Error::Parse {
                line,
                message: format!("expected expression, found {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        match parse(src) {
            Ok(m) => m,
            Err(e) => panic!("parse failed: {e}"),
        }
    }

    #[test]
    fn assignment_forms() {
        let m = parse_ok("x = 1\nx += 2\na[0] = 3\no.f = 4\na, b = b, a");
        assert_eq!(m.body.len(), 5);
        assert!(matches!(
            &m.body[4].kind,
            StmtKind::Assign {
                target: Target::Tuple(ts),
                value: Expr { kind: ExprKind::Tuple(vs), .. },
            } if ts.len() == 2 && vs.len() == 2
        ));
    }

    #[test]
    fn def_and_return() {
        let m = parse_ok("def add(a, b):\n    return a + b");
        match &m.body[0].kind {
            StmtKind::Def { name, params, body } => {
                assert_eq!(name, "add");
                assert_eq!(params, &["a", "b"]);
                assert!(matches!(body[0].kind, StmtKind::Return(Some(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_elif_else() {
        let m = parse_ok("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3");
        match &m.body[0].kind {
            StmtKind::If { orelse, .. } => match &orelse[0].kind {
                StmtKind::If { orelse: inner, .. } => assert_eq!(inner.len(), 1),
                other => panic!("expected nested if, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loops() {
        let m = parse_ok("while x < 10:\n    x += 1\nfor i in range(3):\n    print(i)");
        assert!(matches!(m.body[0].kind, StmtKind::While { .. }));
        assert!(matches!(m.body[1].kind, StmtKind::For { .. }));
    }

    #[test]
    fn for_tuple_target() {
        let m = parse_ok("for k, v in items:\n    pass");
        match &m.body[0].kind {
            StmtKind::For { target, .. } => {
                assert!(matches!(target, Target::Tuple(ts) if ts.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_with_methods() {
        let m = parse_ok(
            "class Point:\n    def __init__(self, x):\n        self.x = x\n    def get(self):\n        return self.x",
        );
        match &m.body[0].kind {
            StmtKind::Class { name, methods } => {
                assert_eq!(name, "Point");
                assert_eq!(methods.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let m = parse_ok("x = 1 + 2 * 3 ** 2");
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => match &rhs.kind {
                    ExprKind::Binary {
                        op: BinOp::Mul,
                        rhs,
                        ..
                    } => {
                        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Pow, .. }));
                    }
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_and_not_in() {
        let m = parse_ok("y = a and not b or c\nz = x not in lst");
        assert!(matches!(
            &m.body[0].kind,
            StmtKind::Assign {
                value: Expr {
                    kind: ExprKind::Bool2 { is_and: false, .. },
                    ..
                },
                ..
            }
        ));
        match &m.body[1].kind {
            StmtKind::Assign { value, .. } => {
                assert!(matches!(
                    value.kind,
                    ExprKind::Binary {
                        op: BinOp::NotIn,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn displays() {
        let m = parse_ok("a = [1, 2]\nb = (1, 2)\nc = {1: 'x', 2: 'y'}\nd = []\ne = {}");
        assert!(matches!(
            &m.body[0].kind,
            StmtKind::Assign { value: Expr { kind: ExprKind::List(v), .. }, .. } if v.len() == 2
        ));
        assert!(matches!(
            &m.body[1].kind,
            StmtKind::Assign { value: Expr { kind: ExprKind::Tuple(v), .. }, .. } if v.len() == 2
        ));
        assert!(matches!(
            &m.body[2].kind,
            StmtKind::Assign { value: Expr { kind: ExprKind::Dict(v), .. }, .. } if v.len() == 2
        ));
    }

    #[test]
    fn method_calls_and_chains() {
        let m = parse_ok("x.append(1)\ny = a.b.c(2)[3]");
        assert!(matches!(m.body[0].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn inline_suite() {
        let m = parse_ok("if x: y = 1");
        match &m.body[0].kind {
            StmtKind::If { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn global_statement() {
        let m = parse_ok("def f():\n    global a, b\n    a = 1");
        match &m.body[0].kind {
            StmtKind::Def { body, .. } => {
                assert!(matches!(&body[0].kind, StmtKind::Global(ns) if ns.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("x = ").is_err());
        assert!(parse("if x:\npass").is_err()); // missing indent
        assert!(parse("1 = x").is_err());
        assert!(parse("def f(:\n    pass").is_err());
        assert!(parse("class C:\n    x = 1").is_err());
    }
}
