//! The MiniPy tree-walking interpreter with a `sys.settrace`-style hook.
//!
//! The interpreter calls the registered [`Tracer`] before every statement
//! line ([`TraceEvent::Line`]), right after entering a function with its
//! arguments bound ([`TraceEvent::Call`]), right before a function returns
//! with its frame still live ([`TraceEvent::Return`]), and whenever output
//! is produced. The tracer receives a [`TraceCtx`] granting full read
//! access to the frames and the heap — this is what the paper's Python
//! tracker builds its inspection interface on, and returning
//! [`TraceAction::Stop`] is how `tracker.terminate()` works.

use crate::ast::*;
use crate::value::{Heap, ObjRef, PyVal};
use crate::Error;

/// What a [`Tracer`] tells the interpreter to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceAction {
    /// Keep executing.
    Continue,
    /// Abort execution (the run returns [`Error::Stopped`]).
    Stop,
}

/// Events delivered to a [`Tracer`] (the `sys.settrace` analogue).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// About to execute the statement starting at `line`.
    Line {
        /// 1-based source line.
        line: u32,
    },
    /// Entered `function`; parameters are bound in the new frame.
    Call {
        /// Function name.
        function: String,
        /// Line of the `def` header.
        line: u32,
        /// 0-based depth (module frame is 0).
        depth: u32,
    },
    /// `function` is about to return `value`; its frame is still live.
    Return {
        /// Function name.
        function: String,
        /// Line of the returning statement.
        line: u32,
        /// 0-based depth of the returning frame.
        depth: u32,
        /// The return value.
        value: ObjRef,
    },
    /// The program printed `text`.
    Output {
        /// The printed text (including the newline for `print`).
        text: String,
    },
}

/// Read access to the paused interpreter, passed to every trace call.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx<'a> {
    /// The object heap.
    pub heap: &'a Heap,
    /// Live frames, module frame first.
    pub frames: &'a [PyFrame],
}

impl<'a> TraceCtx<'a> {
    /// Looks up a variable: first in the innermost frame, then in the
    /// module frame. `frame_name::var` syntax addresses a specific frame.
    pub fn lookup(&self, name: &str) -> Option<ObjRef> {
        if let Some((frame_name, var)) = name.split_once("::") {
            let frame = self.frames.iter().rev().find(|f| f.name() == frame_name)?;
            return frame.get(var);
        }
        if let Some(f) = self.frames.last() {
            if let Some(r) = f.get(name) {
                return Some(r);
            }
        }
        self.frames.first()?.get(name)
    }
}

/// A tracer: the `sys.settrace` callback.
pub trait Tracer {
    /// Called at every trace point; return [`TraceAction::Stop`] to abort.
    fn trace(&mut self, event: &TraceEvent, ctx: &TraceCtx<'_>) -> TraceAction;
}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Exit code (always 0 for a MiniPy program that finishes).
    pub exit_code: i64,
    /// Everything printed.
    pub output: String,
}

/// An ordered name → object table (declaration order preserved for
/// inspection, like the paper's tools expect).
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    entries: Vec<(String, ObjRef)>,
}

impl NameTable {
    fn get(&self, name: &str) -> Option<ObjRef> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
    }

    fn set(&mut self, name: &str, value: ObjRef) {
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.entries.push((name.to_owned(), value));
        }
    }

    /// Iterates bindings in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ObjRef)> {
        self.entries.iter().map(|(n, r)| (n.as_str(), *r))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One activation record of the MiniPy interpreter.
#[derive(Debug, Clone)]
pub struct PyFrame {
    name: String,
    locals: NameTable,
    globals_decl: Vec<String>,
    line: u32,
}

impl PyFrame {
    fn new(name: impl Into<String>, line: u32) -> Self {
        PyFrame {
            name: name.into(),
            locals: NameTable::default(),
            globals_decl: Vec::new(),
            line,
        }
    }

    /// The function name (`<module>` for the module frame).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The frame's current line.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Looks a local binding up.
    pub fn get(&self, name: &str) -> Option<ObjRef> {
        self.locals.get(name)
    }

    /// Iterates bindings in declaration order.
    pub fn vars(&self) -> impl Iterator<Item = (&str, ObjRef)> {
        self.locals.iter()
    }
}

#[derive(Debug, Clone)]
struct FuncDef {
    name: String,
    params: Vec<String>,
    body: Vec<Stmt>,
    line: u32,
}

#[derive(Debug, Clone)]
struct ClassDef {
    name: String,
    methods: Vec<(String, usize)>,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(ObjRef),
}

/// The interpreter. Create with [`Interp::new`], drive with [`Interp::run`].
#[derive(Debug)]
pub struct Interp {
    module: Module,
    heap: Heap,
    funcs: Vec<FuncDef>,
    classes: Vec<ClassDef>,
    frames: Vec<PyFrame>,
    output: String,
    none_ref: ObjRef,
    true_ref: ObjRef,
    false_ref: ObjRef,
    max_steps: Option<u64>,
    steps: u64,
    max_depth: usize,
}

const BUILTINS: &[&str] = &[
    "print", "len", "range", "str", "int", "float", "abs", "min", "max", "sum", "sorted", "list",
    "id", "type",
];

impl Interp {
    /// Creates an interpreter for a parsed module.
    pub fn new(module: Module) -> Self {
        let mut heap = Heap::new();
        let none_ref = heap.alloc(PyVal::None);
        let true_ref = heap.alloc(PyVal::Bool(true));
        let false_ref = heap.alloc(PyVal::Bool(false));
        Interp {
            module,
            heap,
            funcs: Vec::new(),
            classes: Vec::new(),
            frames: vec![PyFrame::new("<module>", 1)],
            output: String::new(),
            none_ref,
            true_ref,
            false_ref,
            max_steps: None,
            steps: 0,
            max_depth: 100,
        }
    }

    /// Sets the recursion limit (default 100 — each MiniPy frame consumes a
    /// deep chain of interpreter frames, so callers raising this should run
    /// the interpreter on a thread with a large stack, as the thread-based
    /// tracker does).
    pub fn set_max_depth(&mut self, depth: usize) {
        self.max_depth = depth.max(2);
    }

    /// Bounds the number of statements executed (safety valve for loops).
    pub fn set_max_steps(&mut self, limit: Option<u64>) {
        self.max_steps = limit;
    }

    /// The heap (inspection).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Live frames (inspection).
    pub fn frames(&self) -> &[PyFrame] {
        &self.frames
    }

    /// Output so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Statements executed so far (bench metric).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs the module to completion under `tracer`.
    ///
    /// # Errors
    ///
    /// Returns runtime errors ([`Error::Runtime`]) or [`Error::Stopped`]
    /// when the tracer aborts.
    pub fn run(&mut self, tracer: &mut dyn Tracer) -> Result<RunOutcome, Error> {
        let body = std::mem::take(&mut self.module.body);
        let flow = self.exec_block(&body, tracer)?;
        self.module.body = body;
        debug_assert!(matches!(flow, Flow::Normal | Flow::Return(_)));
        Ok(RunOutcome {
            exit_code: 0,
            output: self.output.clone(),
        })
    }

    fn rerr(&self, line: u32, message: impl Into<String>) -> Error {
        Error::Runtime {
            line,
            message: message.into(),
        }
    }

    fn emit(&self, tracer: &mut dyn Tracer, event: TraceEvent) -> Result<(), Error> {
        let ctx = TraceCtx {
            heap: &self.heap,
            frames: &self.frames,
        };
        match tracer.trace(&event, &ctx) {
            TraceAction::Continue => Ok(()),
            TraceAction::Stop => Err(Error::Stopped),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], tracer: &mut dyn Tracer) -> Result<Flow, Error> {
        for s in stmts {
            match self.exec_stmt(s, tracer)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt, tracer: &mut dyn Tracer) -> Result<Flow, Error> {
        self.steps += 1;
        if let Some(limit) = self.max_steps {
            if self.steps > limit {
                return Err(self.rerr(s.line, "RuntimeError: step limit exceeded"));
            }
        }
        self.frames.last_mut().expect("frame").line = s.line;
        self.emit(tracer, TraceEvent::Line { line: s.line })?;
        match &s.kind {
            StmtKind::Expr(e) => {
                self.eval(e, tracer)?;
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, value } => {
                let v = self.eval(value, tracer)?;
                self.assign(target, v, s.line, tracer)?;
                Ok(Flow::Normal)
            }
            StmtKind::AugAssign { target, op, value } => {
                // Evaluate target as expression, combine, store back.
                let current = match target {
                    Target::Name(n) => self.load_name(n, s.line)?,
                    Target::Index { base, index } => {
                        let b = self.eval(base, tracer)?;
                        let i = self.eval(index, tracer)?;
                        self.index_get(b, i, s.line)?
                    }
                    Target::Attr { base, attr } => {
                        let b = self.eval(base, tracer)?;
                        self.attr_get(b, attr, s.line)?
                    }
                    Target::Tuple(_) => {
                        return Err(self.rerr(s.line, "SyntaxError: invalid augmented target"))
                    }
                };
                let rhs = self.eval(value, tracer)?;
                let combined = self.binary(*op, current, rhs, s.line)?;
                self.assign(target, combined, s.line, tracer)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { test, body, orelse } => {
                let t = self.eval(test, tracer)?;
                if self.heap.get(t).is_truthy() {
                    self.exec_block(body, tracer)
                } else {
                    self.exec_block(orelse, tracer)
                }
            }
            StmtKind::While { test, body } => {
                // The statement-level emit above already announced the
                // header; re-announce it only on back edges, so one
                // header evaluation is exactly one Line event (a line
                // breakpoint on the header fires once per iteration, as
                // in the MiniC VM).
                let mut first = true;
                loop {
                    self.frames.last_mut().expect("frame").line = s.line;
                    if !std::mem::take(&mut first) {
                        self.emit(tracer, TraceEvent::Line { line: s.line })?;
                    }
                    let t = self.eval(test, tracer)?;
                    if !self.heap.get(t).is_truthy() {
                        return Ok(Flow::Normal);
                    }
                    match self.exec_block(body, tracer)? {
                        Flow::Break => return Ok(Flow::Normal),
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
            }
            StmtKind::For { target, iter, body } => {
                let it = self.eval(iter, tracer)?;
                let items = self.iterate(it, s.line)?;
                // As with `while`, the first iteration's header event was
                // already emitted by the statement-level hook.
                let mut first = true;
                for item in items {
                    self.frames.last_mut().expect("frame").line = s.line;
                    if !std::mem::take(&mut first) {
                        self.emit(tracer, TraceEvent::Line { line: s.line })?;
                    }
                    self.assign(target, item, s.line, tracer)?;
                    match self.exec_block(body, tracer)? {
                        Flow::Break => return Ok(Flow::Normal),
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Def { name, params, body } => {
                let index = self.funcs.len();
                self.funcs.push(FuncDef {
                    name: name.clone(),
                    params: params.clone(),
                    body: body.clone(),
                    line: s.line,
                });
                let f = self.heap.alloc(PyVal::Function {
                    name: name.clone(),
                    index,
                });
                self.bind_name(name, f);
                Ok(Flow::Normal)
            }
            StmtKind::Class { name, methods } => {
                let mut table = Vec::new();
                for m in methods {
                    if let StmtKind::Def {
                        name: mname,
                        params,
                        body,
                    } = &m.kind
                    {
                        let index = self.funcs.len();
                        self.funcs.push(FuncDef {
                            name: format!("{name}.{mname}"),
                            params: params.clone(),
                            body: body.clone(),
                            line: m.line,
                        });
                        table.push((mname.clone(), index));
                    }
                }
                let index = self.classes.len();
                self.classes.push(ClassDef {
                    name: name.clone(),
                    methods: table,
                });
                let c = self.heap.alloc(PyVal::Class {
                    name: name.clone(),
                    index,
                });
                self.bind_name(name, c);
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                if self.frames.len() == 1 {
                    return Err(self.rerr(s.line, "SyntaxError: 'return' outside function"));
                }
                let v = match value {
                    Some(e) => self.eval(e, tracer)?,
                    None => self.none_ref,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Pass => Ok(Flow::Normal),
            StmtKind::Global(names) => {
                let frame = self.frames.last_mut().expect("frame");
                for n in names {
                    if !frame.globals_decl.contains(n) {
                        frame.globals_decl.push(n.clone());
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn bind_name(&mut self, name: &str, value: ObjRef) {
        let is_global_decl = self
            .frames
            .last()
            .expect("frame")
            .globals_decl
            .iter()
            .any(|n| n == name);
        if is_global_decl {
            self.frames[0].locals.set(name, value);
        } else {
            self.frames
                .last_mut()
                .expect("frame")
                .locals
                .set(name, value);
        }
    }

    fn load_name(&self, name: &str, line: u32) -> Result<ObjRef, Error> {
        let frame = self.frames.last().expect("frame");
        if frame.globals_decl.iter().any(|n| n == name) {
            if let Some(r) = self.frames[0].get(name) {
                return Ok(r);
            }
        } else if let Some(r) = frame.get(name) {
            return Ok(r);
        }
        if let Some(r) = self.frames[0].get(name) {
            return Ok(r);
        }
        Err(self.rerr(line, format!("NameError: name '{name}' is not defined")))
    }

    fn assign(
        &mut self,
        target: &Target,
        value: ObjRef,
        line: u32,
        tracer: &mut dyn Tracer,
    ) -> Result<(), Error> {
        match target {
            Target::Name(n) => {
                self.bind_name(n, value);
                Ok(())
            }
            Target::Index { base, index } => {
                let b = self.eval(base, tracer)?;
                let i = self.eval(index, tracer)?;
                self.index_set(b, i, value, line)
            }
            Target::Attr { base, attr } => {
                let b = self.eval(base, tracer)?;
                let type_name = self.heap.get(b).type_name().to_owned();
                if let PyVal::Instance { fields, .. } = self.heap.get_mut(b) {
                    if let Some(slot) = fields.iter_mut().find(|(n, _)| n == attr) {
                        slot.1 = value;
                    } else {
                        fields.push((attr.clone(), value));
                    }
                    Ok(())
                } else {
                    Err(self.rerr(
                        line,
                        format!(
                            "AttributeError: '{type_name}' object has no settable attribute '{attr}'"
                        ),
                    ))
                }
            }
            Target::Tuple(targets) => {
                let items = match self.heap.get(value) {
                    PyVal::Tuple(items) | PyVal::List(items) => items.clone(),
                    other => {
                        return Err(self.rerr(
                            line,
                            format!("TypeError: cannot unpack '{}'", other.type_name()),
                        ))
                    }
                };
                if items.len() != targets.len() {
                    return Err(self.rerr(
                        line,
                        format!(
                            "ValueError: expected {} values to unpack, got {}",
                            targets.len(),
                            items.len()
                        ),
                    ));
                }
                for (t, v) in targets.iter().zip(items) {
                    self.assign(t, v, line, tracer)?;
                }
                Ok(())
            }
        }
    }

    // -- expression evaluation ------------------------------------------------

    fn eval(&mut self, e: &Expr, tracer: &mut dyn Tracer) -> Result<ObjRef, Error> {
        match &e.kind {
            ExprKind::Int(v) => Ok(self.heap.alloc(PyVal::Int(*v))),
            ExprKind::Float(v) => Ok(self.heap.alloc(PyVal::Float(*v))),
            ExprKind::Str(s) => Ok(self.heap.alloc(PyVal::Str(s.clone()))),
            ExprKind::Bool(true) => Ok(self.true_ref),
            ExprKind::Bool(false) => Ok(self.false_ref),
            ExprKind::None => Ok(self.none_ref),
            ExprKind::Name(n) => self.load_name(n, e.line),
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, tracer)?;
                let r = self.eval(rhs, tracer)?;
                self.binary(*op, l, r, e.line)
            }
            ExprKind::Bool2 { is_and, lhs, rhs } => {
                let l = self.eval(lhs, tracer)?;
                let truthy = self.heap.get(l).is_truthy();
                // Python value semantics: `a and b` returns a when falsy.
                if *is_and {
                    if !truthy {
                        return Ok(l);
                    }
                } else if truthy {
                    return Ok(l);
                }
                self.eval(rhs, tracer)
            }
            ExprKind::Not(inner) => {
                let v = self.eval(inner, tracer)?;
                Ok(self.bool_ref(!self.heap.get(v).is_truthy()))
            }
            ExprKind::Neg(inner) => {
                let v = self.eval(inner, tracer)?;
                match self.heap.get(v) {
                    PyVal::Int(x) => {
                        let x = *x;
                        Ok(self.heap.alloc(PyVal::Int(x.wrapping_neg())))
                    }
                    PyVal::Float(x) => {
                        let x = *x;
                        Ok(self.heap.alloc(PyVal::Float(-x)))
                    }
                    PyVal::Bool(b) => {
                        let n = -(*b as i64);
                        Ok(self.heap.alloc(PyVal::Int(n)))
                    }
                    other => Err(self.rerr(
                        e.line,
                        format!(
                            "TypeError: bad operand type for unary -: '{}'",
                            other.type_name()
                        ),
                    )),
                }
            }
            ExprKind::Call { func, args } => self.eval_call(func, args, e.line, tracer),
            ExprKind::Index { base, index } => {
                let b = self.eval(base, tracer)?;
                let i = self.eval(index, tracer)?;
                self.index_get(b, i, e.line)
            }
            ExprKind::Slice { base, lo, hi } => {
                let b = self.eval(base, tracer)?;
                let lo = match lo {
                    Some(e) => Some(self.eval(e, tracer)?),
                    None => None,
                };
                let hi = match hi {
                    Some(e) => Some(self.eval(e, tracer)?),
                    None => None,
                };
                self.slice_get(b, lo, hi, e.line)
            }
            ExprKind::Attr { base, attr } => {
                let b = self.eval(base, tracer)?;
                self.attr_get(b, attr, e.line)
            }
            ExprKind::List(items) => {
                let refs = items
                    .iter()
                    .map(|i| self.eval(i, tracer))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.heap.alloc(PyVal::List(refs)))
            }
            ExprKind::Tuple(items) => {
                let refs = items
                    .iter()
                    .map(|i| self.eval(i, tracer))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.heap.alloc(PyVal::Tuple(refs)))
            }
            ExprKind::Dict(entries) => {
                let refs = entries
                    .iter()
                    .map(|(k, v)| Ok((self.eval(k, tracer)?, self.eval(v, tracer)?)))
                    .collect::<Result<Vec<_>, Error>>()?;
                Ok(self.heap.alloc(PyVal::Dict(refs)))
            }
        }
    }

    fn bool_ref(&self, b: bool) -> ObjRef {
        if b {
            self.true_ref
        } else {
            self.false_ref
        }
    }

    fn binary(&mut self, op: BinOp, l: ObjRef, r: ObjRef, line: u32) -> Result<ObjRef, Error> {
        use BinOp::*;
        // Comparisons first (they work across more types).
        match op {
            Eq => return Ok(self.bool_ref(self.heap.py_eq(l, r))),
            Ne => return Ok(self.bool_ref(!self.heap.py_eq(l, r))),
            In | NotIn => {
                let found = self.contains(r, l, line)?;
                return Ok(self.bool_ref(if op == In { found } else { !found }));
            }
            Lt | Le | Gt | Ge => {
                let ord = self.compare(l, r, line)?;
                let b = match op {
                    Lt => ord < 0,
                    Le => ord <= 0,
                    Gt => ord > 0,
                    Ge => ord >= 0,
                    _ => unreachable!("comparison ops"),
                };
                return Ok(self.bool_ref(b));
            }
            _ => {}
        }
        let (lv, rv) = (self.heap.get(l).clone(), self.heap.get(r).clone());
        let result = match (op, &lv, &rv) {
            // String / list concatenation and repetition.
            (Add, PyVal::Str(a), PyVal::Str(b)) => PyVal::Str(format!("{a}{b}")),
            (Add, PyVal::List(a), PyVal::List(b)) => {
                PyVal::List(a.iter().chain(b.iter()).copied().collect())
            }
            (Add, PyVal::Tuple(a), PyVal::Tuple(b)) => {
                PyVal::Tuple(a.iter().chain(b.iter()).copied().collect())
            }
            (Mul, PyVal::Str(s), PyVal::Int(n)) | (Mul, PyVal::Int(n), PyVal::Str(s)) => {
                PyVal::Str(s.repeat((*n).max(0) as usize))
            }
            (Mul, PyVal::List(items), PyVal::Int(n)) | (Mul, PyVal::Int(n), PyVal::List(items)) => {
                let mut out = Vec::new();
                for _ in 0..(*n).max(0) {
                    out.extend(items.iter().copied());
                }
                PyVal::List(out)
            }
            (Mod, PyVal::Str(fmt), _) => {
                // Printf-style formatting is common in teaching code; we
                // support the single-argument form and tuples.
                let args = match &rv {
                    PyVal::Tuple(items) => items.clone(),
                    _ => vec![r],
                };
                PyVal::Str(self.percent_format(fmt, &args))
            }
            _ => self.numeric_binary(op, &lv, &rv, line)?,
        };
        Ok(self.heap.alloc(result))
    }

    fn numeric_binary(&self, op: BinOp, lv: &PyVal, rv: &PyVal, line: u32) -> Result<PyVal, Error> {
        use BinOp::*;
        let as_num = |v: &PyVal| -> Option<(i64, f64, bool)> {
            match v {
                PyVal::Int(x) => Some((*x, *x as f64, false)),
                PyVal::Bool(b) => Some((*b as i64, *b as i64 as f64, false)),
                PyVal::Float(x) => Some((0, *x, true)),
                _ => None,
            }
        };
        let (Some((li, lf, lfloat)), Some((ri, rf, rfloat))) = (as_num(lv), as_num(rv)) else {
            return Err(self.rerr(
                line,
                format!(
                    "TypeError: unsupported operand type(s): '{}' and '{}'",
                    lv.type_name(),
                    rv.type_name()
                ),
            ));
        };
        let float_mode = lfloat || rfloat || op == Div;
        Ok(if float_mode {
            let v = match op {
                Add => lf + rf,
                Sub => lf - rf,
                Mul => lf * rf,
                Div => {
                    if rf == 0.0 {
                        return Err(self.rerr(line, "ZeroDivisionError: division by zero"));
                    }
                    lf / rf
                }
                FloorDiv => {
                    if rf == 0.0 {
                        return Err(self.rerr(line, "ZeroDivisionError: division by zero"));
                    }
                    (lf / rf).floor()
                }
                Mod => {
                    if rf == 0.0 {
                        return Err(self.rerr(line, "ZeroDivisionError: modulo by zero"));
                    }
                    lf - rf * (lf / rf).floor()
                }
                Pow => lf.powf(rf),
                other => unreachable!("numeric op {other:?}"),
            };
            PyVal::Float(v)
        } else {
            match op {
                Add => PyVal::Int(li.wrapping_add(ri)),
                Sub => PyVal::Int(li.wrapping_sub(ri)),
                Mul => PyVal::Int(li.wrapping_mul(ri)),
                FloorDiv => {
                    if ri == 0 {
                        return Err(self.rerr(line, "ZeroDivisionError: division by zero"));
                    }
                    let q = li.wrapping_div(ri);
                    let rem = li.wrapping_rem(ri);
                    PyVal::Int(if rem != 0 && (rem < 0) != (ri < 0) {
                        q - 1
                    } else {
                        q
                    })
                }
                Mod => {
                    if ri == 0 {
                        return Err(self.rerr(line, "ZeroDivisionError: modulo by zero"));
                    }
                    let rem = li.wrapping_rem(ri);
                    PyVal::Int(if rem != 0 && (rem < 0) != (ri < 0) {
                        rem + ri
                    } else {
                        rem
                    })
                }
                Pow => {
                    if ri >= 0 {
                        let mut acc: i64 = 1;
                        for _ in 0..ri {
                            acc = acc.wrapping_mul(li);
                        }
                        PyVal::Int(acc)
                    } else {
                        PyVal::Float((li as f64).powf(ri as f64))
                    }
                }
                other => unreachable!("numeric op {other:?}"),
            }
        })
    }

    /// Three-way comparison for `< <= > >=`.
    fn compare(&self, l: ObjRef, r: ObjRef, line: u32) -> Result<i32, Error> {
        let (lv, rv) = (self.heap.get(l), self.heap.get(r));
        let ord = match (lv, rv) {
            (PyVal::Int(a), PyVal::Int(b)) => a.cmp(b) as i32,
            (PyVal::Str(a), PyVal::Str(b)) => a.cmp(b) as i32,
            (PyVal::Bool(a), PyVal::Bool(b)) => a.cmp(b) as i32,
            _ => {
                let af = match lv {
                    PyVal::Int(a) => *a as f64,
                    PyVal::Float(a) => *a,
                    PyVal::Bool(a) => *a as i64 as f64,
                    other => {
                        return Err(self.rerr(
                            line,
                            format!("TypeError: '<' not supported for '{}'", other.type_name()),
                        ))
                    }
                };
                let bf = match rv {
                    PyVal::Int(b) => *b as f64,
                    PyVal::Float(b) => *b,
                    PyVal::Bool(b) => *b as i64 as f64,
                    other => {
                        return Err(self.rerr(
                            line,
                            format!("TypeError: '<' not supported for '{}'", other.type_name()),
                        ))
                    }
                };
                if af < bf {
                    -1
                } else if af > bf {
                    1
                } else {
                    0
                }
            }
        };
        Ok(ord)
    }

    fn contains(&self, container: ObjRef, item: ObjRef, line: u32) -> Result<bool, Error> {
        match self.heap.get(container) {
            PyVal::List(items) | PyVal::Tuple(items) => {
                Ok(items.iter().any(|i| self.heap.py_eq(*i, item)))
            }
            PyVal::Dict(entries) => Ok(entries.iter().any(|(k, _)| self.heap.py_eq(*k, item))),
            PyVal::Str(s) => match self.heap.get(item) {
                PyVal::Str(sub) => Ok(s.contains(sub.as_str())),
                other => Err(self.rerr(
                    line,
                    format!(
                        "TypeError: 'in <string>' requires string, got '{}'",
                        other.type_name()
                    ),
                )),
            },
            PyVal::Range { start, stop, step } => match self.heap.get(item) {
                PyVal::Int(v) => {
                    let (v, start, stop, step) = (*v, *start, *stop, *step);
                    let in_range = if step > 0 {
                        v >= start && v < stop && (v - start) % step == 0
                    } else {
                        v <= start && v > stop && (start - v) % (-step) == 0
                    };
                    Ok(in_range)
                }
                _ => Ok(false),
            },
            other => Err(self.rerr(
                line,
                format!(
                    "TypeError: argument of type '{}' is not iterable",
                    other.type_name()
                ),
            )),
        }
    }

    fn iterate(&mut self, r: ObjRef, line: u32) -> Result<Vec<ObjRef>, Error> {
        match self.heap.get(r).clone() {
            PyVal::List(items) | PyVal::Tuple(items) => Ok(items),
            PyVal::Str(s) => Ok(s
                .chars()
                .map(|c| self.heap.alloc(PyVal::Str(c.to_string())))
                .collect()),
            PyVal::Dict(entries) => Ok(entries.iter().map(|(k, _)| *k).collect()),
            PyVal::Range { start, stop, step } => {
                let mut out = Vec::new();
                let mut v = start;
                if step > 0 {
                    while v < stop {
                        out.push(self.heap.alloc(PyVal::Int(v)));
                        v += step;
                    }
                } else if step < 0 {
                    while v > stop {
                        out.push(self.heap.alloc(PyVal::Int(v)));
                        v += step;
                    }
                }
                Ok(out)
            }
            other => Err(self.rerr(
                line,
                format!("TypeError: '{}' object is not iterable", other.type_name()),
            )),
        }
    }

    fn index_get(&mut self, base: ObjRef, index: ObjRef, line: u32) -> Result<ObjRef, Error> {
        match self.heap.get(base) {
            PyVal::List(items) | PyVal::Tuple(items) => {
                let i = self.normalize_index(index, items.len(), line)?;
                Ok(items[i])
            }
            PyVal::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let i = self.normalize_index(index, chars.len(), line)?;
                let c = chars[i].to_string();
                Ok(self.heap.alloc(PyVal::Str(c)))
            }
            PyVal::Dict(entries) => {
                for (k, v) in entries {
                    if self.heap.py_eq(*k, index) {
                        return Ok(*v);
                    }
                }
                Err(self.rerr(line, format!("KeyError: {}", self.heap.repr(index))))
            }
            other => Err(self.rerr(
                line,
                format!(
                    "TypeError: '{}' object is not subscriptable",
                    other.type_name()
                ),
            )),
        }
    }

    /// Python slice semantics: negative bounds count from the end, and
    /// out-of-range bounds clamp instead of erroring.
    fn slice_get(
        &mut self,
        base: ObjRef,
        lo: Option<ObjRef>,
        hi: Option<ObjRef>,
        line: u32,
    ) -> Result<ObjRef, Error> {
        let bound = |this: &Self, r: Option<ObjRef>, default: i64| -> Result<i64, Error> {
            match r {
                None => Ok(default),
                Some(r) => match this.heap.get(r) {
                    PyVal::Int(v) => Ok(*v),
                    PyVal::Bool(b) => Ok(*b as i64),
                    other => Err(this.rerr(
                        line,
                        format!(
                            "TypeError: slice indices must be integers, not '{}'",
                            other.type_name()
                        ),
                    )),
                },
            }
        };
        let clamp = |v: i64, len: usize| -> usize {
            let len = len as i64;
            let v = if v < 0 { v + len } else { v };
            v.clamp(0, len) as usize
        };
        match self.heap.get(base).clone() {
            PyVal::List(items) => {
                let (l, h) = (
                    clamp(bound(self, lo, 0)?, items.len()),
                    clamp(bound(self, hi, items.len() as i64)?, items.len()),
                );
                let out = if l < h {
                    items[l..h].to_vec()
                } else {
                    Vec::new()
                };
                Ok(self.heap.alloc(PyVal::List(out)))
            }
            PyVal::Tuple(items) => {
                let (l, h) = (
                    clamp(bound(self, lo, 0)?, items.len()),
                    clamp(bound(self, hi, items.len() as i64)?, items.len()),
                );
                let out = if l < h {
                    items[l..h].to_vec()
                } else {
                    Vec::new()
                };
                Ok(self.heap.alloc(PyVal::Tuple(out)))
            }
            PyVal::Str(sv) => {
                let chars: Vec<char> = sv.chars().collect();
                let (l, h) = (
                    clamp(bound(self, lo, 0)?, chars.len()),
                    clamp(bound(self, hi, chars.len() as i64)?, chars.len()),
                );
                let out: String = if l < h {
                    chars[l..h].iter().collect()
                } else {
                    String::new()
                };
                Ok(self.heap.alloc(PyVal::Str(out)))
            }
            other => Err(self.rerr(
                line,
                format!("TypeError: '{}' object is not sliceable", other.type_name()),
            )),
        }
    }

    fn index_set(
        &mut self,
        base: ObjRef,
        index: ObjRef,
        value: ObjRef,
        line: u32,
    ) -> Result<(), Error> {
        match self.heap.get(base).clone() {
            PyVal::List(items) => {
                let i = self.normalize_index(index, items.len(), line)?;
                if let PyVal::List(items) = self.heap.get_mut(base) {
                    items[i] = value;
                }
                Ok(())
            }
            PyVal::Dict(_) => {
                // Replace existing key (by equality) or append.
                let existing = match self.heap.get(base) {
                    PyVal::Dict(entries) => {
                        entries.iter().position(|(k, _)| self.heap.py_eq(*k, index))
                    }
                    _ => unreachable!("matched dict"),
                };
                if let PyVal::Dict(entries) = self.heap.get_mut(base) {
                    match existing {
                        Some(pos) => entries[pos].1 = value,
                        None => entries.push((index, value)),
                    }
                }
                Ok(())
            }
            PyVal::Tuple(_) => Err(self.rerr(
                line,
                "TypeError: 'tuple' object does not support item assignment",
            )),
            other => Err(self.rerr(
                line,
                format!(
                    "TypeError: '{}' object does not support item assignment",
                    other.type_name()
                ),
            )),
        }
    }

    fn normalize_index(&self, index: ObjRef, len: usize, line: u32) -> Result<usize, Error> {
        let i = match self.heap.get(index) {
            PyVal::Int(v) => *v,
            PyVal::Bool(b) => *b as i64,
            other => {
                return Err(self.rerr(
                    line,
                    format!(
                        "TypeError: indices must be integers, not '{}'",
                        other.type_name()
                    ),
                ))
            }
        };
        let adjusted = if i < 0 { i + len as i64 } else { i };
        if adjusted < 0 || adjusted >= len as i64 {
            return Err(self.rerr(line, format!("IndexError: index {i} out of range")));
        }
        Ok(adjusted as usize)
    }

    fn attr_get(&mut self, base: ObjRef, attr: &str, line: u32) -> Result<ObjRef, Error> {
        match self.heap.get(base) {
            PyVal::Instance { class, fields } => {
                if let Some((_, v)) = fields.iter().find(|(n, _)| n == attr) {
                    return Ok(*v);
                }
                let class_name = class.clone();
                let method = self
                    .classes
                    .iter()
                    .find(|c| c.name == class_name)
                    .and_then(|c| c.methods.iter().find(|(n, _)| n == attr))
                    .map(|(n, i)| (n.clone(), *i));
                match method {
                    Some((name, index)) => Ok(self.heap.alloc(PyVal::BoundMethod {
                        receiver: base,
                        name,
                        index,
                    })),
                    None => Err(self.rerr(
                        line,
                        format!("AttributeError: '{class_name}' object has no attribute '{attr}'"),
                    )),
                }
            }
            other => Err(self.rerr(
                line,
                format!(
                    "AttributeError: '{}' object has no attribute '{attr}' \
                     (builtin methods must be called, not referenced)",
                    other.type_name()
                ),
            )),
        }
    }

    // -- calls -----------------------------------------------------------------

    fn eval_call(
        &mut self,
        func: &Expr,
        args: &[Expr],
        line: u32,
        tracer: &mut dyn Tracer,
    ) -> Result<ObjRef, Error> {
        // Builtin container methods: `base.attr(args)`.
        if let ExprKind::Attr { base, attr } = &func.kind {
            let b = self.eval(base, tracer)?;
            if !matches!(self.heap.get(b), PyVal::Instance { .. }) {
                let argv = self.eval_args(args, tracer)?;
                return self.builtin_method(b, attr, &argv, line);
            }
            // Instance: attribute may be a field holding a function or a
            // bound method.
            let target = self.attr_get(b, attr, line)?;
            let argv = self.eval_args(args, tracer)?;
            return self.call_object(target, argv, line, tracer);
        }
        // Builtin functions (unless shadowed by a user definition).
        if let ExprKind::Name(name) = &func.kind {
            let shadowed = self.frames.last().expect("frame").get(name).is_some()
                || self.frames[0].get(name).is_some();
            if !shadowed && BUILTINS.contains(&name.as_str()) {
                let argv = self.eval_args(args, tracer)?;
                return self.builtin_function(name, &argv, line, tracer);
            }
        }
        let callee = self.eval(func, tracer)?;
        let argv = self.eval_args(args, tracer)?;
        self.call_object(callee, argv, line, tracer)
    }

    fn eval_args(&mut self, args: &[Expr], tracer: &mut dyn Tracer) -> Result<Vec<ObjRef>, Error> {
        args.iter().map(|a| self.eval(a, tracer)).collect()
    }

    fn call_object(
        &mut self,
        callee: ObjRef,
        mut args: Vec<ObjRef>,
        line: u32,
        tracer: &mut dyn Tracer,
    ) -> Result<ObjRef, Error> {
        match self.heap.get(callee).clone() {
            PyVal::Function { index, .. } => self.call_function(index, args, line, tracer),
            PyVal::BoundMethod {
                receiver, index, ..
            } => {
                args.insert(0, receiver);
                self.call_function(index, args, line, tracer)
            }
            PyVal::Class { index, .. } => {
                let class = &self.classes[index];
                let class_name = class.name.clone();
                let init = class
                    .methods
                    .iter()
                    .find(|(n, _)| n == "__init__")
                    .map(|(_, i)| *i);
                let instance = self.heap.alloc(PyVal::Instance {
                    class: class_name.clone(),
                    fields: Vec::new(),
                });
                match init {
                    Some(fidx) => {
                        args.insert(0, instance);
                        self.call_function(fidx, args, line, tracer)?;
                    }
                    None if !args.is_empty() => {
                        return Err(self.rerr(
                            line,
                            format!("TypeError: {class_name}() takes no arguments"),
                        ))
                    }
                    None => {}
                }
                Ok(instance)
            }
            other => Err(self.rerr(
                line,
                format!("TypeError: '{}' object is not callable", other.type_name()),
            )),
        }
    }

    fn call_function(
        &mut self,
        index: usize,
        args: Vec<ObjRef>,
        line: u32,
        tracer: &mut dyn Tracer,
    ) -> Result<ObjRef, Error> {
        let def = &self.funcs[index];
        let (name, params, def_line) = (def.name.clone(), def.params.clone(), def.line);
        if args.len() != params.len() {
            return Err(self.rerr(
                line,
                format!(
                    "TypeError: {name}() takes {} argument(s) but {} were given",
                    params.len(),
                    args.len()
                ),
            ));
        }
        if self.frames.len() >= self.max_depth {
            return Err(self.rerr(line, "RecursionError: maximum recursion depth exceeded"));
        }
        let mut frame = PyFrame::new(name.clone(), def_line);
        for (p, a) in params.iter().zip(&args) {
            frame.locals.set(p, *a);
        }
        self.frames.push(frame);
        let depth = (self.frames.len() - 1) as u32;
        self.emit(
            tracer,
            TraceEvent::Call {
                function: name.clone(),
                line: def_line,
                depth,
            },
        )?;
        let body = self.funcs[index].body.clone();
        let flow = match self.exec_block(&body, tracer) {
            Ok(flow) => flow,
            Err(e) => {
                self.frames.pop();
                return Err(e);
            }
        };
        let value = match flow {
            Flow::Return(v) => v,
            _ => self.none_ref,
        };
        let ret_line = self.frames.last().expect("frame").line;
        self.emit(
            tracer,
            TraceEvent::Return {
                function: name,
                line: ret_line,
                depth,
                value,
            },
        )?;
        self.frames.pop();
        Ok(value)
    }

    // -- builtins ---------------------------------------------------------------

    fn builtin_function(
        &mut self,
        name: &str,
        args: &[ObjRef],
        line: u32,
        tracer: &mut dyn Tracer,
    ) -> Result<ObjRef, Error> {
        let arity_err = |this: &Self, expected: &str| {
            this.rerr(
                line,
                format!("TypeError: {name}() expects {expected} argument(s)"),
            )
        };
        match name {
            "print" => {
                let text = args
                    .iter()
                    .map(|a| self.heap.str_of(*a))
                    .collect::<Vec<_>>()
                    .join(" ")
                    + "\n";
                self.output.push_str(&text);
                self.emit(tracer, TraceEvent::Output { text })?;
                Ok(self.none_ref)
            }
            "len" => {
                let [r] = args else {
                    return Err(arity_err(self, "1"));
                };
                let n = match self.heap.get(*r) {
                    PyVal::Str(s) => s.chars().count() as i64,
                    PyVal::List(v) | PyVal::Tuple(v) => v.len() as i64,
                    PyVal::Dict(v) => v.len() as i64,
                    PyVal::Range { start, stop, step } => {
                        if *step > 0 {
                            ((stop - start).max(0) + step - 1) / step
                        } else {
                            ((start - stop).max(0) + (-step) - 1) / (-step)
                        }
                    }
                    other => {
                        return Err(self.rerr(
                            line,
                            format!(
                                "TypeError: object of type '{}' has no len()",
                                other.type_name()
                            ),
                        ))
                    }
                };
                Ok(self.heap.alloc(PyVal::Int(n)))
            }
            "range" => {
                let ints: Vec<i64> = args
                    .iter()
                    .map(|a| match self.heap.get(*a) {
                        PyVal::Int(v) => Ok(*v),
                        PyVal::Bool(b) => Ok(*b as i64),
                        other => Err(self.rerr(
                            line,
                            format!(
                                "TypeError: range() requires int, got '{}'",
                                other.type_name()
                            ),
                        )),
                    })
                    .collect::<Result<_, _>>()?;
                let (start, stop, step) = match ints.as_slice() {
                    [stop] => (0, *stop, 1),
                    [start, stop] => (*start, *stop, 1),
                    [start, stop, step] if *step != 0 => (*start, *stop, *step),
                    [_, _, _] => {
                        return Err(self.rerr(line, "ValueError: range() arg 3 must not be zero"))
                    }
                    _ => return Err(arity_err(self, "1 to 3")),
                };
                Ok(self.heap.alloc(PyVal::Range { start, stop, step }))
            }
            "str" => {
                let [r] = args else {
                    return Err(arity_err(self, "1"));
                };
                let s = self.heap.str_of(*r);
                Ok(self.heap.alloc(PyVal::Str(s)))
            }
            "int" => {
                let [r] = args else {
                    return Err(arity_err(self, "1"));
                };
                let v = match self.heap.get(*r) {
                    PyVal::Int(v) => *v,
                    PyVal::Float(f) => *f as i64,
                    PyVal::Bool(b) => *b as i64,
                    PyVal::Str(s) => s.trim().parse().map_err(|_| {
                        self.rerr(
                            line,
                            format!("ValueError: invalid literal for int(): '{s}'"),
                        )
                    })?,
                    other => {
                        return Err(self.rerr(
                            line,
                            format!(
                                "TypeError: int() argument must not be '{}'",
                                other.type_name()
                            ),
                        ))
                    }
                };
                Ok(self.heap.alloc(PyVal::Int(v)))
            }
            "float" => {
                let [r] = args else {
                    return Err(arity_err(self, "1"));
                };
                let v = match self.heap.get(*r) {
                    PyVal::Int(v) => *v as f64,
                    PyVal::Float(f) => *f,
                    PyVal::Bool(b) => *b as i64 as f64,
                    PyVal::Str(s) => s.trim().parse().map_err(|_| {
                        self.rerr(
                            line,
                            format!("ValueError: could not convert '{s}' to float"),
                        )
                    })?,
                    other => {
                        return Err(self.rerr(
                            line,
                            format!(
                                "TypeError: float() argument must not be '{}'",
                                other.type_name()
                            ),
                        ))
                    }
                };
                Ok(self.heap.alloc(PyVal::Float(v)))
            }
            "abs" => {
                let [r] = args else {
                    return Err(arity_err(self, "1"));
                };
                let v = match self.heap.get(*r) {
                    PyVal::Int(v) => PyVal::Int(v.wrapping_abs()),
                    PyVal::Float(f) => PyVal::Float(f.abs()),
                    other => {
                        return Err(self.rerr(
                            line,
                            format!(
                                "TypeError: bad operand type for abs(): '{}'",
                                other.type_name()
                            ),
                        ))
                    }
                };
                Ok(self.heap.alloc(v))
            }
            "min" | "max" => {
                let items = if args.len() == 1 {
                    self.iterate(args[0], line)?
                } else {
                    args.to_vec()
                };
                if items.is_empty() {
                    return Err(self.rerr(line, format!("ValueError: {name}() arg is empty")));
                }
                let mut best = items[0];
                for &i in &items[1..] {
                    let ord = self.compare(i, best, line)?;
                    if (name == "min" && ord < 0) || (name == "max" && ord > 0) {
                        best = i;
                    }
                }
                Ok(best)
            }
            "sum" => {
                let [r] = args else {
                    return Err(arity_err(self, "1"));
                };
                let items = self.iterate(*r, line)?;
                let mut acc_i: i64 = 0;
                let mut acc_f: f64 = 0.0;
                let mut is_float = false;
                for i in items {
                    match self.heap.get(i) {
                        PyVal::Int(v) => {
                            acc_i = acc_i.wrapping_add(*v);
                            acc_f += *v as f64;
                        }
                        PyVal::Bool(b) => {
                            acc_i += *b as i64;
                            acc_f += *b as i64 as f64;
                        }
                        PyVal::Float(f) => {
                            is_float = true;
                            acc_f += *f;
                        }
                        other => {
                            return Err(self.rerr(
                                line,
                                format!(
                                    "TypeError: unsupported operand for sum: '{}'",
                                    other.type_name()
                                ),
                            ))
                        }
                    }
                }
                Ok(self.heap.alloc(if is_float {
                    PyVal::Float(acc_f)
                } else {
                    PyVal::Int(acc_i)
                }))
            }
            "sorted" => {
                let [r] = args else {
                    return Err(arity_err(self, "1"));
                };
                let mut items = self.iterate(*r, line)?;
                // Insertion sort via compare (stable, avoids closures that
                // would need error plumbing through sort_by).
                for i in 1..items.len() {
                    let mut j = i;
                    while j > 0 && self.compare(items[j - 1], items[j], line)? > 0 {
                        items.swap(j - 1, j);
                        j -= 1;
                    }
                }
                Ok(self.heap.alloc(PyVal::List(items)))
            }
            "list" => {
                if args.is_empty() {
                    return Ok(self.heap.alloc(PyVal::List(Vec::new())));
                }
                let [r] = args else {
                    return Err(arity_err(self, "0 or 1"));
                };
                let items = self.iterate(*r, line)?;
                Ok(self.heap.alloc(PyVal::List(items)))
            }
            "id" => {
                let [r] = args else {
                    return Err(arity_err(self, "1"));
                };
                Ok(self.heap.alloc(PyVal::Int(r.address() as i64)))
            }
            "type" => {
                let [r] = args else {
                    return Err(arity_err(self, "1"));
                };
                let n = self.heap.get(*r).type_name().to_owned();
                Ok(self.heap.alloc(PyVal::Str(format!("<class '{n}'>"))))
            }
            other => Err(self.rerr(line, format!("NameError: name '{other}' is not defined"))),
        }
    }

    fn builtin_method(
        &mut self,
        base: ObjRef,
        method: &str,
        args: &[ObjRef],
        line: u32,
    ) -> Result<ObjRef, Error> {
        let type_name = self.heap.get(base).type_name().to_owned();
        let bad = |this: &Self| {
            this.rerr(
                line,
                format!("AttributeError: '{type_name}' object has no method '{method}'"),
            )
        };
        match (self.heap.get(base).clone(), method) {
            (PyVal::List(_), "append") => {
                let [v] = args else {
                    return Err(self.rerr(line, "TypeError: append() takes one argument"));
                };
                if let PyVal::List(items) = self.heap.get_mut(base) {
                    items.push(*v);
                }
                Ok(self.none_ref)
            }
            (PyVal::List(items), "pop") => {
                let idx = match args {
                    [] => items
                        .len()
                        .checked_sub(1)
                        .ok_or_else(|| self.rerr(line, "IndexError: pop from empty list"))?,
                    [i] => self.normalize_index(*i, items.len(), line)?,
                    _ => return Err(self.rerr(line, "TypeError: pop() takes at most one argument")),
                };
                let v = items[idx];
                if let PyVal::List(items) = self.heap.get_mut(base) {
                    items.remove(idx);
                }
                Ok(v)
            }
            (PyVal::List(items), "insert") => {
                let [i, v] = args else {
                    return Err(self.rerr(line, "TypeError: insert() takes two arguments"));
                };
                let raw = match self.heap.get(*i) {
                    PyVal::Int(v) => *v,
                    _ => return Err(self.rerr(line, "TypeError: insert() index must be int")),
                };
                let idx = raw.clamp(0, items.len() as i64) as usize;
                if let PyVal::List(items) = self.heap.get_mut(base) {
                    items.insert(idx, *v);
                }
                Ok(self.none_ref)
            }
            (PyVal::List(items), "remove") => {
                let [v] = args else {
                    return Err(self.rerr(line, "TypeError: remove() takes one argument"));
                };
                let pos = items.iter().position(|i| self.heap.py_eq(*i, *v));
                match pos {
                    Some(p) => {
                        if let PyVal::List(items) = self.heap.get_mut(base) {
                            items.remove(p);
                        }
                        Ok(self.none_ref)
                    }
                    None => Err(self.rerr(line, "ValueError: list.remove(x): x not in list")),
                }
            }
            (PyVal::List(items), "index") => {
                let [v] = args else {
                    return Err(self.rerr(line, "TypeError: index() takes one argument"));
                };
                match items.iter().position(|i| self.heap.py_eq(*i, *v)) {
                    Some(p) => Ok(self.heap.alloc(PyVal::Int(p as i64))),
                    None => Err(self.rerr(line, "ValueError: value not in list")),
                }
            }
            (PyVal::Dict(entries), "keys") => {
                let ks = entries.iter().map(|(k, _)| *k).collect();
                Ok(self.heap.alloc(PyVal::List(ks)))
            }
            (PyVal::Dict(entries), "values") => {
                let vs = entries.iter().map(|(_, v)| *v).collect();
                Ok(self.heap.alloc(PyVal::List(vs)))
            }
            (PyVal::Dict(entries), "items") => {
                let pairs = entries
                    .iter()
                    .map(|(k, v)| self.heap.alloc(PyVal::Tuple(vec![*k, *v])))
                    .collect();
                Ok(self.heap.alloc(PyVal::List(pairs)))
            }
            (PyVal::Dict(entries), "get") => {
                let (key, default) = match args {
                    [k] => (*k, self.none_ref),
                    [k, d] => (*k, *d),
                    _ => return Err(self.rerr(line, "TypeError: get() takes 1 or 2 arguments")),
                };
                for (k, v) in &entries {
                    if self.heap.py_eq(*k, key) {
                        return Ok(*v);
                    }
                }
                Ok(default)
            }
            (PyVal::Str(s), "upper") => Ok(self.heap.alloc(PyVal::Str(s.to_uppercase()))),
            (PyVal::Str(s), "lower") => Ok(self.heap.alloc(PyVal::Str(s.to_lowercase()))),
            (PyVal::Str(s), "split") => {
                let parts: Vec<ObjRef> = match args {
                    [] => s
                        .split_whitespace()
                        .map(|p| self.heap.alloc(PyVal::Str(p.to_owned())))
                        .collect(),
                    [sep] => {
                        let sep = match self.heap.get(*sep) {
                            PyVal::Str(x) => x.clone(),
                            _ => return Err(self.rerr(line, "TypeError: separator must be str")),
                        };
                        s.split(sep.as_str())
                            .map(|p| self.heap.alloc(PyVal::Str(p.to_owned())))
                            .collect()
                    }
                    _ => return Err(self.rerr(line, "TypeError: split() takes 0 or 1 arguments")),
                };
                Ok(self.heap.alloc(PyVal::List(parts)))
            }
            (PyVal::Str(s), "join") => {
                let [arg] = args else {
                    return Err(self.rerr(line, "TypeError: join() takes one argument"));
                };
                let items = self.iterate(*arg, line)?;
                let mut parts = Vec::with_capacity(items.len());
                for i in items {
                    match self.heap.get(i) {
                        PyVal::Str(p) => parts.push(p.clone()),
                        other => {
                            return Err(self.rerr(
                                line,
                                format!(
                                    "TypeError: join() requires str items, got '{}'",
                                    other.type_name()
                                ),
                            ))
                        }
                    }
                }
                Ok(self.heap.alloc(PyVal::Str(parts.join(&s))))
            }
            _ => Err(bad(self)),
        }
    }

    /// Minimal `%`-formatting for strings: `%d %s %f %%`.
    fn percent_format(&self, fmt: &str, args: &[ObjRef]) -> String {
        let mut out = String::new();
        let mut it = fmt.chars().peekable();
        let mut next = args.iter();
        while let Some(c) = it.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            match it.next() {
                Some('%') => out.push('%'),
                Some(spec) => match next.next() {
                    Some(a) => match spec {
                        'd' => match self.heap.get(*a) {
                            PyVal::Int(v) => out.push_str(&v.to_string()),
                            PyVal::Float(f) => out.push_str(&(*f as i64).to_string()),
                            _ => out.push_str(&self.heap.str_of(*a)),
                        },
                        'f' => match self.heap.get(*a) {
                            PyVal::Float(f) => out.push_str(&format!("{f:.6}")),
                            PyVal::Int(v) => out.push_str(&format!("{:.6}", *v as f64)),
                            _ => out.push_str(&self.heap.str_of(*a)),
                        },
                        _ => out.push_str(&self.heap.str_of(*a)),
                    },
                    None => {
                        out.push('%');
                        out.push(spec);
                    }
                },
                None => out.push('%'),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_source, NullTracer};

    fn out(src: &str) -> String {
        run_source(src, &mut NullTracer).expect("run ok").output
    }

    fn run_err(src: &str) -> Error {
        run_source(src, &mut NullTracer).expect_err("expected error")
    }

    #[test]
    fn arithmetic() {
        assert_eq!(out("print(1 + 2 * 3)"), "7\n");
        assert_eq!(out("print(7 // 2, 7 % 3, 2 ** 10)"), "3 1 1024\n");
        assert_eq!(out("print(-7 // 2, -7 % 3)"), "-4 2\n"); // Python floor semantics
        assert_eq!(out("print(7 / 2)"), "3.5\n");
        assert_eq!(out("print(2.5 + 1)"), "3.5\n");
        assert_eq!(out("print(-(3))"), "-3\n");
    }

    #[test]
    fn strings() {
        assert_eq!(out("print('a' + 'b', 'ab' * 3)"), "ab ababab\n");
        assert_eq!(out("print(len('hello'), 'ell' in 'hello')"), "5 True\n");
        assert_eq!(out("print('Hi'.upper(), 'Hi'.lower())"), "HI hi\n");
        assert_eq!(out("print('a,b,c'.split(','))"), "['a', 'b', 'c']\n");
        assert_eq!(out("print('-'.join(['a', 'b']))"), "a-b\n");
        assert_eq!(out("print('hello'[1], 'hello'[-1])"), "e o\n");
    }

    #[test]
    fn lists_and_aliasing() {
        assert_eq!(
            out("a = [1, 2]\nb = a\nb.append(3)\nprint(a)"),
            "[1, 2, 3]\n"
        );
        assert_eq!(out("a = [1, 2, 3]\nprint(a[0], a[-1])"), "1 3\n");
        assert_eq!(
            out("a = [3, 1, 2]\nprint(sorted(a))\nprint(a)"),
            "[1, 2, 3]\n[3, 1, 2]\n"
        );
        assert_eq!(out("a = [1]\na[0] = 9\nprint(a)"), "[9]\n");
        assert_eq!(out("a = [1, 2]\nprint(a.pop(), a)"), "2 [1]\n");
        assert_eq!(out("a = [1, 3]\na.insert(1, 2)\nprint(a)"), "[1, 2, 3]\n");
        assert_eq!(out("a = [1, 2, 3]\na.remove(2)\nprint(a.index(3))"), "1\n");
    }

    #[test]
    fn tuples_and_unpacking() {
        assert_eq!(out("t = (1, 2)\na, b = t\nprint(a, b)"), "1 2\n");
        assert_eq!(out("a, b = 1, 2\na, b = b, a\nprint(a, b)"), "2 1\n");
        assert_eq!(out("print((1,) + (2, 3))"), "(1, 2, 3)\n");
    }

    #[test]
    fn dicts() {
        assert_eq!(
            out("d = {'a': 1}\nd['b'] = 2\nprint(d)"),
            "{'a': 1, 'b': 2}\n"
        );
        assert_eq!(out("d = {'a': 1}\nprint(d['a'], d.get('x', 0))"), "1 0\n");
        assert_eq!(
            out("d = {1: 'x', 2: 'y'}\nprint(d.keys(), d.values())"),
            "[1, 2] ['x', 'y']\n"
        );
        assert_eq!(out("d = {'k': 1}\nfor k in d:\n    print(k)"), "k\n");
        assert_eq!(out("print('a' in {'a': 1}, 2 in {'a': 1})"), "True False\n");
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            out("x = 3\nif x > 2:\n    print('big')\nelse:\n    print('small')"),
            "big\n"
        );
        assert_eq!(
            out("s = 0\nfor i in range(5):\n    s += i\nprint(s)"),
            "10\n"
        );
        assert_eq!(
            out("i = 0\nwhile True:\n    i += 1\n    if i == 3:\n        break\nprint(i)"),
            "3\n"
        );
        assert_eq!(
            out("s = 0\nfor i in range(6):\n    if i % 2 == 0:\n        continue\n    s += i\nprint(s)"),
            "9\n"
        );
        assert_eq!(
            out("for i in range(10, 4, -2):\n    print(i)"),
            "10\n8\n6\n"
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            out("def fact(n):\n    if n <= 1:\n        return 1\n    return n * fact(n - 1)\nprint(fact(6))"),
            "720\n"
        );
        assert_eq!(out("def f():\n    pass\nprint(f())"), "None\n");
        assert_eq!(
            out("def add(a, b):\n    return a + b\nprint(add(2, 3))"),
            "5\n"
        );
    }

    #[test]
    fn globals_semantics() {
        assert_eq!(
            out("c = 0\ndef bump():\n    global c\n    c += 1\nbump()\nbump()\nprint(c)"),
            "2\n"
        );
        // Reading a global without declaring works.
        assert_eq!(out("g = 5\ndef f():\n    return g + 1\nprint(f())"), "6\n");
    }

    #[test]
    fn classes() {
        let src = "class Point:\n\
                   \x20   def __init__(self, x, y):\n\
                   \x20       self.x = x\n\
                   \x20       self.y = y\n\
                   \x20   def dist2(self):\n\
                   \x20       return self.x ** 2 + self.y ** 2\n\
                   p = Point(3, 4)\n\
                   print(p.x, p.dist2())\n\
                   p.x = 6\n\
                   print(p.dist2())";
        assert_eq!(out(src), "3 25\n52\n");
    }

    #[test]
    fn builtins() {
        assert_eq!(out("print(abs(-3), min(4, 2), max([1, 9, 5]))"), "3 2 9\n");
        assert_eq!(out("print(sum([1, 2, 3]), sum([0.5, 0.5]))"), "6 1.0\n");
        assert_eq!(out("print(int('42') + 1, float('2.5'))"), "43 2.5\n");
        assert_eq!(out("print(str(12) + '!')"), "12!\n");
        assert_eq!(out("print(list(range(3)))"), "[0, 1, 2]\n");
        assert_eq!(out("print(len(range(0, 10, 3)))"), "4\n");
        assert_eq!(out("print(type(3))"), "<class 'int'>\n");
        assert_eq!(out("a = [1]\nb = a\nprint(id(a) == id(b))"), "True\n");
    }

    #[test]
    fn boolean_value_semantics() {
        assert_eq!(out("print(0 or 'x', 1 and 2, not [])"), "x 2 True\n");
        // Short circuit: right side must not run.
        assert_eq!(
            out("def boom():\n    return 1 // 0\nprint(False and boom())"),
            "False\n"
        );
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(out("print('x=%d y=%s' % (3, 'hi'))"), "x=3 y=hi\n");
        assert_eq!(out("print('v=%d' % 7)"), "v=7\n");
    }

    #[test]
    fn runtime_errors() {
        assert!(run_err("print(x)").message().contains("NameError"));
        assert!(run_err("print(1 // 0)").message().contains("ZeroDivision"));
        assert!(run_err("a = [1]\nprint(a[5])")
            .message()
            .contains("IndexError"));
        assert!(run_err("d = {}\nprint(d['k'])")
            .message()
            .contains("KeyError"));
        assert!(run_err("t = (1, 2)\nt[0] = 5")
            .message()
            .contains("TypeError"));
        assert!(run_err("print('a' + 1)").message().contains("TypeError"));
        assert!(run_err("def f(a):\n    return a\nf(1, 2)")
            .message()
            .contains("TypeError"));
    }

    #[test]
    fn recursion_limit() {
        // Each MiniPy frame costs a deep chain of Rust frames; give the
        // interpreter a roomy stack like the thread-based tracker does.
        let handle = std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(|| run_err("def f():\n    return f()\nf()"))
            .expect("spawn");
        let err = handle.join().expect("no crash");
        assert!(err.message().contains("RecursionError"));
    }

    #[test]
    fn step_limit() {
        let module = crate::parser::parse("while True:\n    pass").unwrap();
        let mut interp = Interp::new(module);
        interp.set_max_steps(Some(100));
        let err = interp.run(&mut NullTracer).unwrap_err();
        assert!(err.message().contains("step limit"));
    }

    #[test]
    fn trace_event_sequence() {
        struct Rec {
            events: Vec<String>,
        }
        impl Tracer for Rec {
            fn trace(&mut self, event: &TraceEvent, ctx: &TraceCtx<'_>) -> TraceAction {
                match event {
                    TraceEvent::Line { line } => self.events.push(format!("line {line}")),
                    TraceEvent::Call {
                        function, depth, ..
                    } => {
                        // Args must be bound at call time.
                        let f = ctx.frames.last().unwrap();
                        let nargs = f.vars().count();
                        self.events
                            .push(format!("call {function}@{depth} args={nargs}"));
                    }
                    TraceEvent::Return {
                        function, value, ..
                    } => {
                        self.events
                            .push(format!("return {function}={}", ctx.heap.repr(*value)));
                    }
                    TraceEvent::Output { text } => {
                        self.events.push(format!("out {}", text.trim_end()));
                    }
                }
                TraceAction::Continue
            }
        }
        let mut rec = Rec { events: Vec::new() };
        run_source("def f(x):\n    return x + 1\nprint(f(1))", &mut rec).unwrap();
        assert_eq!(
            rec.events,
            vec![
                "line 1",
                "line 3",
                "call f@1 args=1",
                "line 2",
                "return f=2",
                "out 2",
            ]
        );
    }

    #[test]
    fn tracer_can_stop_execution() {
        struct StopAt3 {
            count: u32,
        }
        impl Tracer for StopAt3 {
            fn trace(&mut self, event: &TraceEvent, _ctx: &TraceCtx<'_>) -> TraceAction {
                if matches!(event, TraceEvent::Line { .. }) {
                    self.count += 1;
                    if self.count >= 3 {
                        return TraceAction::Stop;
                    }
                }
                TraceAction::Continue
            }
        }
        let mut t = StopAt3 { count: 0 };
        let err = run_source("a = 1\nb = 2\nc = 3\nd = 4", &mut t).unwrap_err();
        assert_eq!(err, Error::Stopped);
        assert_eq!(t.count, 3);
    }

    #[test]
    fn ctx_lookup_scoped_names() {
        struct Check {
            ok: bool,
        }
        impl Tracer for Check {
            fn trace(&mut self, event: &TraceEvent, ctx: &TraceCtx<'_>) -> TraceAction {
                if let TraceEvent::Line { line: 3 } = event {
                    let local = ctx.lookup("x").unwrap();
                    let scoped = ctx.lookup("f::x").unwrap();
                    let global = ctx.lookup("g").unwrap();
                    self.ok = ctx.heap.repr(local) == "10"
                        && ctx.heap.repr(scoped) == "10"
                        && ctx.heap.repr(global) == "1";
                }
                TraceAction::Continue
            }
        }
        let mut c = Check { ok: false };
        run_source("g = 1\ndef f(x):\n    return x\nf(10)", &mut c).unwrap();
        assert!(c.ok);
    }
}
