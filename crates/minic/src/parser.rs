//! Recursive-descent parser for MiniC.
//!
//! Expressions use precedence climbing with the usual C precedence table.
//! The grammar is LL(2): the only lookahead subtlety is distinguishing a cast
//! `(int)x` from a parenthesized expression `(x)`, resolved by peeking for a
//! type keyword after `(`.

use crate::ast::*;
use crate::lexer::{Keyword, Punct, Token, TokenKind};
use crate::types::Type;
use crate::Error;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses a token stream into a [`TranslationUnit`].
///
/// # Errors
///
/// Returns [`Error::Parse`] on the first syntax error.
///
/// # Examples
///
/// ```
/// let tokens = minic::lexer::lex("int main() { return 0; }")?;
/// let unit = minic::parser::parse(tokens)?;
/// assert_eq!(unit.functions.len(), 1);
/// # Ok::<(), minic::Error>(())
/// ```
pub fn parse(tokens: Vec<Token>) -> Result<TranslationUnit, Error> {
    let mut parser = Parser { tokens, pos: 0 };
    parser.translation_unit()
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        self.tokens
            .get(self.pos + offset)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn prev_line(&self) -> u32 {
        self.tokens[self.pos.saturating_sub(1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), Error> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, Error> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Keyword(
                Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Char
                    | Keyword::Void
                    | Keyword::Struct
            )
        )
    }

    /// Parses a base type (no pointer stars): `int`, `struct s`, ...
    fn base_type(&mut self) -> Result<Type, Error> {
        let ty = match self.bump() {
            TokenKind::Keyword(Keyword::Int) => Type::Int,
            TokenKind::Keyword(Keyword::Long) => Type::Long,
            TokenKind::Keyword(Keyword::Float) => Type::Float,
            TokenKind::Keyword(Keyword::Double) => Type::Double,
            TokenKind::Keyword(Keyword::Char) => Type::Char,
            TokenKind::Keyword(Keyword::Void) => Type::Void,
            TokenKind::Keyword(Keyword::Struct) => {
                let name = self.expect_ident()?;
                Type::Struct(name)
            }
            other => return Err(self.error(format!("expected type, found {other}"))),
        };
        Ok(ty)
    }

    /// Parses a full type: base type plus pointer stars.
    fn full_type(&mut self) -> Result<Type, Error> {
        let mut ty = self.base_type()?;
        while self.eat_punct(Punct::Star) {
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    fn translation_unit(&mut self) -> Result<TranslationUnit, Error> {
        let mut unit = TranslationUnit::default();
        while self.peek() != &TokenKind::Eof {
            // struct definition: `struct name { ... };`
            if self.peek() == &TokenKind::Keyword(Keyword::Struct)
                && matches!(self.peek_at(1), TokenKind::Ident(_))
                && self.peek_at(2) == &TokenKind::Punct(Punct::LBrace)
            {
                unit.structs.push(self.struct_def()?);
                continue;
            }
            if !self.is_type_start() {
                return Err(self.error(format!(
                    "expected declaration or function, found {}",
                    self.peek()
                )));
            }
            let line = self.line();
            let ty = self.full_type()?;
            let name = self.expect_ident()?;
            if self.peek() == &TokenKind::Punct(Punct::LParen) {
                unit.functions.push(self.function_def(ty, name, line)?);
            } else {
                // Global variable (possibly an array).
                let ty = self.array_suffix(ty)?;
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.initializer()?)
                } else {
                    None
                };
                self.expect_punct(Punct::Semi)?;
                unit.globals.push(GlobalDef {
                    name,
                    ty,
                    init,
                    line,
                });
            }
        }
        Ok(unit)
    }

    fn struct_def(&mut self) -> Result<StructDef, Error> {
        let line = self.line();
        self.bump(); // struct
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            let fty = self.full_type()?;
            let fname = self.expect_ident()?;
            let fty = self.array_suffix(fty)?;
            self.expect_punct(Punct::Semi)?;
            fields.push((fname, fty));
        }
        self.expect_punct(Punct::Semi)?;
        Ok(StructDef { name, fields, line })
    }

    /// Parses `[N]` suffixes after a declarator name.
    fn array_suffix(&mut self, ty: Type) -> Result<Type, Error> {
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            let n = match self.bump() {
                TokenKind::IntLit(n) if n >= 0 => n as usize,
                other => {
                    return Err(self.error(format!(
                        "array dimension must be a non-negative integer literal, found {other}"
                    )))
                }
            };
            self.expect_punct(Punct::RBracket)?;
            dims.push(n);
        }
        let mut out = ty;
        for n in dims.into_iter().rev() {
            out = Type::Array(Box::new(out), n);
        }
        Ok(out)
    }

    fn function_def(&mut self, ret: Type, name: String, line: u32) -> Result<FunctionDef, Error> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            // Accept `void` as an empty parameter list.
            if self.peek() == &TokenKind::Keyword(Keyword::Void)
                && self.peek_at(1) == &TokenKind::Punct(Punct::RParen)
            {
                self.bump();
                self.bump();
            } else {
                loop {
                    let pty = self.full_type()?;
                    let pname = self.expect_ident()?;
                    let pty = self.array_suffix(pty)?.decay();
                    params.push((pname, pty));
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::RParen)?;
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        let end_line = self.prev_line();
        Ok(FunctionDef {
            name,
            ret,
            params,
            body,
            line,
            end_line,
        })
    }

    /// Parses statements until the closing `}` (which is consumed).
    fn block_body(&mut self) -> Result<Vec<Stmt>, Error> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, Error> {
        let line = self.line();
        match self.peek() {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let then_branch = self.branch_body()?;
                let else_branch = if self.eat_keyword(Keyword::Else) {
                    Some(self.branch_body()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    line,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.branch_body()?;
                Ok(Stmt::While { cond, body, line })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.branch_body()?;
                if !self.eat_keyword(Keyword::While) {
                    return Err(self.error("expected `while` after do-body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::DoWhile { body, cond, line })
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let scrutinee = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::LBrace)?;
                let mut arms: Vec<(Option<i64>, Vec<Stmt>)> = Vec::new();
                while !self.eat_punct(Punct::RBrace) {
                    let label = if self.eat_keyword(Keyword::Case) {
                        Some(self.case_label()?)
                    } else if self.eat_keyword(Keyword::Default) {
                        None
                    } else {
                        return Err(self.error(format!(
                            "expected `case`, `default` or `}}` in switch, found {}",
                            self.peek()
                        )));
                    };
                    self.expect_punct(Punct::Colon)?;
                    let mut body = Vec::new();
                    loop {
                        match self.peek() {
                            TokenKind::Keyword(Keyword::Case | Keyword::Default)
                            | TokenKind::Punct(Punct::RBrace) => break,
                            TokenKind::Eof => return Err(self.error("unterminated switch")),
                            _ => body.push(self.statement()?),
                        }
                    }
                    arms.push((label, body));
                }
                Ok(Stmt::Switch {
                    scrutinee,
                    arms,
                    line,
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else if self.is_type_start() {
                    Some(Box::new(self.declaration()?))
                } else {
                    let e = self.expression()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.peek() == &TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.branch_body()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    line,
                })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break { line })
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue { line })
            }
            _ if self.is_type_start() => self.declaration(),
            _ => {
                let e = self.expression()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Parses a `case` label: an integer or char literal, optionally
    /// negated.
    fn case_label(&mut self) -> Result<i64, Error> {
        let negate = self.eat_punct(Punct::Minus);
        let v = match self.bump() {
            TokenKind::IntLit(v) => v,
            TokenKind::CharLit(c) => c as i64,
            other => {
                return Err(Error::Parse {
                    line: self.prev_line(),
                    message: format!("case label must be a constant, found {other}"),
                })
            }
        };
        Ok(if negate { -v } else { v })
    }

    /// Parses the body of an `if`/`while`/`for`: either a braced block or a
    /// single statement.
    fn branch_body(&mut self) -> Result<Vec<Stmt>, Error> {
        if self.eat_punct(Punct::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    /// Parses a local declaration statement (consumes the `;`).
    fn declaration(&mut self) -> Result<Stmt, Error> {
        let line = self.line();
        let ty = self.full_type()?;
        let name = self.expect_ident()?;
        let ty = self.array_suffix(ty)?;
        let init = if self.eat_punct(Punct::Assign) {
            Some(self.initializer()?)
        } else {
            None
        };
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::Decl {
            name,
            ty,
            init,
            line,
        })
    }

    fn initializer(&mut self) -> Result<Initializer, Error> {
        if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            if !self.eat_punct(Punct::RBrace) {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                    // Allow a trailing comma before `}`.
                    if self.peek() == &TokenKind::Punct(Punct::RBrace) {
                        break;
                    }
                }
                self.expect_punct(Punct::RBrace)?;
            }
            Ok(Initializer::List(items))
        } else {
            Ok(Initializer::Expr(self.expression()?))
        }
    }

    // ---- expressions -----------------------------------------------------

    /// Entry point: assignment expression (lowest precedence incl. ternary).
    fn expression(&mut self) -> Result<Expr, Error> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, Error> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => AssignOp::Assign,
            TokenKind::Punct(Punct::PlusAssign) => AssignOp::Add,
            TokenKind::Punct(Punct::MinusAssign) => AssignOp::Sub,
            TokenKind::Punct(Punct::StarAssign) => AssignOp::Mul,
            TokenKind::Punct(Punct::SlashAssign) => AssignOp::Div,
            TokenKind::Punct(Punct::PercentAssign) => AssignOp::Rem,
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.bump();
        let value = self.assignment()?;
        Ok(Expr::new(
            ExprKind::Assign {
                op,
                target: Box::new(lhs),
                value: Box::new(value),
            },
            line,
        ))
    }

    fn ternary(&mut self) -> Result<Expr, Error> {
        let cond = self.binary(0)?;
        if self.eat_punct(Punct::Question) {
            let line = cond.line;
            let then_expr = self.expression()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.ternary()?;
            Ok(Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_expr: Box::new(then_expr),
                    else_expr: Box::new(else_expr),
                },
                line,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self) -> Option<(BinOp, u8)> {
        let op = match self.peek() {
            TokenKind::Punct(Punct::OrOr) => (BinOp::Or, 1),
            TokenKind::Punct(Punct::AndAnd) => (BinOp::And, 2),
            TokenKind::Punct(Punct::Pipe) => (BinOp::BitOr, 3),
            TokenKind::Punct(Punct::Caret) => (BinOp::BitXor, 4),
            TokenKind::Punct(Punct::Amp) => (BinOp::BitAnd, 5),
            TokenKind::Punct(Punct::Eq) => (BinOp::Eq, 6),
            TokenKind::Punct(Punct::Ne) => (BinOp::Ne, 6),
            TokenKind::Punct(Punct::Lt) => (BinOp::Lt, 7),
            TokenKind::Punct(Punct::Le) => (BinOp::Le, 7),
            TokenKind::Punct(Punct::Gt) => (BinOp::Gt, 7),
            TokenKind::Punct(Punct::Ge) => (BinOp::Ge, 7),
            TokenKind::Punct(Punct::Shl) => (BinOp::Shl, 8),
            TokenKind::Punct(Punct::Shr) => (BinOp::Shr, 8),
            TokenKind::Punct(Punct::Plus) => (BinOp::Add, 9),
            TokenKind::Punct(Punct::Minus) => (BinOp::Sub, 9),
            TokenKind::Punct(Punct::Star) => (BinOp::Mul, 10),
            TokenKind::Punct(Punct::Slash) => (BinOp::Div, 10),
            TokenKind::Punct(Punct::Percent) => (BinOp::Rem, 10),
            _ => return None,
        };
        Some(op)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, Error> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.binop_at() {
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Error> {
        let line = self.line();
        match self.peek() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::Neg,
                        operand: Box::new(operand),
                    },
                    line,
                ))
            }
            TokenKind::Punct(Punct::Not) => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::Not,
                        operand: Box::new(operand),
                    },
                    line,
                ))
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::BitNot,
                        operand: Box::new(operand),
                    },
                    line,
                ))
            }
            TokenKind::Punct(Punct::Star) => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::new(ExprKind::Deref(Box::new(operand)), line))
            }
            TokenKind::Punct(Punct::Amp) => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::new(ExprKind::AddrOf(Box::new(operand)), line))
            }
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let target = self.unary()?;
                Ok(Expr::new(
                    ExprKind::IncDec {
                        delta: 1,
                        prefix: true,
                        target: Box::new(target),
                    },
                    line,
                ))
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let target = self.unary()?;
                Ok(Expr::new(
                    ExprKind::IncDec {
                        delta: -1,
                        prefix: true,
                        target: Box::new(target),
                    },
                    line,
                ))
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                if self.peek() == &TokenKind::Punct(Punct::LParen) && self.type_follows(1) {
                    self.bump(); // (
                    let ty = self.full_type()?;
                    self.expect_punct(Punct::RParen)?;
                    Ok(Expr::new(ExprKind::SizeofType(ty), line))
                } else {
                    let e = self.unary()?;
                    Ok(Expr::new(ExprKind::SizeofExpr(Box::new(e)), line))
                }
            }
            // Cast: `(` type `)` unary
            TokenKind::Punct(Punct::LParen) if self.type_follows(1) => {
                self.bump(); // (
                let ty = self.full_type()?;
                self.expect_punct(Punct::RParen)?;
                let e = self.unary()?;
                Ok(Expr::new(
                    ExprKind::Cast {
                        ty,
                        expr: Box::new(e),
                    },
                    line,
                ))
            }
            _ => self.postfix(),
        }
    }

    /// Whether a type starts at lookahead `offset` (used for casts/sizeof).
    fn type_follows(&self, offset: usize) -> bool {
        matches!(
            self.peek_at(offset),
            TokenKind::Keyword(
                Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Char
                    | Keyword::Void
                    | Keyword::Struct
            )
        )
    }

    fn postfix(&mut self) -> Result<Expr, Error> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.expression()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr::new(
                        ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        line,
                    );
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let field = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            field,
                        },
                        line,
                    );
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let field = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Arrow {
                            base: Box::new(e),
                            field,
                        },
                        line,
                    );
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec {
                            delta: 1,
                            prefix: false,
                            target: Box::new(e),
                        },
                        line,
                    );
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec {
                            delta: -1,
                            prefix: false,
                            target: Box::new(e),
                        },
                        line,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, Error> {
        let line = self.line();
        match self.bump() {
            TokenKind::IntLit(v) => Ok(Expr::new(ExprKind::IntLit(v), line)),
            TokenKind::FloatLit(v) => Ok(Expr::new(ExprKind::FloatLit(v), line)),
            TokenKind::CharLit(c) => Ok(Expr::new(ExprKind::CharLit(c), line)),
            TokenKind::StrLit(s) => Ok(Expr::new(ExprKind::StrLit(s), line)),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::new(ExprKind::Null, line)),
            TokenKind::Ident(name) => {
                if self.peek() == &TokenKind::Punct(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    Ok(Expr::new(ExprKind::Call { callee: name, args }, line))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), line))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                let e = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(Error::Parse {
                line,
                message: format!("expected expression, found {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> TranslationUnit {
        parse(lex(src).unwrap()).unwrap()
    }

    fn parse_expr(src: &str) -> Expr {
        let unit = parse_src(&format!("int main() {{ {src}; }}"));
        match &unit.functions[0].body[0] {
            Stmt::Expr(e) => e.clone(),
            other => panic!("expected expression statement, got {other:?}"),
        }
    }

    #[test]
    fn parses_function_with_params() {
        let unit = parse_src("int add(int a, int b) { return a + b; }");
        let f = &unit.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
    }

    #[test]
    fn parses_void_param_list() {
        let unit = parse_src("int main(void) { return 0; }");
        assert!(unit.functions[0].params.is_empty());
    }

    #[test]
    fn array_params_decay() {
        let unit = parse_src("int f(int a[4]) { return 0; }");
        assert_eq!(unit.functions[0].params[0].1, Type::Int.ptr_to());
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3");
        match e.kind {
            ExprKind::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => match rhs.kind {
                ExprKind::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("rhs should be mul, got {other:?}"),
            },
            other => panic!("expected add at root, got {other:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = parse_expr("a = b = 1");
        match e.kind {
            ExprKind::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::Assign { .. }));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_cast_vs_paren() {
        let cast = parse_expr("(double)3");
        assert!(matches!(cast.kind, ExprKind::Cast { .. }));
        let paren = parse_expr("(3)");
        assert!(matches!(paren.kind, ExprKind::IntLit(3)));
    }

    #[test]
    fn parses_sizeof_both_forms() {
        assert!(matches!(
            parse_expr("sizeof(int)").kind,
            ExprKind::SizeofType(Type::Int)
        ));
        assert!(matches!(
            parse_expr("sizeof x").kind,
            ExprKind::SizeofExpr(_)
        ));
        assert!(matches!(
            parse_expr("sizeof(x)").kind,
            ExprKind::SizeofExpr(_)
        ));
    }

    #[test]
    fn parses_pointer_and_member_chains() {
        let e = parse_expr("p->next->value");
        assert!(matches!(e.kind, ExprKind::Arrow { .. }));
        let e = parse_expr("(*p).x[2]");
        assert!(matches!(e.kind, ExprKind::Index { .. }));
    }

    #[test]
    fn parses_inc_dec() {
        assert!(matches!(
            parse_expr("i++").kind,
            ExprKind::IncDec {
                prefix: false,
                delta: 1,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("--i").kind,
            ExprKind::IncDec {
                prefix: true,
                delta: -1,
                ..
            }
        ));
    }

    #[test]
    fn parses_for_with_declaration() {
        let unit = parse_src("int main() { for (int i = 0; i < 3; i++) { } return 0; }");
        match &unit.functions[0].body[0] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert!(matches!(init.as_deref(), Some(Stmt::Decl { .. })));
                assert!(cond.is_some());
                assert!(step.is_some());
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_unbraced_bodies() {
        let unit = parse_src("int main() { if (1) return 1; else return 2; }");
        match &unit.functions[0].body[0] {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.as_ref().unwrap().len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_struct_def_and_globals() {
        let unit = parse_src(
            "struct point { int x; int y; };\n\
             struct point origin;\n\
             int table[4] = {1, 2, 3, 4};\n\
             int main() { return 0; }",
        );
        assert_eq!(unit.structs.len(), 1);
        assert_eq!(unit.structs[0].fields.len(), 2);
        assert_eq!(unit.globals.len(), 2);
        assert_eq!(unit.globals[0].ty, Type::Struct("point".into()));
        assert_eq!(unit.globals[1].ty, Type::Array(Box::new(Type::Int), 4));
        assert!(matches!(unit.globals[1].init, Some(Initializer::List(_))));
    }

    #[test]
    fn parses_ternary() {
        let e = parse_expr("a ? 1 : b ? 2 : 3");
        match e.kind {
            ExprKind::Ternary { else_expr, .. } => {
                assert!(matches!(else_expr.kind, ExprKind::Ternary { .. }));
            }
            other => panic!("expected ternary, got {other:?}"),
        }
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse(lex("int main() { return }").unwrap()).is_err());
        assert!(parse(lex("int main() {").unwrap()).is_err());
        assert!(parse(lex("42").unwrap()).is_err());
        assert!(parse(lex("int a[x];").unwrap()).is_err());
    }

    #[test]
    fn multidim_arrays() {
        let unit = parse_src("int grid[2][3]; int main() { return 0; }");
        assert_eq!(
            unit.globals[0].ty,
            Type::Array(Box::new(Type::Array(Box::new(Type::Int), 3)), 2)
        );
    }
}
