//! Lowers the typed HIR to flat bytecode.
//!
//! The walk is direct: statements become structured jumps, expressions
//! become operand-stack code. [`Op::Line`] markers are emitted once per
//! statement (the VM's stepping/event granularity, like a debugger's line
//! table).

use crate::ast::UnOp;
use crate::bytecode::{FuncMeta, GlobalMeta, MemTy, Op, Program};
use crate::mem::GLOBAL_BASE;
use crate::typecheck::{CheckedProgram, HExpr, HExprKind, HStmt, HStmtKind, InitWrite};
use crate::types::Type;

/// Lowers a checked program to an executable [`Program`].
///
/// # Examples
///
/// ```
/// let program = minic::compile("a.c", "int main() { return 0; }")?;
/// assert!(!program.code.is_empty());
/// # Ok::<(), minic::Error>(())
/// ```
pub fn lower(file: &str, source: &str, checked: &CheckedProgram) -> Program {
    let mut gen = Gen {
        code: Vec::new(),
        loops: Vec::new(),
        local_offsets: Vec::new(),
    };
    let mut functions = Vec::with_capacity(checked.functions.len());
    for f in &checked.functions {
        let entry = gen.code.len();
        gen.function(f);
        functions.push(FuncMeta {
            name: f.name.clone(),
            ret: f.ret.clone(),
            nparams: f.nparams,
            locals: f.locals.clone(),
            frame_size: f.frame_size,
            entry,
            line: f.line,
            end_line: f.end_line,
        });
    }
    let main_index = checked
        .function("main")
        .map(|(i, _)| i)
        .expect("typechecker guarantees main");

    Program {
        code: gen.code,
        functions,
        main_index,
        global_image: build_global_image(checked),
        globals: checked
            .globals
            .iter()
            .map(|g| GlobalMeta {
                name: g.name.clone(),
                ty: g.ty.clone(),
                addr: g.addr,
                line: g.line,
            })
            .collect(),
        structs: checked.structs.clone(),
        file: file.to_owned(),
        source: source.to_owned(),
    }
}

/// Builds the initial byte image of the globals segment: zeroed variables,
/// constant-initializer patches, then the string pool.
fn build_global_image(checked: &CheckedProgram) -> Vec<u8> {
    let mut image = vec![0u8; checked.global_segment_size as usize];
    let mut patch = |addr: u64, bytes: &[u8]| {
        let off = (addr - GLOBAL_BASE) as usize;
        image[off..off + bytes.len()].copy_from_slice(bytes);
    };
    for g in &checked.globals {
        for w in &g.init {
            match *w {
                InitWrite::Int {
                    offset,
                    size,
                    value,
                } => match size {
                    1 => patch(g.addr + offset, &[value as u8]),
                    4 => patch(g.addr + offset, &(value as i32).to_le_bytes()),
                    8 => patch(g.addr + offset, &value.to_le_bytes()),
                    other => unreachable!("bad init width {other}"),
                },
                InitWrite::Float {
                    offset,
                    size,
                    value,
                } => match size {
                    4 => patch(g.addr + offset, &(value as f32).to_le_bytes()),
                    8 => patch(g.addr + offset, &value.to_le_bytes()),
                    other => unreachable!("bad float init width {other}"),
                },
                InitWrite::Ptr { offset, value } => patch(g.addr + offset, &value.to_le_bytes()),
            }
        }
    }
    for (s, addr) in &checked.strings {
        patch(*addr, s.as_bytes());
        patch(*addr + s.len() as u64, &[0]);
    }
    image
}

struct LoopCtx {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
    /// Switches take `break` but pass `continue` through to the loop.
    is_switch: bool,
}

struct Gen {
    code: Vec<Op>,
    loops: Vec<LoopCtx>,
    /// Frame offsets of the current function's locals, indexed by HIR
    /// local index.
    local_offsets: Vec<u64>,
}

impl Gen {
    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    fn emit_line(&mut self, line: u32) {
        // Avoid stuttering when a lowered statement expands to several
        // sub-statements on the same line.
        if self.code.last() == Some(&Op::Line(line)) {
            return;
        }
        self.emit(Op::Line(line));
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.code.len();
        self.patch_jump_to(at, target);
    }

    fn patch_jump_to(&mut self, at: usize, target: usize) {
        let op = self.code[at];
        match self.code[at].jump_target_mut() {
            Some(t) => *t = target,
            None => unreachable!("patching non-jump {op:?}"),
        }
    }

    fn function(&mut self, f: &crate::typecheck::HFunction) {
        self.local_offsets = f.locals.iter().map(|l| l.offset).collect();
        self.stmts(&f.body);
        // Implicit return for functions that fall off the end.
        self.emit_line(f.end_line);
        match &f.ret {
            Type::Void => {
                self.emit(Op::Ret(false));
            }
            t if t.is_float() => {
                self.emit(Op::PushF(0.0));
                self.emit(Op::Ret(true));
            }
            Type::Ptr(_) => {
                self.emit(Op::PushP(0));
                self.emit(Op::Ret(true));
            }
            _ => {
                self.emit(Op::PushI(0));
                self.emit(Op::Ret(true));
            }
        }
    }

    fn stmts(&mut self, stmts: &[HStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &HStmt) {
        match &s.kind {
            HStmtKind::Expr(e) => {
                self.emit_line(s.line);
                self.expr(e);
                if e.ty != Type::Void {
                    self.emit(Op::Pop);
                }
            }
            HStmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.emit_line(s.line);
                self.expr(cond);
                let jz = self.emit(Op::JumpIfZero(0));
                self.stmts(then_branch);
                if else_branch.is_empty() {
                    self.patch_jump(jz);
                } else {
                    let jend = self.emit(Op::Jump(0));
                    self.patch_jump(jz);
                    self.stmts(else_branch);
                    self.patch_jump(jend);
                }
            }
            HStmtKind::While { cond, body, step } => {
                let top = self.code.len();
                self.emit_line(s.line);
                self.expr(cond);
                let jexit = self.emit(Op::JumpIfZero(0));
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                    is_switch: false,
                });
                self.stmts(body);
                let step_pos = self.code.len();
                if let Some(step) = step {
                    self.emit_line(step.line);
                    self.expr(step);
                    if step.ty != Type::Void {
                        self.emit(Op::Pop);
                    }
                }
                self.emit(Op::Jump(top));
                let ctx = self.loops.pop().expect("pushed above");
                for at in ctx.continue_patches {
                    self.patch_jump_to(at, step_pos);
                }
                self.patch_jump(jexit);
                let end = self.code.len();
                for at in ctx.break_patches {
                    self.patch_jump_to(at, end);
                }
            }
            HStmtKind::DoWhile { body, cond } => {
                let top = self.code.len();
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                    is_switch: false,
                });
                self.stmts(body);
                let cond_pos = self.code.len();
                self.emit_line(cond.line);
                self.expr(cond);
                self.emit(Op::JumpIfNotZero(top));
                let ctx = self.loops.pop().expect("pushed above");
                for at in ctx.continue_patches {
                    self.patch_jump_to(at, cond_pos);
                }
                let end = self.code.len();
                for at in ctx.break_patches {
                    self.patch_jump_to(at, end);
                }
            }
            HStmtKind::Switch { scrutinee, arms } => {
                self.emit_line(s.line);
                self.expr(scrutinee);
                // Dispatch: compare the scrutinee (kept on the stack)
                // against each label; matching jumps reach a stub that pops
                // the scrutinee before entering the arm body (fallthrough
                // between bodies must not pop).
                let mut label_jumps = Vec::new(); // (stub placeholder, arm idx)
                for (i, (label, _)) in arms.iter().enumerate() {
                    if let Some(k) = label {
                        self.emit(Op::Dup);
                        self.emit(Op::PushI(*k));
                        self.emit(Op::ICmp(crate::ast::BinOp::Eq));
                        let at = self.emit(Op::JumpIfNotZero(0));
                        label_jumps.push((at, i));
                    }
                }
                self.emit(Op::Pop);
                let default_jump = self.emit(Op::Jump(0));
                let default_arm = arms.iter().position(|(l, _)| l.is_none());
                // Stubs: pop the scrutinee, then jump to the body.
                let mut body_jumps = Vec::new(); // (jump placeholder, arm idx)
                for (at, i) in label_jumps {
                    self.patch_jump(at);
                    self.emit(Op::Pop);
                    let j = self.emit(Op::Jump(0));
                    body_jumps.push((j, i));
                }
                // Bodies, in order, with fallthrough.
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                    is_switch: true,
                });
                let mut body_starts = Vec::with_capacity(arms.len());
                for (_, body) in arms {
                    body_starts.push(self.code.len());
                    self.stmts(body);
                }
                let end = self.code.len();
                for (j, i) in body_jumps {
                    self.patch_jump_to(j, body_starts[i]);
                }
                match default_arm {
                    Some(i) => self.patch_jump_to(default_jump, body_starts[i]),
                    None => self.patch_jump_to(default_jump, end),
                }
                let ctx = self.loops.pop().expect("pushed above");
                debug_assert!(ctx.continue_patches.is_empty());
                for at in ctx.break_patches {
                    self.patch_jump_to(at, end);
                }
            }
            HStmtKind::Return(value) => {
                self.emit_line(s.line);
                match value {
                    Some(v) => {
                        self.expr(v);
                        self.emit(Op::Ret(true));
                    }
                    None => {
                        self.emit(Op::Ret(false));
                    }
                }
            }
            HStmtKind::Break => {
                self.emit_line(s.line);
                let at = self.emit(Op::Jump(0));
                self.loops
                    .last_mut()
                    .expect("typechecker rejects break outside loops")
                    .break_patches
                    .push(at);
            }
            HStmtKind::Continue => {
                self.emit_line(s.line);
                let at = self.emit(Op::Jump(0));
                self.loops
                    .iter_mut()
                    .rev()
                    .find(|c| !c.is_switch)
                    .expect("typechecker rejects continue outside loops")
                    .continue_patches
                    .push(at);
            }
            HStmtKind::Block(inner) => self.stmts(inner),
        }
    }

    /// Emits code that leaves the expression's value on the stack
    /// (nothing for `Void`-typed expressions).
    fn expr(&mut self, e: &HExpr) {
        match &e.kind {
            HExprKind::ConstInt(v) => {
                self.emit(Op::PushI(*v));
            }
            HExprKind::ConstFloat(v) => {
                self.emit(Op::PushF(*v));
            }
            HExprKind::ConstPtr(p) => {
                self.emit(Op::PushP(*p));
            }
            HExprKind::LocalAddr(idx) => {
                let offset = self.local_offsets[*idx];
                self.emit(Op::LocalAddr(offset));
            }
            HExprKind::Load(addr) => {
                self.expr(addr);
                self.emit(Op::Load(MemTy::from_type(&e.ty)));
            }
            HExprKind::Store { addr, value } => {
                self.expr(addr);
                self.expr(value);
                self.emit(Op::Store(MemTy::from_type(&e.ty)));
            }
            HExprKind::CopyStruct { dst, src, size } => {
                self.expr(dst);
                self.expr(src);
                self.emit(Op::MemCopy(*size));
            }
            HExprKind::Binary {
                op,
                operand_ty,
                lhs,
                rhs,
            } => {
                self.expr(lhs);
                self.expr(rhs);
                let is_float = operand_ty.is_float();
                if op.is_comparison() {
                    self.emit(if is_float {
                        Op::FCmp(*op)
                    } else {
                        Op::ICmp(*op)
                    });
                } else {
                    self.emit(if is_float {
                        Op::FArith(*op)
                    } else {
                        Op::IArith(*op)
                    });
                }
            }
            HExprKind::Logical { is_and, lhs, rhs } => {
                // Short-circuit evaluation producing 0/1.
                self.expr(lhs);
                if *is_and {
                    let j1 = self.emit(Op::JumpIfZero(0));
                    self.expr(rhs);
                    let j2 = self.emit(Op::JumpIfZero(0));
                    self.emit(Op::PushI(1));
                    let jend = self.emit(Op::Jump(0));
                    self.patch_jump(j1);
                    self.patch_jump_to(j2, self.code.len());
                    self.emit(Op::PushI(0));
                    self.patch_jump(jend);
                } else {
                    let j1 = self.emit(Op::JumpIfNotZero(0));
                    self.expr(rhs);
                    let j2 = self.emit(Op::JumpIfNotZero(0));
                    self.emit(Op::PushI(0));
                    let jend = self.emit(Op::Jump(0));
                    self.patch_jump(j1);
                    self.patch_jump_to(j2, self.code.len());
                    self.emit(Op::PushI(1));
                    self.patch_jump(jend);
                }
            }
            HExprKind::Unary { op, operand } => {
                self.expr(operand);
                match op {
                    UnOp::Neg => {
                        self.emit(Op::Neg(operand.ty.is_float()));
                    }
                    UnOp::Not => {
                        self.emit(Op::Not);
                    }
                    UnOp::BitNot => {
                        self.emit(Op::BitNot);
                    }
                }
            }
            HExprKind::PtrAdd {
                ptr,
                index,
                elem_size,
                negate,
            } => {
                self.expr(ptr);
                self.expr(index);
                self.emit(if *negate {
                    Op::PtrSub(*elem_size)
                } else {
                    Op::PtrAdd(*elem_size)
                });
            }
            HExprKind::PtrDiff {
                lhs,
                rhs,
                elem_size,
            } => {
                self.expr(lhs);
                self.expr(rhs);
                self.emit(Op::PtrDiff(*elem_size));
            }
            HExprKind::Cast { from, expr } => {
                self.expr(expr);
                self.cast(from, &e.ty);
            }
            HExprKind::Call { target, args } => {
                for a in args {
                    self.expr(a);
                }
                match target {
                    crate::typecheck::CallTarget::Function(idx) => {
                        self.emit(Op::Call(*idx));
                    }
                    crate::typecheck::CallTarget::Intrinsic(intr) => {
                        self.emit(Op::Intrinsic(*intr, args.len() as u8));
                    }
                }
            }
            HExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr(cond);
                let jz = self.emit(Op::JumpIfZero(0));
                self.expr(then_expr);
                let jend = self.emit(Op::Jump(0));
                self.patch_jump(jz);
                self.expr(else_expr);
                self.patch_jump(jend);
            }
            HExprKind::IncDec {
                addr,
                delta,
                prefix,
                elem_size,
            } => {
                self.expr(addr);
                self.emit(Op::IncDec {
                    memty: MemTy::from_type(&e.ty),
                    delta: *delta,
                    prefix: *prefix,
                    ptr_step: *elem_size,
                });
            }
        }
    }

    /// Emits a value conversion between scalar types (the typechecker only
    /// produces legal pairs).
    fn cast(&mut self, from: &Type, to: &Type) {
        match (from, to) {
            (a, b) if a == b => {}
            (a, b) if a.is_integer() && b.is_integer() => {
                // Narrowing truncates+sign-extends; widening from a value
                // already held as i64 is a no-op thanks to earlier
                // truncation on every narrow store/cast.
                if size_rank(b) < size_rank(a) {
                    self.emit(Op::TruncI(MemTy::from_type(b)));
                }
            }
            (a, b) if a.is_integer() && b.is_float() => {
                self.emit(Op::I2F);
                if *b == Type::Float {
                    self.emit(Op::F2F32);
                }
            }
            (a, b) if a.is_float() && b.is_integer() => {
                self.emit(Op::F2I);
                if size_rank(b) < 8 {
                    self.emit(Op::TruncI(MemTy::from_type(b)));
                }
            }
            (Type::Double, Type::Float) => {
                self.emit(Op::F2F32);
            }
            (Type::Float, Type::Double) => {
                // Stack floats are f64 already; the f32 rounding happened
                // at the producing load/cast.
            }
            (a, b) if a.is_pointer() && b.is_pointer() => {}
            (a, b) if a.is_integer() && b.is_pointer() => {
                self.emit(Op::I2P);
            }
            (a, b) if a.is_pointer() && b.is_integer() => {
                self.emit(Op::P2I);
                if size_rank(b) < 8 {
                    self.emit(Op::TruncI(MemTy::from_type(b)));
                }
            }
            (a, b) => unreachable!("typechecker passed invalid cast {a} -> {b}"),
        }
    }
}

fn size_rank(t: &Type) -> u64 {
    match t {
        Type::Char => 1,
        Type::Int => 4,
        _ => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn every_statement_line_has_a_marker() {
        let p = compile(
            "t.c",
            "int main() {\nint a = 1;\nint b = 2;\nreturn a + b;\n}",
        )
        .unwrap();
        let lines = p.breakable_lines();
        for l in [2u32, 3, 4] {
            assert!(lines.contains(&l), "line {l} has no marker");
        }
    }

    #[test]
    fn jumps_are_patched_in_bounds() {
        let src = "int main() {\n\
                   int s = 0;\n\
                   for (int i = 0; i < 10; i++) {\n\
                   if (i == 5) continue;\n\
                   if (i == 8) break;\n\
                   s += i;\n\
                   }\n\
                   while (s > 100) s--;\n\
                   return s;\n\
                   }";
        let p = compile("t.c", src).unwrap();
        for op in &p.code {
            if let Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) = op {
                assert!(*t <= p.code.len(), "jump target {t} out of bounds");
                assert_ne!(*t, 0, "unpatched jump");
            }
        }
    }

    #[test]
    fn global_image_contains_initializers_and_strings() {
        let p = compile(
            "t.c",
            "int g = 7;\nchar* s = \"ab\";\nint main() { return g; }",
        )
        .unwrap();
        assert_eq!(&p.global_image[0..4], &7i32.to_le_bytes());
        // The string bytes appear somewhere in the image, NUL-terminated.
        let needle = b"ab\0";
        assert!(p.global_image.windows(needle.len()).any(|w| w == needle));
        // The pointer slot holds the string's address.
        let sp = p.global("s").unwrap().addr;
        let off = (sp - GLOBAL_BASE) as usize;
        let ptr = u64::from_le_bytes(p.global_image[off..off + 8].try_into().unwrap());
        let str_off = (ptr - GLOBAL_BASE) as usize;
        assert_eq!(&p.global_image[str_off..str_off + 3], needle);
    }

    #[test]
    fn call_ops_reference_valid_functions() {
        let p = compile(
            "t.c",
            "int f(int x) { return x; } int main() { return f(1) + f(2); }",
        )
        .unwrap();
        for op in &p.code {
            if let Op::Call(idx) = op {
                assert!(*idx < p.functions.len());
            }
        }
    }
}
