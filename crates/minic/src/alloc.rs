//! The tracking heap allocator.
//!
//! The paper's GDB tracker interposes `malloc`/`calloc`/`realloc`/`free`
//! through `LD_PRELOAD` so the tracker always knows which addresses are live
//! heap blocks and how big they are — that is what lets its tools draw
//! heap-allocated arrays with the right length and cross out dangling
//! pointers. This module provides the same knowledge natively: the VM's
//! allocator records every block, keeps freed blocks around (marked dead)
//! for dangling-pointer classification, and exposes lookup by address.

use crate::mem::{Memory, HEAP_BASE, HEAP_SIZE};
use std::collections::BTreeMap;
use std::fmt;

/// Allocation granularity; every block address is a multiple of this.
pub const ALIGN: u64 = 16;

/// Bytes of guard zone on each side of a block in sanitize mode.
pub const REDZONE: u64 = 16;

/// A heap block, live or freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First address of the block.
    pub addr: u64,
    /// Requested size in bytes.
    pub size: u64,
    /// Whether the block is still allocated.
    pub live: bool,
    /// Allocation serial number. Every successful `malloc`/`calloc`/
    /// `realloc` gets a fresh epoch, so a handle that remembers
    /// `(addr, epoch)` can detect that its block was freed and the address
    /// recycled for an unrelated allocation.
    pub epoch: u64,
}

impl Block {
    /// Whether `addr` falls inside the block.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.addr + self.size.max(1)
    }
}

/// Errors raised by the allocation intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The arena is exhausted.
    OutOfMemory {
        /// The requested size.
        requested: u64,
    },
    /// `free`/`realloc` called with an address that is not the start of a
    /// live block.
    InvalidFree {
        /// The offending address.
        addr: u64,
    },
    /// `free` called twice on the same block.
    DoubleFree {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "heap exhausted allocating {requested} byte(s)")
            }
            AllocError::InvalidFree { addr } => {
                write!(f, "free of non-heap or interior pointer {addr:#x}")
            }
            AllocError::DoubleFree { addr } => write!(f, "double free of {addr:#x}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// First-fit free-list allocator over the heap segment, with full block
/// tracking.
#[derive(Debug, Clone)]
pub struct Allocator {
    /// All blocks ever allocated, keyed by base address. Freed blocks stay,
    /// marked `live: false`, until their range is reused.
    blocks: BTreeMap<u64, Block>,
    /// Free ranges `(addr, size)`, kept sorted and coalesced.
    free: Vec<(u64, u64)>,
    /// High-water mark relative to `HEAP_BASE`.
    brk: u64,
    /// Total bytes currently allocated.
    live_bytes: u64,
    /// Count of allocations performed (for stats/benches).
    total_allocs: u64,
    /// Count of successful `free`s of real blocks (for stats/benches).
    total_frees: u64,
    /// Next allocation epoch (monotonically increasing serial).
    next_epoch: u64,
    /// Sanitize mode: blocks get [`REDZONE`] guard bytes on both sides and
    /// freed blocks are quarantined (never recycled), so out-of-bounds and
    /// use-after-free accesses land in classifiable memory.
    sanitize: bool,
}

impl Default for Allocator {
    fn default() -> Self {
        Allocator::new()
    }
}

impl Allocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Allocator {
            blocks: BTreeMap::new(),
            free: Vec::new(),
            brk: 0,
            live_bytes: 0,
            total_allocs: 0,
            total_frees: 0,
            next_epoch: 1,
            sanitize: false,
        }
    }

    /// Switches the allocator into sanitize mode (guard zones + quarantine).
    /// Must be called before the first allocation.
    pub fn set_sanitize(&mut self, on: bool) {
        debug_assert!(
            self.blocks.is_empty(),
            "sanitize mode must be set before the first allocation"
        );
        self.sanitize = on;
    }

    /// Whether sanitize mode is active.
    pub fn sanitize(&self) -> bool {
        self.sanitize
    }

    /// Allocates `size` bytes (zero-size allocations get a unique 1-byte
    /// block, like glibc returns a unique pointer).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when the arena is exhausted.
    pub fn malloc(&mut self, mem: &mut Memory, size: u64) -> Result<u64, AllocError> {
        if self.sanitize {
            return self.malloc_sanitized(mem, size);
        }
        let want = crate::types::round_up(size.max(1), ALIGN);
        // First fit in the free list.
        let addr = if let Some(i) = self.free.iter().position(|&(_, s)| s >= want) {
            let (a, s) = self.free[i];
            if s == want {
                self.free.remove(i);
            } else {
                self.free[i] = (a + want, s - want);
            }
            a
        } else {
            let a = HEAP_BASE + self.brk;
            if self.brk + want > HEAP_SIZE {
                return Err(AllocError::OutOfMemory { requested: size });
            }
            self.brk += want;
            mem.ensure_heap(self.brk);
            a
        };
        // Drop any stale (freed) block records overlapping the reused range.
        let stale: Vec<u64> = self
            .blocks
            .range(..addr + want)
            .rev()
            .take_while(|(_, b)| b.addr + b.size.max(1) > addr)
            .map(|(a, _)| *a)
            .collect();
        for a in stale {
            if !self.blocks[&a].live {
                self.blocks.remove(&a);
            }
        }
        self.blocks.insert(
            addr,
            Block {
                addr,
                size,
                live: true,
                epoch: self.next_epoch,
            },
        );
        self.next_epoch += 1;
        self.live_bytes += size;
        self.total_allocs += 1;
        Ok(addr)
    }

    /// Sanitize-mode allocation: bump allocation only (freed ranges are
    /// quarantined, never recycled) with [`REDZONE`] guard bytes on both
    /// sides of the usable range. Guard bytes and quarantined blocks stay
    /// mapped, so stray accesses complete benignly and can be classified by
    /// [`Allocator::block_near`] instead of crashing the VM.
    fn malloc_sanitized(&mut self, mem: &mut Memory, size: u64) -> Result<u64, AllocError> {
        let want = crate::types::round_up(size.max(1), ALIGN) + 2 * REDZONE;
        if self.brk + want > HEAP_SIZE {
            return Err(AllocError::OutOfMemory { requested: size });
        }
        let addr = HEAP_BASE + self.brk + REDZONE;
        self.brk += want;
        mem.ensure_heap(self.brk);
        self.blocks.insert(
            addr,
            Block {
                addr,
                size,
                live: true,
                epoch: self.next_epoch,
            },
        );
        self.next_epoch += 1;
        self.live_bytes += size;
        self.total_allocs += 1;
        Ok(addr)
    }

    /// `calloc(n, size)`: zeroed allocation.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] on exhaustion (also used for
    /// `n * size` overflow).
    pub fn calloc(&mut self, mem: &mut Memory, n: u64, size: u64) -> Result<u64, AllocError> {
        let total = n.checked_mul(size).ok_or(AllocError::OutOfMemory {
            requested: u64::MAX,
        })?;
        let addr = self.malloc(mem, total)?;
        let zeros = vec![0u8; total as usize];
        mem.write_bytes(addr, &zeros)
            .expect("fresh block is mapped");
        Ok(addr)
    }

    /// Releases a block.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::DoubleFree`] for an already-freed block and
    /// [`AllocError::InvalidFree`] for a pointer that is not the base of a
    /// block. Freeing `NULL` is a no-op, like C.
    pub fn free(&mut self, addr: u64) -> Result<(), AllocError> {
        if addr == 0 {
            return Ok(());
        }
        match self.blocks.get_mut(&addr) {
            Some(b) if b.live => {
                b.live = false;
                self.live_bytes -= b.size;
                self.total_frees += 1;
                // Sanitize mode quarantines the range forever: the block
                // record survives, so later accesses classify as
                // use-after-free instead of silently hitting recycled data.
                if !self.sanitize {
                    let span = crate::types::round_up(b.size.max(1), ALIGN);
                    Allocator::insert_free(&mut self.free, addr, span);
                }
                Ok(())
            }
            Some(_) => Err(AllocError::DoubleFree { addr }),
            None => Err(AllocError::InvalidFree { addr }),
        }
    }

    /// `realloc(ptr, size)`: grows/shrinks, preserving contents.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] from the underlying free/malloc; `realloc`
    /// of `NULL` behaves like `malloc`.
    pub fn realloc(&mut self, mem: &mut Memory, addr: u64, size: u64) -> Result<u64, AllocError> {
        if addr == 0 {
            return self.malloc(mem, size);
        }
        let old = *self
            .blocks
            .get(&addr)
            .filter(|b| b.live)
            .ok_or(AllocError::InvalidFree { addr })?;
        let new_addr = self.malloc(mem, size)?;
        let keep = old.size.min(size);
        if keep > 0 {
            mem.copy(new_addr, addr, keep).expect("both blocks mapped");
        }
        self.free(addr)?;
        Ok(new_addr)
    }

    fn insert_free(free: &mut Vec<(u64, u64)>, addr: u64, size: u64) {
        let pos = free.partition_point(|&(a, _)| a < addr);
        free.insert(pos, (addr, size));
        // Coalesce with neighbours.
        if pos + 1 < free.len() && free[pos].0 + free[pos].1 == free[pos + 1].0 {
            free[pos].1 += free[pos + 1].1;
            free.remove(pos + 1);
        }
        if pos > 0 && free[pos - 1].0 + free[pos - 1].1 == free[pos].0 {
            free[pos - 1].1 += free[pos].1;
            free.remove(pos);
        }
    }

    /// The block (live or freed) whose range contains `addr`, if any.
    pub fn block_containing(&self, addr: u64) -> Option<Block> {
        self.blocks
            .range(..=addr)
            .next_back()
            .map(|(_, b)| *b)
            .filter(|b| b.contains(addr))
    }

    /// Whether `addr` points into a live heap block.
    pub fn is_live(&self, addr: u64) -> bool {
        self.block_containing(addr).is_some_and(|b| b.live)
    }

    /// The block whose *padded* range (body plus [`REDZONE`] guard bytes on
    /// each side) contains `addr`. Used by the runtime sanitizer to classify
    /// near-miss accesses: inside the body of a freed block or in a guard
    /// zone. Only meaningful in sanitize mode, where padded ranges are
    /// disjoint by construction.
    pub fn block_near(&self, addr: u64) -> Option<Block> {
        self.blocks
            .range(..=addr.saturating_add(REDZONE))
            .next_back()
            .map(|(_, b)| *b)
            .filter(|b| {
                let lo = b.addr.saturating_sub(REDZONE);
                let hi = b.addr + crate::types::round_up(b.size.max(1), ALIGN) + REDZONE;
                addr >= lo && addr < hi
            })
    }

    /// Iterates over live blocks in address order.
    pub fn live_blocks(&self) -> impl Iterator<Item = Block> + '_ {
        self.blocks.values().copied().filter(|b| b.live)
    }

    /// Total bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of `malloc`/`calloc`/`realloc` allocations performed so far.
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Number of successful `free`s of real blocks so far (`free(NULL)`
    /// does not count).
    pub fn total_frees(&self) -> u64 {
        self.total_frees
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Allocator, Memory) {
        (Allocator::new(), Memory::new(0))
    }

    #[test]
    fn malloc_returns_aligned_disjoint_blocks() {
        let (mut a, mut m) = setup();
        let p1 = a.malloc(&mut m, 10).unwrap();
        let p2 = a.malloc(&mut m, 20).unwrap();
        assert_eq!(p1 % ALIGN, 0);
        assert_eq!(p2 % ALIGN, 0);
        assert!(p2 >= p1 + 16);
        assert_eq!(a.live_bytes(), 30);
    }

    #[test]
    fn free_and_reuse() {
        let (mut a, mut m) = setup();
        let p1 = a.malloc(&mut m, 32).unwrap();
        a.free(p1).unwrap();
        assert!(!a.is_live(p1));
        let p2 = a.malloc(&mut m, 16).unwrap();
        assert_eq!(p2, p1, "first fit reuses the freed range");
        assert!(a.is_live(p2));
    }

    #[test]
    fn double_free_detected() {
        let (mut a, mut m) = setup();
        let p = a.malloc(&mut m, 8).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(AllocError::DoubleFree { addr: p }));
    }

    #[test]
    fn invalid_free_detected() {
        let (mut a, mut m) = setup();
        let p = a.malloc(&mut m, 64).unwrap();
        assert_eq!(a.free(p + 4), Err(AllocError::InvalidFree { addr: p + 4 }));
        assert!(a.free(0).is_ok(), "free(NULL) is a no-op");
    }

    #[test]
    fn block_containing_finds_interior_pointers() {
        let (mut a, mut m) = setup();
        let p = a.malloc(&mut m, 40).unwrap();
        let b = a.block_containing(p + 39).unwrap();
        assert_eq!(b.addr, p);
        assert_eq!(b.size, 40);
        assert!(a.block_containing(p + 40 + 64).is_none());
    }

    #[test]
    fn freed_block_still_classified_until_reuse() {
        let (mut a, mut m) = setup();
        let p = a.malloc(&mut m, 24).unwrap();
        a.free(p).unwrap();
        let b = a.block_containing(p + 3).unwrap();
        assert!(!b.live, "dangling pointer classified as freed block");
    }

    #[test]
    fn calloc_zeroes_reused_memory() {
        let (mut a, mut m) = setup();
        let p = a.malloc(&mut m, 16).unwrap();
        m.write_int(p, 8, -1).unwrap();
        a.free(p).unwrap();
        let q = a.calloc(&mut m, 2, 8).unwrap();
        assert_eq!(q, p);
        assert_eq!(m.read_int(q, 8).unwrap(), 0);
        assert_eq!(m.read_int(q + 8, 8).unwrap(), 0);
    }

    #[test]
    fn realloc_preserves_contents() {
        let (mut a, mut m) = setup();
        let p = a.malloc(&mut m, 8).unwrap();
        m.write_int(p, 8, 0x1234_5678).unwrap();
        let q = a.realloc(&mut m, p, 64).unwrap();
        assert_eq!(m.read_int(q, 8).unwrap(), 0x1234_5678);
        assert!(!a.is_live(p) || p == q);
        assert!(a.is_live(q));
        // realloc(NULL, n) == malloc(n)
        let r = a.realloc(&mut m, 0, 8).unwrap();
        assert!(a.is_live(r));
    }

    #[test]
    fn coalescing_allows_large_reuse() {
        let (mut a, mut m) = setup();
        let p1 = a.malloc(&mut m, 16).unwrap();
        let p2 = a.malloc(&mut m, 16).unwrap();
        let _p3 = a.malloc(&mut m, 16).unwrap();
        a.free(p1).unwrap();
        a.free(p2).unwrap();
        let big = a.malloc(&mut m, 32).unwrap();
        assert_eq!(big, p1, "coalesced neighbours satisfy a bigger request");
    }

    #[test]
    fn out_of_memory_reported() {
        let (mut a, mut m) = setup();
        assert!(matches!(
            a.malloc(&mut m, crate::mem::HEAP_SIZE + 1),
            Err(AllocError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn live_blocks_iteration() {
        let (mut a, mut m) = setup();
        let p1 = a.malloc(&mut m, 8).unwrap();
        let p2 = a.malloc(&mut m, 8).unwrap();
        a.free(p1).unwrap();
        let live: Vec<u64> = a.live_blocks().map(|b| b.addr).collect();
        assert_eq!(live, vec![p2]);
        assert_eq!(a.total_allocs(), 2);
    }

    #[test]
    fn zero_size_malloc_gets_unique_block() {
        let (mut a, mut m) = setup();
        let p1 = a.malloc(&mut m, 0).unwrap();
        let p2 = a.malloc(&mut m, 0).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn epochs_distinguish_recycled_addresses() {
        let (mut a, mut m) = setup();
        let p1 = a.malloc(&mut m, 32).unwrap();
        let e1 = a.block_containing(p1).unwrap().epoch;
        a.free(p1).unwrap();
        let p2 = a.malloc(&mut m, 32).unwrap();
        assert_eq!(p2, p1, "default mode recycles the range");
        let e2 = a.block_containing(p2).unwrap().epoch;
        assert_ne!(e1, e2, "recycled block must carry a fresh epoch");
    }

    #[test]
    fn sanitize_mode_never_recycles() {
        let (mut a, mut m) = setup();
        a.set_sanitize(true);
        let p1 = a.malloc(&mut m, 32).unwrap();
        a.free(p1).unwrap();
        let p2 = a.malloc(&mut m, 32).unwrap();
        assert_ne!(p2, p1, "quarantine keeps freed ranges out of circulation");
        let b = a.block_containing(p1).unwrap();
        assert!(!b.live, "freed block record survives for classification");
    }

    #[test]
    fn sanitize_mode_block_near_classifies_redzones() {
        let (mut a, mut m) = setup();
        a.set_sanitize(true);
        let p = a.malloc(&mut m, 20).unwrap();
        // One past the end: inside the trailing guard zone.
        let near = a.block_near(p + 20).unwrap();
        assert_eq!(near.addr, p);
        // Just before the start: inside the leading guard zone.
        let near = a.block_near(p - 1).unwrap();
        assert_eq!(near.addr, p);
        // Blocks are spaced so padded ranges stay disjoint.
        let q = a.malloc(&mut m, 8).unwrap();
        assert!(q >= p + 20 + 2 * REDZONE);
        assert_eq!(a.block_near(q - 1).unwrap().addr, q);
    }
}
