//! Hand-written lexer for MiniC.

use crate::Error;
use std::fmt;

/// A lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Token kinds of the MiniC grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (not a keyword).
    Ident(String),
    /// Integer literal (decimal, hex `0x`, or char escape value).
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// String literal with escapes resolved.
    StrLit(String),
    /// Character literal with escapes resolved.
    CharLit(char),
    /// A keyword such as `int` or `while`.
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::IntLit(v) => write!(f, "integer `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float `{v}`"),
            TokenKind::StrLit(_) => write!(f, "string literal"),
            TokenKind::CharLit(c) => write!(f, "char literal `{c:?}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Reserved words of MiniC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Int,
    Long,
    Float,
    Double,
    Char,
    Void,
    Struct,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    Sizeof,
    Null,
    Do,
    Switch,
    Case,
    Default,
}

impl Keyword {
    fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "long" => Keyword::Long,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "char" => Keyword::Char,
            "void" => Keyword::Void,
            "struct" => Keyword::Struct,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "sizeof" => Keyword::Sizeof,
            "NULL" => Keyword::Null,
            "do" => Keyword::Do,
            "switch" => Keyword::Switch,
            "case" => Keyword::Case,
            "default" => Keyword::Default,
            _ => return None,
        })
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Keyword::Int => "int",
            Keyword::Long => "long",
            Keyword::Float => "float",
            Keyword::Double => "double",
            Keyword::Char => "char",
            Keyword::Void => "void",
            Keyword::Struct => "struct",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Sizeof => "sizeof",
            Keyword::Null => "NULL",
            Keyword::Do => "do",
            Keyword::Switch => "switch",
            Keyword::Case => "case",
            Keyword::Default => "default",
        };
        f.write_str(s)
    }
}

/// Operators and punctuation of MiniC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Question,
    Colon,
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Semi => ";",
            Punct::Comma => ",",
            Punct::Dot => ".",
            Punct::Arrow => "->",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Assign => "=",
            Punct::PlusAssign => "+=",
            Punct::MinusAssign => "-=",
            Punct::StarAssign => "*=",
            Punct::SlashAssign => "/=",
            Punct::PercentAssign => "%=",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
            Punct::Eq => "==",
            Punct::Ne => "!=",
            Punct::Lt => "<",
            Punct::Le => "<=",
            Punct::Gt => ">",
            Punct::Ge => ">=",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::Not => "!",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::Question => "?",
            Punct::Colon => ":",
        };
        f.write_str(s)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::Lex {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), Error> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(Error::Lex {
                                    line: start_line,
                                    message: "unterminated block comment".into(),
                                })
                            }
                        }
                    }
                }
                Some(b'#') => {
                    // Preprocessor lines (#include, #define) are accepted and
                    // ignored so that teaching programs copy-paste unchanged.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_escape(&mut self) -> Result<char, Error> {
        match self.bump() {
            Some(b'n') => Ok('\n'),
            Some(b't') => Ok('\t'),
            Some(b'r') => Ok('\r'),
            Some(b'0') => Ok('\0'),
            Some(b'\\') => Ok('\\'),
            Some(b'\'') => Ok('\''),
            Some(b'"') => Ok('"'),
            Some(c) => Err(self.error(format!("unknown escape `\\{}`", c as char))),
            None => Err(self.error("unterminated escape sequence")),
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, Error> {
        let start = self.pos;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).unwrap();
            if text.is_empty() {
                return Err(self.error("expected hex digits after `0x`"));
            }
            let v = i64::from_str_radix(text, 16)
                .map_err(|_| self.error("hex literal out of range"))?;
            return Ok(TokenKind::IntLit(v));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut look = self.pos + 1;
            if matches!(self.src.get(look), Some(b'+') | Some(b'-')) {
                look += 1;
            }
            if matches!(self.src.get(look), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            // Accept an optional `f` suffix.
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                self.bump();
            }
            let v: f64 = text
                .parse()
                .map_err(|_| self.error("malformed float literal"))?;
            Ok(TokenKind::FloatLit(v))
        } else {
            // Accept an optional `L` suffix.
            if matches!(self.peek(), Some(b'l') | Some(b'L')) {
                self.bump();
            }
            let v: i64 = text
                .parse()
                .map_err(|_| self.error("integer literal out of range"))?;
            Ok(TokenKind::IntLit(v))
        }
    }

    fn next_token(&mut self) -> Result<Token, Error> {
        self.skip_trivia()?;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                line,
            });
        };
        let kind = match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                match Keyword::from_ident(text) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(text.to_owned()),
                }
            }
            b'0'..=b'9' => self.lex_number()?,
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => s.push(self.lex_escape()?),
                        Some(b'\n') | None => {
                            return Err(Error::Lex {
                                line,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(c) => s.push(c as char),
                    }
                }
                TokenKind::StrLit(s)
            }
            b'\'' => {
                self.bump();
                let ch = match self.bump() {
                    Some(b'\\') => self.lex_escape()?,
                    Some(b'\'') | None => {
                        return Err(Error::Lex {
                            line,
                            message: "empty char literal".into(),
                        })
                    }
                    Some(c) => c as char,
                };
                if self.bump() != Some(b'\'') {
                    return Err(Error::Lex {
                        line,
                        message: "unterminated char literal".into(),
                    });
                }
                TokenKind::CharLit(ch)
            }
            _ => TokenKind::Punct(self.lex_punct()?),
        };
        Ok(Token { kind, line })
    }

    fn lex_punct(&mut self) -> Result<Punct, Error> {
        let c = self.bump().expect("caller checked peek");
        let two = |lexer: &mut Lexer<'a>, next: u8, yes: Punct, no: Punct| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            b'(' => Punct::LParen,
            b')' => Punct::RParen,
            b'{' => Punct::LBrace,
            b'}' => Punct::RBrace,
            b'[' => Punct::LBracket,
            b']' => Punct::RBracket,
            b';' => Punct::Semi,
            b',' => Punct::Comma,
            b'.' => Punct::Dot,
            b'?' => Punct::Question,
            b':' => Punct::Colon,
            b'~' => Punct::Tilde,
            b'^' => Punct::Caret,
            b'+' => match self.peek() {
                Some(b'+') => {
                    self.bump();
                    Punct::PlusPlus
                }
                Some(b'=') => {
                    self.bump();
                    Punct::PlusAssign
                }
                _ => Punct::Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => {
                    self.bump();
                    Punct::MinusMinus
                }
                Some(b'=') => {
                    self.bump();
                    Punct::MinusAssign
                }
                Some(b'>') => {
                    self.bump();
                    Punct::Arrow
                }
                _ => Punct::Minus,
            },
            b'*' => two(self, b'=', Punct::StarAssign, Punct::Star),
            b'/' => two(self, b'=', Punct::SlashAssign, Punct::Slash),
            b'%' => two(self, b'=', Punct::PercentAssign, Punct::Percent),
            b'=' => two(self, b'=', Punct::Eq, Punct::Assign),
            b'!' => two(self, b'=', Punct::Ne, Punct::Not),
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Punct::Le
                }
                Some(b'<') => {
                    self.bump();
                    Punct::Shl
                }
                _ => Punct::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Punct::Ge
                }
                Some(b'>') => {
                    self.bump();
                    Punct::Shr
                }
                _ => Punct::Gt,
            },
            b'&' => two(self, b'&', Punct::AndAnd, Punct::Amp),
            b'|' => two(self, b'|', Punct::OrOr, Punct::Pipe),
            other => return Err(self.error(format!("unexpected character `{}`", other as char))),
        })
    }
}

/// Tokenizes MiniC source text.
///
/// # Errors
///
/// Returns [`Error::Lex`] on malformed input (unterminated literals, unknown
/// characters or escapes, out-of-range numbers).
///
/// # Examples
///
/// ```
/// let tokens = minic::lexer::lex("int x = 1;")?;
/// assert_eq!(tokens.len(), 6); // int x = 1 ; EOF
/// # Ok::<(), minic::Error>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, Error> {
    let mut lexer = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    loop {
        let tok = lexer.next_token()?;
        let done = tok.kind == TokenKind::Eof;
        tokens.push(tok);
        if done {
            return Ok(tokens);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        let ks = kinds("int foo while whilex");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("foo".into()),
                TokenKind::Keyword(Keyword::While),
                TokenKind::Ident("whilex".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("0x2A")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("3.5")[0], TokenKind::FloatLit(3.5));
        assert_eq!(kinds("1e3")[0], TokenKind::FloatLit(1000.0));
        assert_eq!(kinds("2.5f")[0], TokenKind::FloatLit(2.5));
        assert_eq!(kinds("7L")[0], TokenKind::IntLit(7));
    }

    #[test]
    fn dot_after_int_without_digit_is_member_access() {
        let ks = kinds("a.b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::Dot),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_strings_and_chars_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#)[0], TokenKind::StrLit("a\nb".into()));
        assert_eq!(kinds(r"'\t'")[0], TokenKind::CharLit('\t'));
        assert_eq!(kinds("'x'")[0], TokenKind::CharLit('x'));
        assert_eq!(kinds(r"'\0'")[0], TokenKind::CharLit('\0'));
    }

    #[test]
    fn lexes_compound_operators() {
        let ks = kinds("a += b-- -> <<= == <=");
        assert!(ks.contains(&TokenKind::Punct(Punct::PlusAssign)));
        assert!(ks.contains(&TokenKind::Punct(Punct::MinusMinus)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Arrow)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Eq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Le)));
    }

    #[test]
    fn skips_comments_and_preprocessor() {
        let src = "#include <stdio.h>\n// c1\nint /* mid */ x; /* multi\nline */ 5";
        let ks = kinds(src);
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Semi),
                TokenKind::IntLit(5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("int\nx\n=\n1;").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 4, 4, 4]);
    }

    #[test]
    fn reports_errors() {
        assert!(matches!(lex("\"abc"), Err(Error::Lex { .. })));
        assert!(matches!(lex("'ab'"), Err(Error::Lex { .. })));
        assert!(matches!(lex("$"), Err(Error::Lex { .. })));
        assert!(matches!(lex("/* x"), Err(Error::Lex { .. })));
        assert!(matches!(lex("0x"), Err(Error::Lex { .. })));
    }

    #[test]
    fn null_keyword() {
        assert_eq!(kinds("NULL")[0], TokenKind::Keyword(Keyword::Null));
    }
}
