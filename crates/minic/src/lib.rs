//! A C-subset front end and virtual machine, built as the "compiled
//! language" substrate for the EasyTracker reproduction.
//!
//! The paper's GDB tracker controls real C binaries through GDB. This crate
//! replaces the `gcc + GDB` pair with a self-contained pipeline:
//!
//! 1. [`lexer`] and [`parser`] turn MiniC source into an AST ([`ast`]);
//! 2. [`typecheck`] resolves types, struct layouts and frame layouts;
//! 3. [`codegen`] lowers the program to a flat bytecode ([`bytecode`]);
//! 4. [`vm`] executes the bytecode against a simulated byte-addressable
//!    memory ([`mem`]) with a tracking heap allocator ([`alloc`]), yielding a
//!    stream of debug [`Event`]s (line reached, call, return, store, output,
//!    exit) that a debugger engine can pause on;
//! 5. [`inspect`] converts the paused VM's stack and memory into the
//!    language-agnostic [`state`] representation, following pointers,
//!    classifying heap blocks and flagging invalid pointers.
//!
//! # Language
//!
//! MiniC covers the teaching subset of C the paper's figures use:
//! `int`, `long`, `float`, `double`, `char`, pointers, fixed-size arrays,
//! `struct`s, string literals, globals with constant initializers, full
//! expression and statement grammars (including `for`/`while`/`if`/ternary,
//! compound assignment, pre/post increment), `sizeof`, casts, and the
//! standard allocation functions `malloc`/`calloc`/`realloc`/`free` plus
//! `printf`/`puts`/`putchar`. Deliberate restrictions (diagnosed by the
//! typechecker): no struct-by-value parameters or returns, no variable
//! shadowing, no `goto`, no varargs other than `printf`.
//!
//! # Examples
//!
//! ```
//! use minic::{compile, vm::{Vm, Event}};
//!
//! let program = compile("t.c", "int main() { int x = 21; return x * 2; }")?;
//! let mut vm = Vm::new(&program);
//! let exit = loop {
//!     match vm.step()? {
//!         Event::Exited(code) => break code,
//!         _ => continue,
//!     }
//! };
//! assert_eq!(exit, 42);
//! # Ok::<(), minic::Error>(())
//! ```

pub mod alloc;
pub mod ast;
pub mod bytecode;
pub mod codegen;
pub mod inspect;
pub mod lexer;
pub mod mem;
pub mod parser;
mod sanitizer;
pub mod typecheck;
pub mod types;
pub mod vm;

pub use bytecode::Program;
pub use vm::{Event, Vm};

use std::fmt;

/// Any error produced while compiling or running MiniC code.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexical error: unexpected character, unterminated literal, ...
    Lex {
        /// 1-based source line.
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based source line.
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// Type or semantic error.
    Type {
        /// 1-based source line.
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// Runtime error raised by the VM (invalid memory access, ...).
    Runtime {
        /// 1-based source line of the statement being executed.
        line: u32,
        /// Human-readable description.
        message: String,
    },
}

impl Error {
    /// The 1-based source line the error points at.
    pub fn line(&self) -> u32 {
        match self {
            Error::Lex { line, .. }
            | Error::Parse { line, .. }
            | Error::Type { line, .. }
            | Error::Runtime { line, .. } => *line,
        }
    }

    /// The error message without the location prefix.
    pub fn message(&self) -> &str {
        match self {
            Error::Lex { message, .. }
            | Error::Parse { message, .. }
            | Error::Type { message, .. }
            | Error::Runtime { message, .. } => message,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, line, msg) = match self {
            Error::Lex { line, message } => ("lexical error", line, message),
            Error::Parse { line, message } => ("syntax error", line, message),
            Error::Type { line, message } => ("type error", line, message),
            Error::Runtime { line, message } => ("runtime error", line, message),
        };
        write!(f, "{kind} at line {line}: {msg}")
    }
}

impl std::error::Error for Error {}

/// Compiles MiniC source text to an executable [`Program`].
///
/// `file` is the name recorded in debug info (it appears in every
/// [`state::SourceLocation`] the trackers report).
///
/// # Errors
///
/// Returns the first lexical, syntax or type error encountered.
///
/// # Examples
///
/// ```
/// let program = minic::compile("ok.c", "int main() { return 0; }")?;
/// assert!(program.function("main").is_some());
/// # Ok::<(), minic::Error>(())
/// ```
pub fn compile(file: &str, source: &str) -> Result<Program, Error> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(tokens)?;
    let checked = typecheck::check(&ast)?;
    Ok(codegen::lower(file, source, &checked))
}
