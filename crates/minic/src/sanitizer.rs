//! Runtime shadow state for the VM's sanitizer mode.
//!
//! The static checker in the `analysis` crate reports what *may* go wrong;
//! this module is its runtime counterpart, converting those may-findings
//! into precise traps on the concrete execution path. The VM (with
//! [`crate::vm::Vm::set_sanitizer`] on) consults this state on every load,
//! store and allocation intrinsic:
//!
//! - a shadow init bit per scalar stack slot catches uninitialized reads;
//! - per-slot last-store tracking catches stores overwritten before any
//!   read (the runtime form of a dead store);
//! - the quarantining allocator (see [`crate::alloc`]) keeps freed blocks
//!   and guard zones mapped, so stray heap accesses classify as
//!   use-after-free or out-of-bounds instead of crashing;
//! - live blocks remaining at exit become leak reports anchored at their
//!   allocation site.
//!
//! Traps are *observations, not faults*: the offending operation has
//! already completed benignly when the trap is queued, and the program can
//! be resumed. By design the set of runtime traps on any execution is a
//! subset of the static checker's findings for the same program, with one
//! documented asymmetry: the static checker drops a slot from uninit/dead-
//! store checking if its address escapes *anywhere* in the function
//! (flow-insensitive), while the runtime only knows about escapes that have
//! already happened. Programs that read a slot before its address escapes
//! can therefore trap at runtime without a static finding.

use crate::alloc::Allocator;
use crate::bytecode::FuncMeta;
use crate::mem::{Memory, Segment};
use crate::vm::RtVal;
use state::{Diagnostic, DiagnosticKind};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Shadow bookkeeping for one scalar stack slot.
#[derive(Debug, Clone)]
struct SlotShadow {
    name: String,
    /// Offset of the slot within its frame.
    offset: u64,
    /// Size of the scalar in bytes.
    size: u64,
    /// Whether the slot has been written (parameters start initialized).
    init: bool,
    /// Whether the slot's address has been observed escaping (stored
    /// somewhere or passed to a call/intrinsic). Escaped slots are exempt
    /// from uninit and dead-store checking, mirroring the static checker.
    escaped: bool,
    /// Line of the last store not yet followed by a read, for dead-store
    /// detection. Parameter binding does not count as a store.
    last_store: Option<u32>,
}

/// Shadow state for one activation record.
#[derive(Debug, Clone)]
struct FrameShadow {
    base: u64,
    frame_size: u64,
    function: String,
    slots: Vec<SlotShadow>,
}

/// Where a heap block was allocated, for leak and use-after-free messages.
#[derive(Debug, Clone)]
struct AllocSite {
    line: u32,
    function: String,
}

/// The sanitizer's full shadow state. Owned by the VM when sanitizer mode
/// is on; all methods are called from the VM's exec hooks.
#[derive(Debug, Clone, Default)]
pub(crate) struct Sanitizer {
    frames: Vec<FrameShadow>,
    /// Allocation site per block base address.
    sites: BTreeMap<u64, AllocSite>,
    /// Dedupe set: one trap per (kind, function, line).
    seen: HashSet<(DiagnosticKind, String, u32)>,
    /// Traps queued for delivery (drained one per [`crate::vm::Vm::step`]).
    pending: VecDeque<Diagnostic>,
    /// Total traps raised (post-dedupe).
    traps: u64,
}

impl Sanitizer {
    pub(crate) fn new() -> Self {
        Sanitizer::default()
    }

    /// Number of traps raised so far.
    pub(crate) fn traps(&self) -> u64 {
        self.traps
    }

    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    pub(crate) fn pop_pending(&mut self) -> Option<Diagnostic> {
        self.pending.pop_front()
    }

    /// Registers the shadow frame for a function entry. Parameters are
    /// already bound by the caller and start initialized.
    pub(crate) fn push_frame(&mut self, meta: &FuncMeta, base: u64) {
        let slots = meta
            .locals
            .iter()
            .filter(|l| l.ty.is_scalar())
            .map(|l| SlotShadow {
                name: l.name.clone(),
                offset: l.offset,
                size: crate::bytecode::MemTy::from_type(&l.ty).size(),
                init: l.is_param,
                escaped: false,
                last_store: None,
            })
            .collect();
        self.frames.push(FrameShadow {
            base,
            frame_size: meta.frame_size,
            function: meta.name.clone(),
            slots,
        });
    }

    pub(crate) fn pop_frame(&mut self) {
        self.frames.pop();
    }

    fn report(&mut self, kind: DiagnosticKind, line: u32, function: &str, message: String) {
        if self.seen.insert((kind, function.to_owned(), line)) {
            self.traps += 1;
            self.pending
                .push_back(Diagnostic::new(kind, line, function.to_owned(), message));
        }
    }

    /// The tracked slot exactly matching a scalar access at `addr`, if any.
    /// Looks in the innermost frame whose range contains the address.
    fn slot_at(&mut self, addr: u64, size: u64) -> Option<(usize, usize)> {
        let (fi, frame) = self
            .frames
            .iter()
            .enumerate()
            .rev()
            .find(|(_, f)| addr >= f.base && addr < f.base + f.frame_size)?;
        let si = frame
            .slots
            .iter()
            .position(|s| frame.base + s.offset == addr && s.size == size)?;
        Some((fi, si))
    }

    /// A scalar load from `addr` completed. Checks uninit reads and heap
    /// classification, and marks the slot's pending store as read.
    pub(crate) fn on_read(&mut self, addr: u64, size: u64, alloc: &Allocator, line: u32) {
        if let Some((fi, si)) = self.slot_at(addr, size) {
            let slot = &mut self.frames[fi].slots[si];
            slot.last_store = None;
            if !slot.init && !slot.escaped {
                let name = slot.name.clone();
                let function = self.frames[fi].function.clone();
                self.report(
                    DiagnosticKind::UninitRead,
                    line,
                    &function,
                    format!("`{name}` is read before initialization"),
                );
            }
            return;
        }
        self.check_heap(addr, size, alloc, line, "read");
    }

    /// A scalar store to `addr` completed. Checks dead stores and heap
    /// classification, and marks the slot initialized.
    pub(crate) fn on_write(&mut self, addr: u64, size: u64, alloc: &Allocator, line: u32) {
        if let Some((fi, si)) = self.slot_at(addr, size) {
            let slot = &mut self.frames[fi].slots[si];
            slot.init = true;
            let prev = slot.last_store.replace(line);
            if slot.escaped {
                return;
            }
            if let Some(prev) = prev {
                let name = self.frames[fi].slots[si].name.clone();
                let function = self.frames[fi].function.clone();
                self.report(
                    DiagnosticKind::DeadStore,
                    prev,
                    &function,
                    format!("value stored to `{name}` is overwritten before it is read"),
                );
            }
            return;
        }
        // Untracked destination: conservatively initialize any slot the
        // write overlaps (partial/aliased writes never trap).
        self.touch_overlap(addr, size);
        self.check_heap(addr, size, alloc, line, "write");
    }

    /// A `MemCopy` completed: classify both ranges, conservatively
    /// initialize overlapped slots, never trap on stack effects.
    pub(crate) fn on_memcopy(
        &mut self,
        dst: u64,
        src: u64,
        size: u64,
        alloc: &Allocator,
        line: u32,
    ) {
        self.touch_overlap(dst, size);
        self.check_heap(src, size, alloc, line, "read");
        self.check_heap(dst, size, alloc, line, "write");
    }

    /// Marks every tracked slot overlapping `[addr, addr+size)` as
    /// initialized with no pending store (opaque write).
    fn touch_overlap(&mut self, addr: u64, size: u64) {
        for frame in &mut self.frames {
            if addr >= frame.base + frame.frame_size || addr + size <= frame.base {
                continue;
            }
            for slot in &mut frame.slots {
                let lo = frame.base + slot.offset;
                if addr < lo + slot.size && addr + size > lo {
                    slot.init = true;
                    slot.last_store = None;
                }
            }
        }
    }

    /// A value flowed somewhere opaque (stored, passed as an argument). If
    /// it is a pointer into a tracked stack slot's frame, that slot is
    /// permanently exempted from uninit/dead-store checking.
    pub(crate) fn escape(&mut self, v: RtVal) {
        let RtVal::Ptr(p) = v else { return };
        if Memory::segment_of(p) != Some(Segment::Stack) {
            return;
        }
        for frame in &mut self.frames {
            if p < frame.base || p >= frame.base + frame.frame_size {
                continue;
            }
            for slot in &mut frame.slots {
                let lo = frame.base + slot.offset;
                if p >= lo && p < lo + slot.size {
                    slot.escaped = true;
                    slot.init = true;
                    slot.last_store = None;
                }
            }
        }
    }

    /// Records the allocation site of a fresh block.
    pub(crate) fn record_alloc(&mut self, addr: u64, line: u32) {
        let function = self
            .frames
            .last()
            .map(|f| f.function.clone())
            .unwrap_or_default();
        self.sites.insert(addr, AllocSite { line, function });
    }

    /// `free` was called on an already-freed block (the allocator reported
    /// a double free): raise the trap; the VM treats the free as a no-op.
    pub(crate) fn on_double_free(&mut self, addr: u64, line: u32) {
        let function = self
            .frames
            .last()
            .map(|f| f.function.clone())
            .unwrap_or_default();
        let alloc_line = self.sites.get(&addr).map(|s| s.line).unwrap_or(0);
        self.report(
            DiagnosticKind::DoubleFree,
            line,
            &function,
            format!("block allocated at line {alloc_line} freed twice"),
        );
    }

    /// A pointer argument was passed to an output intrinsic; a pointer into
    /// a freed block is still a use of that block.
    pub(crate) fn check_intrinsic_arg(&mut self, v: RtVal, alloc: &Allocator, line: u32) {
        self.escape(v);
        let RtVal::Ptr(p) = v else { return };
        if Memory::segment_of(p) != Some(Segment::Heap) {
            return;
        }
        if let Some(b) = alloc.block_near(p) {
            if !b.live {
                let function = self
                    .frames
                    .last()
                    .map(|f| f.function.clone())
                    .unwrap_or_default();
                let alloc_line = self.sites.get(&b.addr).map(|s| s.line).unwrap_or(0);
                self.report(
                    DiagnosticKind::UseAfterFree,
                    line,
                    &function,
                    format!("freed block (allocated at line {alloc_line}) passed to output"),
                );
            }
        }
    }

    /// Classifies a heap access against the quarantining allocator:
    /// touching a freed block is use-after-free; touching a guard zone or
    /// running past the end of a live block is out-of-bounds. Accesses the
    /// allocator cannot attribute to any block are left to the plain memory
    /// checks.
    fn check_heap(&mut self, addr: u64, size: u64, alloc: &Allocator, line: u32, what: &str) {
        if Memory::segment_of(addr) != Some(Segment::Heap) {
            return;
        }
        let Some(b) = alloc.block_near(addr) else {
            return;
        };
        let function = self
            .frames
            .last()
            .map(|f| f.function.clone())
            .unwrap_or_default();
        let alloc_line = self.sites.get(&b.addr).map(|s| s.line).unwrap_or(0);
        if !b.live {
            self.report(
                DiagnosticKind::UseAfterFree,
                line,
                &function,
                format!("{what} through pointer into block freed earlier (allocated at line {alloc_line})"),
            );
        } else if addr < b.addr || addr + size > b.addr + b.size {
            let off = addr as i64 - b.addr as i64;
            self.report(
                DiagnosticKind::OutOfBounds,
                line,
                &function,
                format!(
                    "{what} at byte offset {off} of a {}-byte block (allocated at line {alloc_line})",
                    b.size
                ),
            );
        }
    }

    /// Program exit: every live block that was allocated under the
    /// sanitizer leaks, reported at its allocation site.
    pub(crate) fn leak_check(&mut self, alloc: &Allocator) {
        let leaks: Vec<(u32, String, u64)> = alloc
            .live_blocks()
            .filter_map(|b| {
                self.sites
                    .get(&b.addr)
                    .map(|s| (s.line, s.function.clone(), b.size))
            })
            .collect();
        for (line, function, size) in leaks {
            self.report(
                DiagnosticKind::Leak,
                line,
                &function,
                format!("{size}-byte heap block allocated here is never freed"),
            );
        }
    }
}
