//! The MiniC virtual machine.
//!
//! [`Vm::step`] runs the program until the next *debug event*: a source line
//! is reached, a function is entered or about to return, memory is written
//! (when store events are enabled), output is produced, or the program
//! exits. A debugger engine drives the VM by looping on `step` and deciding
//! at each event whether to pause — exactly the role GDB plays for the
//! paper's tracker.
//!
//! Calls and returns are *two-phase*: the `Call` event fires after the
//! callee frame exists and arguments are bound (the paper's
//! `break_before_func` guarantee), and the `Return` event fires while the
//! returning frame is still intact so locals remain inspectable (the
//! paper's `retq`-breakpoint trick).

use crate::alloc::{AllocError, Allocator};
use crate::ast::BinOp;
use crate::bytecode::{MemTy, Op, Program};
use crate::mem::{Memory, GLOBAL_BASE, STACK_BASE, STACK_TOP};
use crate::sanitizer::Sanitizer;
use crate::typecheck::Intrinsic;
use crate::Error;
use state::Diagnostic;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// A tagged runtime scalar on the VM's operand stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtVal {
    /// Integer of any MiniC integer type (held sign-extended in 64 bits).
    Int(i64),
    /// Float of either precision (held as `f64`).
    Float(f64),
    /// Pointer.
    Ptr(u64),
}

impl RtVal {
    /// Whether the value is zero/null in a boolean context.
    pub fn is_zero(&self) -> bool {
        match self {
            RtVal::Int(v) => *v == 0,
            RtVal::Float(v) => *v == 0.0,
            RtVal::Ptr(p) => *p == 0,
        }
    }

    /// Raw 64-bit payload (floats by bit pattern).
    pub fn bits(&self) -> u64 {
        match self {
            RtVal::Int(v) => *v as u64,
            RtVal::Float(v) => v.to_bits(),
            RtVal::Ptr(p) => *p,
        }
    }
}

impl fmt::Display for RtVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtVal::Int(v) => write!(f, "{v}"),
            RtVal::Float(v) => write!(f, "{v}"),
            RtVal::Ptr(0) => write!(f, "NULL"),
            RtVal::Ptr(p) => write!(f, "{p:#x}"),
        }
    }
}

/// A debug event produced by [`Vm::step`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Execution reached the start of a source line.
    Line(u32),
    /// A function was entered; its frame exists and arguments are bound.
    Call {
        /// Index into [`Program::functions`].
        function: usize,
        /// 0-based call depth (`main` is 0).
        depth: u32,
    },
    /// A function is about to return; its frame is still inspectable.
    Return {
        /// Index into [`Program::functions`].
        function: usize,
        /// 0-based call depth of the returning frame.
        depth: u32,
        /// The value being returned, if any.
        value: Option<RtVal>,
    },
    /// Memory was written (only when [`Vm::set_store_events`] is on).
    Store {
        /// First written address.
        addr: u64,
        /// Number of bytes written.
        size: u64,
    },
    /// The program printed something.
    Output(String),
    /// The sanitizer observed a memory-safety violation (only in sanitizer
    /// mode, see [`Vm::set_sanitizer`]). The offending operation already
    /// completed benignly; the program remains alive and resumable.
    SanitizerTrap(Diagnostic),
    /// The program terminated with this exit code.
    Exited(i64),
}

/// One live activation record.
#[derive(Debug, Clone, Copy)]
pub struct FrameInfo {
    /// Index into [`Program::functions`].
    pub function: usize,
    /// Base address of the frame in the stack segment.
    pub base: u64,
    /// Current source line of this frame.
    pub line: u32,
    /// Saved return address (code index), 0 for `main`.
    pub return_pc: usize,
    /// Operand-stack height at frame creation (unwinding truncates to it).
    stack_mark: usize,
}

/// The MiniC virtual machine. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Vm {
    program: Arc<Program>,
    mem: Memory,
    alloc: Allocator,
    frames: Vec<FrameInfo>,
    stack: Vec<RtVal>,
    pc: usize,
    pending_return: bool,
    store_events: bool,
    output: String,
    exited: Option<i64>,
    ops_executed: u64,
    /// Hard cap on total executed ops; `step` errors once exceeded. Unlike
    /// the engine's fuel slices (denominated in VM *events*), this bounds
    /// raw ops, so it also terminates event-free loops — which is what the
    /// verifier fuzz needs when executing arbitrary accepted mutants.
    op_budget: Option<u64>,
    /// Shadow state when sanitizer mode is on (see [`Vm::set_sanitizer`]).
    san: Option<Box<Sanitizer>>,
    /// Events displaced by a sanitizer trap, delivered on later steps.
    san_deferred: VecDeque<Event>,
    /// In-engine profiler when profiling is armed (see [`Vm::set_profile`]).
    prof: Option<Box<obs::Profiler>>,
    /// Function index → profiler intern id, filled when profiling is armed.
    prof_ids: Vec<u32>,
}

impl Vm {
    /// Creates a VM ready to execute `program` (paused before anything has
    /// run; the first events will come from `main`).
    pub fn new(program: &Program) -> Self {
        Vm::from_arc(Arc::new(program.clone()))
    }

    /// Creates a VM sharing an already-reference-counted program.
    pub fn from_arc(program: Arc<Program>) -> Self {
        let mut mem = Memory::new(program.global_image.len() as u64);
        if !program.global_image.is_empty() {
            mem.write_bytes(GLOBAL_BASE, &program.global_image)
                .expect("globals segment sized from the image");
        }
        let main = &program.functions[program.main_index];
        let base = align_down(STACK_TOP - main.frame_size, 16);
        let pc = main.entry;
        let frames = vec![FrameInfo {
            function: program.main_index,
            base,
            line: main.line,
            return_pc: 0,
            stack_mark: 0,
        }];
        Vm {
            program,
            mem,
            alloc: Allocator::new(),
            frames,
            stack: Vec::with_capacity(64),
            pc,
            pending_return: false,
            store_events: false,
            output: String::new(),
            exited: None,
            ops_executed: 0,
            op_budget: None,
            san: None,
            san_deferred: VecDeque::new(),
            prof: None,
            prof_ids: Vec::new(),
        }
    }

    /// Enables or disables sanitizer mode: the allocator adds guard zones
    /// and quarantines freed blocks, and every load/store/allocation is
    /// checked against shadow state. Violations surface as
    /// [`Event::SanitizerTrap`] instead of errors — the program stays alive.
    /// Must be called before the first [`Vm::step`]; toggling mid-run is
    /// unsupported.
    pub fn set_sanitizer(&mut self, on: bool) {
        if on == self.san.is_some() {
            return;
        }
        if on {
            self.alloc.set_sanitize(true);
            let mut s = Box::new(Sanitizer::new());
            for fi in &self.frames {
                s.push_frame(&self.program.functions[fi.function], fi.base);
            }
            self.san = Some(s);
        } else {
            self.san = None;
            self.alloc.set_sanitize(false);
        }
    }

    /// Whether sanitizer mode is on.
    pub fn sanitizer_enabled(&self) -> bool {
        self.san.is_some()
    }

    /// Sanitizer traps raised so far (0 with the sanitizer off).
    pub fn sanitizer_traps(&self) -> u64 {
        self.san.as_deref().map(Sanitizer::traps).unwrap_or(0)
    }

    /// Arms or disarms the in-engine profiler. Counting mode attributes
    /// every executed op, line marker, call, and allocation exactly;
    /// sampling mode attributes ops on a seeded-deterministic interval
    /// clock driven by the op counter, so the same mode and period always
    /// produce the same profile. Like the sanitizer, arm before the first
    /// [`Vm::step`]; re-arming replaces the collected profile.
    pub fn set_profile(&mut self, mode: obs::ProfileMode, period: u64) {
        if mode == obs::ProfileMode::Off {
            self.prof = None;
            self.prof_ids.clear();
            return;
        }
        let mut p = Box::new(obs::Profiler::new(mode, period));
        self.prof_ids = self
            .program
            .functions
            .iter()
            .map(|f| p.intern(&f.name))
            .collect();
        // Frames alive at arm time (at least `main`, pushed by the
        // constructor, which never goes through `do_call`) enter the
        // profile now, mirroring the sanitizer's shadow-stack seeding.
        for fi in &self.frames {
            p.enter(self.prof_ids[fi.function]);
        }
        self.prof = Some(p);
    }

    /// Whether profiling is armed.
    pub fn profile_enabled(&self) -> bool {
        self.prof.is_some()
    }

    /// Snapshot of the collected profile (empty when profiling is off).
    pub fn profile_report(&self) -> obs::ProfileReport {
        self.prof
            .as_deref()
            .map(obs::Profiler::report)
            .unwrap_or_default()
    }

    /// Enables or disables [`Event::Store`] reporting. The engine turns this
    /// on while watchpoints exist — reproducing the paper's observation that
    /// watchpoints make execution much slower.
    pub fn set_store_events(&mut self, on: bool) {
        self.store_events = on;
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Live frames, outermost (`main`) first.
    pub fn frames(&self) -> &[FrameInfo] {
        &self.frames
    }

    /// The innermost frame.
    ///
    /// # Panics
    ///
    /// Panics when called after the program exited (no frames remain).
    pub fn current_frame(&self) -> &FrameInfo {
        self.frames.last().expect("program still running")
    }

    /// The memory, for inspection.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The allocator, for heap-block classification.
    pub fn allocator(&self) -> &Allocator {
        &self.alloc
    }

    /// Everything printed so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The exit code, once the program terminated.
    pub fn exit_code(&self) -> Option<i64> {
        self.exited
    }

    /// Total bytecode operations executed (bench metric).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Caps total executed ops: once `ops_executed` would exceed the
    /// budget, `step` returns a runtime error and the VM is dead. `None`
    /// (the default) removes the cap.
    pub fn set_op_budget(&mut self, budget: Option<u64>) {
        self.op_budget = budget;
    }

    /// Current stack pointer (base of the innermost frame); exposed as a
    /// pseudo-register by the low-level inspection API.
    pub fn stack_pointer(&self) -> u64 {
        self.frames.last().map(|f| f.base).unwrap_or(STACK_TOP)
    }

    fn err(&self, message: impl Into<String>) -> Error {
        let line = self.frames.last().map(|f| f.line).unwrap_or(0);
        Error::Runtime {
            line,
            message: message.into(),
        }
    }

    fn pop(&mut self) -> RtVal {
        self.stack.pop().expect("codegen never underflows")
    }

    fn pop_int(&mut self) -> i64 {
        match self.pop() {
            RtVal::Int(v) => v,
            other => unreachable!("expected integer on stack, found {other:?}"),
        }
    }

    fn pop_float(&mut self) -> f64 {
        match self.pop() {
            RtVal::Float(v) => v,
            other => unreachable!("expected float on stack, found {other:?}"),
        }
    }

    fn pop_ptr(&mut self) -> u64 {
        match self.pop() {
            RtVal::Ptr(p) => p,
            // Integer zero can flow into pointer positions through `p = 0`
            // style conversions; accept it as NULL.
            RtVal::Int(v) => v as u64,
            other => unreachable!("expected pointer on stack, found {other:?}"),
        }
    }

    /// Runs until the next debug event.
    ///
    /// After [`Event::Exited`] the VM is finished; further calls keep
    /// returning the same event.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] for invalid memory accesses, allocation
    /// misuse, division by zero or stack overflow; the VM is dead
    /// afterwards.
    pub fn step(&mut self) -> Result<Event, Error> {
        // Sanitizer traps queued by earlier ops drain first, then any event
        // they displaced — so traps are observed before the triggering op's
        // own event, and before the final `Exited`.
        if let Some(d) = self.san.as_deref_mut().and_then(Sanitizer::pop_pending) {
            return Ok(Event::SanitizerTrap(d));
        }
        if let Some(ev) = self.san_deferred.pop_front() {
            return Ok(ev);
        }
        if let Some(code) = self.exited {
            return Ok(Event::Exited(code));
        }
        if self.pending_return {
            if let Some(ev) = self.finish_return()? {
                return Ok(self.gate(ev));
            }
        }
        loop {
            let op = self.program.code[self.pc];
            self.ops_executed += 1;
            if self.op_budget.is_some_and(|b| self.ops_executed > b) {
                return Err(self.err("op budget exhausted"));
            }
            if let Some(p) = self.prof.as_deref_mut() {
                p.tick();
            }
            if let Some(event) = self.exec(op)? {
                return Ok(self.gate(event));
            }
            if self.san.as_deref().is_some_and(Sanitizer::has_pending) {
                let d = self
                    .san
                    .as_deref_mut()
                    .and_then(Sanitizer::pop_pending)
                    .expect("pending trap just observed");
                return Ok(Event::SanitizerTrap(d));
            }
        }
    }

    /// Delivers `ev`, unless a sanitizer trap is pending — then the trap
    /// goes first and `ev` is deferred to a later step.
    fn gate(&mut self, ev: Event) -> Event {
        match self.san.as_deref_mut().and_then(Sanitizer::pop_pending) {
            Some(d) => {
                self.san_deferred.push_back(ev);
                Event::SanitizerTrap(d)
            }
            None => ev,
        }
    }

    /// Runs the program to completion, ignoring all intermediate events.
    ///
    /// # Errors
    ///
    /// Propagates the first runtime error.
    pub fn run_to_completion(&mut self) -> Result<i64, Error> {
        loop {
            if let Event::Exited(code) = self.step()? {
                return Ok(code);
            }
        }
    }

    /// Second phase of a return: unwind the frame.
    fn finish_return(&mut self) -> Result<Option<Event>, Error> {
        self.pending_return = false;
        let has_value = matches!(self.program.code[self.pc], Op::Ret(true));
        let value = if has_value { Some(self.pop()) } else { None };
        let frame = self.frames.pop().expect("returning frame exists");
        self.stack.truncate(frame.stack_mark);
        if let Some(s) = self.san.as_deref_mut() {
            s.pop_frame();
            if self.frames.is_empty() {
                s.leak_check(&self.alloc);
            }
        }
        if let Some(p) = self.prof.as_deref_mut() {
            p.exit();
        }
        if self.frames.is_empty() {
            let code = match value {
                Some(RtVal::Int(v)) => v,
                Some(RtVal::Ptr(p)) => p as i64,
                Some(RtVal::Float(f)) => f as i64,
                None => 0,
            };
            self.exited = Some(code);
            return Ok(Some(Event::Exited(code)));
        }
        if let Some(v) = value {
            self.stack.push(v);
        }
        self.pc = frame.return_pc;
        Ok(None)
    }

    fn exec(&mut self, op: Op) -> Result<Option<Event>, Error> {
        use Op::*;
        // Debug cross-check against the shared stack-effect table: every
        // op that completes the match (no early event return) must change
        // the stack by exactly the delta `Op::stack_effect` declares.
        #[cfg(debug_assertions)]
        let declared = op.stack_effect().map(|fx| (self.stack.len(), fx.delta()));
        match op {
            Line(n) => {
                self.frames.last_mut().expect("running frame").line = n;
                if let Some(p) = self.prof.as_deref_mut() {
                    p.line(n);
                }
                self.pc += 1;
                return Ok(Some(Event::Line(n)));
            }
            PushI(v) => self.stack.push(RtVal::Int(v)),
            PushF(v) => self.stack.push(RtVal::Float(v)),
            PushP(p) => self.stack.push(RtVal::Ptr(p)),
            LocalAddr(off) => {
                let base = self.current_frame().base;
                self.stack.push(RtVal::Ptr(base + off));
            }
            Load(mt) => {
                let addr = self.pop_ptr();
                let v = self.load(addr, mt)?;
                self.stack.push(v);
                self.san_read(addr, mt.size());
            }
            Store(mt) => {
                let value = self.pop();
                let addr = self.pop_ptr();
                self.store(addr, mt, value)?;
                self.stack.push(value);
                self.san_escape(value);
                self.san_write(addr, mt.size());
                if self.store_events {
                    self.pc += 1;
                    return Ok(Some(Event::Store {
                        addr,
                        size: mt.size(),
                    }));
                }
            }
            MemCopy(size) => {
                let src = self.pop_ptr();
                let dst = self.pop_ptr();
                self.mem
                    .copy(dst, src, size)
                    .map_err(|e| self.err(e.to_string()))?;
                if self.san.is_some() {
                    let line = self.cur_line();
                    let san = self.san.as_deref_mut().expect("checked above");
                    san.on_memcopy(dst, src, size, &self.alloc, line);
                }
                if self.store_events {
                    self.pc += 1;
                    return Ok(Some(Event::Store { addr: dst, size }));
                }
            }
            IArith(binop) => {
                let b = self.pop_int();
                let a = self.pop_int();
                let v = self.iarith(binop, a, b)?;
                self.stack.push(RtVal::Int(v));
            }
            FArith(binop) => {
                let b = self.pop_float();
                let a = self.pop_float();
                let v = match binop {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    other => unreachable!("float arith {other:?}"),
                };
                self.stack.push(RtVal::Float(v));
            }
            ICmp(binop) => {
                let b = self.pop();
                let a = self.pop();
                let r = match (a, b) {
                    (RtVal::Ptr(x), RtVal::Ptr(y)) => cmp(binop, &x, &y),
                    (x, y) => cmp(binop, &(x.bits() as i64), &(y.bits() as i64)),
                };
                self.stack.push(RtVal::Int(r as i64));
            }
            FCmp(binop) => {
                let b = self.pop_float();
                let a = self.pop_float();
                self.stack.push(RtVal::Int(cmp(binop, &a, &b) as i64));
            }
            Neg(true) => {
                let v = self.pop_float();
                self.stack.push(RtVal::Float(-v));
            }
            Neg(false) => {
                let v = self.pop_int();
                self.stack.push(RtVal::Int(v.wrapping_neg()));
            }
            Not => {
                let v = self.pop();
                self.stack.push(RtVal::Int(v.is_zero() as i64));
            }
            BitNot => {
                let v = self.pop_int();
                self.stack.push(RtVal::Int(!v));
            }
            I2F => {
                let v = self.pop_int();
                self.stack.push(RtVal::Float(v as f64));
            }
            F2I => {
                let v = self.pop_float();
                let v = if v.is_nan() { 0 } else { v as i64 };
                self.stack.push(RtVal::Int(v));
            }
            TruncI(mt) => {
                let v = self.pop_int();
                let t = match mt {
                    MemTy::I8 => v as i8 as i64,
                    MemTy::I32 => v as i32 as i64,
                    MemTy::I64 => v,
                    other => unreachable!("integer truncation to {other:?}"),
                };
                self.stack.push(RtVal::Int(t));
            }
            F2F32 => {
                let v = self.pop_float();
                self.stack.push(RtVal::Float(v as f32 as f64));
            }
            I2P => {
                let v = self.pop_int();
                self.stack.push(RtVal::Ptr(v as u64));
            }
            P2I => {
                let p = self.pop_ptr();
                self.stack.push(RtVal::Int(p as i64));
            }
            PtrAdd(elem) => {
                let idx = self.pop_int();
                let p = self.pop_ptr();
                self.stack.push(RtVal::Ptr(
                    p.wrapping_add_signed(idx.wrapping_mul(elem as i64)),
                ));
            }
            PtrSub(elem) => {
                let idx = self.pop_int();
                let p = self.pop_ptr();
                self.stack.push(RtVal::Ptr(
                    p.wrapping_sub((idx.wrapping_mul(elem as i64)) as u64),
                ));
            }
            PtrDiff(elem) => {
                let rhs = self.pop_ptr();
                let lhs = self.pop_ptr();
                let diff = (lhs as i64).wrapping_sub(rhs as i64) / elem as i64;
                self.stack.push(RtVal::Int(diff));
            }
            Jump(t) => {
                self.pc = t;
                return Ok(None);
            }
            JumpIfZero(t) => {
                let v = self.pop();
                if v.is_zero() {
                    self.pc = t;
                    return Ok(None);
                }
            }
            JumpIfNotZero(t) => {
                let v = self.pop();
                if !v.is_zero() {
                    self.pc = t;
                    return Ok(None);
                }
            }
            Dup => {
                let v = *self.stack.last().expect("dup on non-empty stack");
                self.stack.push(v);
            }
            Pop => {
                self.pop();
            }
            Call(idx) => {
                return self.do_call(idx).map(Some);
            }
            Ret(_) => {
                // Phase one: report the imminent return with the frame
                // intact; `finish_return` unwinds on the next step.
                self.pending_return = true;
                let frame = self.current_frame();
                let has_value = matches!(op, Ret(true));
                let value = if has_value {
                    Some(*self.stack.last().expect("return value on stack"))
                } else {
                    None
                };
                return Ok(Some(Event::Return {
                    function: frame.function,
                    depth: (self.frames.len() - 1) as u32,
                    value,
                }));
            }
            IncDec {
                memty,
                delta,
                prefix,
                ptr_step,
            } => {
                let addr = self.pop_ptr();
                let old = self.load(addr, memty)?;
                let new = match (old, ptr_step) {
                    (RtVal::Ptr(p), Some(step)) => {
                        RtVal::Ptr(p.wrapping_add_signed(delta * step as i64))
                    }
                    (RtVal::Int(v), None) => RtVal::Int(v.wrapping_add(delta)),
                    (RtVal::Float(v), None) => RtVal::Float(v + delta as f64),
                    other => unreachable!("inc/dec on {other:?}"),
                };
                self.store(addr, memty, new)?;
                self.stack.push(if prefix { new } else { old });
                // Read-then-write for the shadow state: the read clears any
                // pending dead-store candidate, the write starts a new one.
                self.san_read(addr, memty.size());
                self.san_escape(new);
                self.san_write(addr, memty.size());
                if self.store_events {
                    self.pc += 1;
                    return Ok(Some(Event::Store {
                        addr,
                        size: memty.size(),
                    }));
                }
            }
            Intrinsic(intr, argc) => {
                return self.do_intrinsic(intr, argc as usize);
            }
            LoadLocal(mt, off) => {
                let base = self.current_frame().base;
                let addr = base + off;
                let v = self.load(addr, mt)?;
                self.stack.push(v);
                self.san_read(addr, mt.size());
            }
            IArithImm(binop, imm) => {
                let a = self.pop_int();
                let v = self.iarith(binop, a, imm)?;
                self.stack.push(RtVal::Int(v));
            }
            ICmpImm(binop, imm) => {
                let a = self.pop();
                let r = cmp(binop, &(a.bits() as i64), &imm);
                self.stack.push(RtVal::Int(r as i64));
            }
            Nop => {}
        }
        #[cfg(debug_assertions)]
        if let Some((before, delta)) = declared {
            debug_assert_eq!(
                self.stack.len() as i64,
                before as i64 + delta,
                "stack-effect table out of sync for {op:?}"
            );
        }
        self.pc += 1;
        Ok(None)
    }

    fn iarith(&self, op: BinOp, a: i64, b: i64) -> Result<i64, Error> {
        Ok(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(self.err("division by zero"));
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(self.err("remainder by zero"));
                }
                a.wrapping_rem(b)
            }
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::BitAnd => a & b,
            BinOp::BitOr => a | b,
            BinOp::BitXor => a ^ b,
            other => unreachable!("integer arith {other:?}"),
        })
    }

    fn load(&self, addr: u64, mt: MemTy) -> Result<RtVal, Error> {
        let v = match mt {
            MemTy::I8 => RtVal::Int(
                self.mem
                    .read_int(addr, 1)
                    .map_err(|e| self.err(e.to_string()))?,
            ),
            MemTy::I32 => RtVal::Int(
                self.mem
                    .read_int(addr, 4)
                    .map_err(|e| self.err(e.to_string()))?,
            ),
            MemTy::I64 => RtVal::Int(
                self.mem
                    .read_int(addr, 8)
                    .map_err(|e| self.err(e.to_string()))?,
            ),
            MemTy::F32 => RtVal::Float(
                self.mem
                    .read_float(addr, 4)
                    .map_err(|e| self.err(e.to_string()))?,
            ),
            MemTy::F64 => RtVal::Float(
                self.mem
                    .read_float(addr, 8)
                    .map_err(|e| self.err(e.to_string()))?,
            ),
            MemTy::P => RtVal::Ptr(
                self.mem
                    .read_ptr(addr)
                    .map_err(|e| self.err(e.to_string()))?,
            ),
        };
        Ok(v)
    }

    fn store(&mut self, addr: u64, mt: MemTy, value: RtVal) -> Result<(), Error> {
        let r = match (mt, value) {
            (MemTy::I8, RtVal::Int(v)) => self.mem.write_int(addr, 1, v),
            (MemTy::I32, RtVal::Int(v)) => self.mem.write_int(addr, 4, v),
            (MemTy::I64, RtVal::Int(v)) => self.mem.write_int(addr, 8, v),
            (MemTy::F32, RtVal::Float(v)) => self.mem.write_float(addr, 4, v),
            (MemTy::F64, RtVal::Float(v)) => self.mem.write_float(addr, 8, v),
            (MemTy::P, RtVal::Ptr(p)) => self.mem.write_ptr(addr, p),
            // Integer zero flowing into a pointer slot (NULL conversions).
            (MemTy::P, RtVal::Int(v)) => self.mem.write_ptr(addr, v as u64),
            (mt, v) => unreachable!("store type confusion {mt:?} <- {v:?}"),
        };
        r.map_err(|e| self.err(e.to_string()))
    }

    fn cur_line(&self) -> u32 {
        self.frames.last().map(|f| f.line).unwrap_or(0)
    }

    fn san_read(&mut self, addr: u64, size: u64) {
        if self.san.is_some() {
            let line = self.cur_line();
            let san = self.san.as_deref_mut().expect("checked above");
            san.on_read(addr, size, &self.alloc, line);
        }
    }

    fn san_write(&mut self, addr: u64, size: u64) {
        if self.san.is_some() {
            let line = self.cur_line();
            let san = self.san.as_deref_mut().expect("checked above");
            san.on_write(addr, size, &self.alloc, line);
        }
    }

    fn san_escape(&mut self, v: RtVal) {
        if let Some(s) = self.san.as_deref_mut() {
            s.escape(v);
        }
    }

    fn san_record_alloc(&mut self, addr: u64) {
        if self.san.is_some() {
            let line = self.cur_line();
            let san = self.san.as_deref_mut().expect("checked above");
            san.record_alloc(addr, line);
        }
    }

    fn prof_alloc(&mut self, bytes: u64) {
        if self.prof.is_some() {
            let line = self.cur_line();
            let p = self.prof.as_deref_mut().expect("checked above");
            p.alloc(line, bytes);
        }
    }

    fn san_check_output_args(&mut self, args: &[RtVal]) {
        if self.san.is_some() {
            let line = self.cur_line();
            let san = self.san.as_deref_mut().expect("checked above");
            for &a in args {
                san.check_intrinsic_arg(a, &self.alloc, line);
            }
        }
    }

    fn do_call(&mut self, idx: usize) -> Result<Event, Error> {
        let callee = &self.program.functions[idx];
        let cur_base = self.current_frame().base;
        let base = align_down(cur_base - callee.frame_size, 16);
        if base < STACK_BASE {
            return Err(self.err(format!("stack overflow calling `{}`", callee.name)));
        }
        // Bind arguments right-to-left into the first nparams slots.
        let nparams = callee.nparams;
        let entry = callee.entry;
        let line = callee.line;
        for i in (0..nparams).rev() {
            let slot = &self.program.functions[idx].locals[i];
            let mt = MemTy::from_type(&slot.ty);
            let offset = slot.offset;
            let v = self.pop();
            // A stack pointer passed as an argument escapes its slot.
            self.san_escape(v);
            self.store(base + offset, mt, v)?;
        }
        self.frames.push(FrameInfo {
            function: idx,
            base,
            line,
            return_pc: self.pc + 1,
            stack_mark: self.stack.len(),
        });
        if let Some(s) = self.san.as_deref_mut() {
            s.push_frame(&self.program.functions[idx], base);
        }
        if let Some(p) = self.prof.as_deref_mut() {
            p.enter(self.prof_ids[idx]);
        }
        self.pc = entry;
        Ok(Event::Call {
            function: idx,
            depth: (self.frames.len() - 1) as u32,
        })
    }

    fn do_intrinsic(&mut self, intr: Intrinsic, argc: usize) -> Result<Option<Event>, Error> {
        let mut args = Vec::with_capacity(argc);
        for _ in 0..argc {
            args.push(self.pop());
        }
        args.reverse();
        let event = match intr {
            Intrinsic::Malloc => {
                let size = int_arg(&args[0]);
                let p = self
                    .alloc
                    .malloc(&mut self.mem, size)
                    .map_err(|e| self.err(e.to_string()))?;
                self.san_record_alloc(p);
                self.prof_alloc(size);
                self.stack.push(RtVal::Ptr(p));
                None
            }
            Intrinsic::Calloc => {
                let (n, sz) = (int_arg(&args[0]), int_arg(&args[1]));
                let p = self
                    .alloc
                    .calloc(&mut self.mem, n, sz)
                    .map_err(|e| self.err(e.to_string()))?;
                self.san_record_alloc(p);
                self.prof_alloc(n.saturating_mul(sz));
                self.stack.push(RtVal::Ptr(p));
                None
            }
            Intrinsic::Realloc => {
                let ptr = ptr_arg(&args[0]);
                let size = int_arg(&args[1]);
                let p = self
                    .alloc
                    .realloc(&mut self.mem, ptr, size)
                    .map_err(|e| self.err(e.to_string()))?;
                self.san_record_alloc(p);
                self.prof_alloc(size);
                self.stack.push(RtVal::Ptr(p));
                None
            }
            Intrinsic::Free => {
                let ptr = ptr_arg(&args[0]);
                match self.alloc.free(ptr) {
                    Ok(()) => {}
                    // In sanitizer mode a double free is a trap, not a VM
                    // error: the free is a no-op and the program continues.
                    Err(AllocError::DoubleFree { addr }) if self.san.is_some() => {
                        let line = self.cur_line();
                        let san = self.san.as_deref_mut().expect("checked above");
                        san.on_double_free(addr, line);
                    }
                    Err(e) => return Err(self.err(e.to_string())),
                }
                None
            }
            Intrinsic::Printf => {
                self.san_check_output_args(&args);
                let fmt_ptr = ptr_arg(&args[0]);
                let fmt = self
                    .mem
                    .read_cstring(fmt_ptr, 64 * 1024)
                    .map_err(|e| self.err(e.to_string()))?;
                let text = self.format_printf(&fmt, &args[1..])?;
                self.stack.push(RtVal::Int(text.len() as i64));
                self.output.push_str(&text);
                Some(Event::Output(text))
            }
            Intrinsic::Puts => {
                self.san_check_output_args(&args);
                let ptr = ptr_arg(&args[0]);
                let mut s = self
                    .mem
                    .read_cstring(ptr, 64 * 1024)
                    .map_err(|e| self.err(e.to_string()))?;
                s.push('\n');
                self.stack.push(RtVal::Int(s.len() as i64));
                self.output.push_str(&s);
                Some(Event::Output(s))
            }
            Intrinsic::Putchar => {
                let c = int_arg(&args[0]) as i64;
                let ch = char::from_u32((c as u32) & 0xff).unwrap_or('\u{fffd}');
                self.stack.push(RtVal::Int(c));
                self.output.push(ch);
                Some(Event::Output(ch.to_string()))
            }
        };
        self.pc += 1;
        Ok(event)
    }

    /// Minimal printf: `%d %i %ld %li %u %lu %c %s %f %lf %g %x %p %%`.
    /// Unknown directives are copied through literally.
    fn format_printf(&self, fmt: &str, args: &[RtVal]) -> Result<String, Error> {
        let mut out = String::new();
        let mut it = fmt.chars().peekable();
        let mut next_arg = args.iter();
        while let Some(c) = it.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            // Skip length modifiers.
            let mut spec = it.next().unwrap_or('%');
            while spec == 'l' {
                spec = it.next().unwrap_or('%');
            }
            if spec == '%' {
                out.push('%');
                continue;
            }
            let Some(arg) = next_arg.next() else {
                out.push('%');
                out.push(spec);
                continue;
            };
            match spec {
                'd' | 'i' => out.push_str(&int_of(arg).to_string()),
                'u' => out.push_str(&(int_of(arg) as u64).to_string()),
                'x' => out.push_str(&format!("{:x}", int_of(arg))),
                'c' => {
                    let code = (int_of(arg) as u32) & 0xff;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                'f' => out.push_str(&format!("{:.6}", float_of(arg))),
                'g' => out.push_str(&format!("{}", float_of(arg))),
                's' => {
                    let p = ptr_arg(arg);
                    let s = self
                        .mem
                        .read_cstring(p, 64 * 1024)
                        .map_err(|e| self.err(e.to_string()))?;
                    out.push_str(&s);
                }
                'p' => match arg {
                    RtVal::Ptr(0) => out.push_str("(nil)"),
                    other => out.push_str(&format!("{:#x}", other.bits())),
                },
                other => {
                    out.push('%');
                    out.push(other);
                }
            }
        }
        Ok(out)
    }
}

fn align_down(v: u64, align: u64) -> u64 {
    v / align * align
}

fn int_arg(v: &RtVal) -> u64 {
    match v {
        RtVal::Int(i) => *i as u64,
        RtVal::Ptr(p) => *p,
        RtVal::Float(f) => *f as u64,
    }
}

fn ptr_arg(v: &RtVal) -> u64 {
    match v {
        RtVal::Ptr(p) => *p,
        RtVal::Int(i) => *i as u64,
        RtVal::Float(_) => 0,
    }
}

fn int_of(v: &RtVal) -> i64 {
    match v {
        RtVal::Int(i) => *i,
        RtVal::Ptr(p) => *p as i64,
        RtVal::Float(f) => *f as i64,
    }
}

fn float_of(v: &RtVal) -> f64 {
    match v {
        RtVal::Float(f) => *f,
        RtVal::Int(i) => *i as f64,
        RtVal::Ptr(p) => *p as f64,
    }
}

fn cmp<T: PartialOrd>(op: BinOp, a: &T, b: &T) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        other => unreachable!("comparison {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn run(src: &str) -> i64 {
        let p = compile("t.c", src).unwrap();
        Vm::new(&p).run_to_completion().unwrap()
    }

    fn run_output(src: &str) -> (i64, String) {
        let p = compile("t.c", src).unwrap();
        let mut vm = Vm::new(&p);
        let code = vm.run_to_completion().unwrap();
        (code, vm.output().to_owned())
    }

    #[test]
    fn arithmetic_and_locals() {
        assert_eq!(run("int main() { int x = 21; return x * 2; }"), 42);
        assert_eq!(run("int main() { return 7 % 3 + (10 - 4) / 2; }"), 4);
        assert_eq!(run("int main() { return 1 << 5 | 3; }"), 35);
        assert_eq!(run("int main() { return -(-5); }"), 5);
        assert_eq!(run("int main() { return ~0 & 255; }"), 255);
    }

    #[test]
    fn float_arithmetic() {
        assert_eq!(
            run("int main() { double d = 2.5; return (int)(d * 4.0); }"),
            10
        );
        assert_eq!(
            run("int main() { float f = 1.5f; return (int)(f + 2.5); }"),
            4
        );
        assert_eq!(run("int main() { return (int)(7.9); }"), 7);
        assert_eq!(run("int main() { return 3 < 2.5; }"), 0);
    }

    #[test]
    fn char_truncation() {
        assert_eq!(
            run("int main() { char c = 200; return c; }"),
            200i64 as i8 as i64
        );
        assert_eq!(run("int main() { char c = 'A'; return c + 1; }"), 66);
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            run("int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }"),
            55
        );
        assert_eq!(
            run("int main() { int i = 0; while (i < 100) { i++; if (i == 42) break; } return i; }"),
            42
        );
        assert_eq!(
            run("int main() { int s = 0; for (int i = 0; i < 10; i++) { \
                 if (i % 2) continue; s += i; } return s; }"),
            20
        );
        assert_eq!(run("int main() { return 1 ? 10 : 20; }"), 10);
        assert_eq!(
            run("int main() { int x = 5; if (x > 3) return 1; else return 2; }"),
            1
        );
    }

    #[test]
    fn short_circuit_semantics() {
        // The second operand must not run (it would divide by zero).
        assert_eq!(
            run("int main() { int x = 0; return x != 0 && 10 / x > 1; }"),
            0
        );
        assert_eq!(
            run("int main() { int x = 0; return x == 0 || 10 / x > 1; }"),
            1
        );
        assert_eq!(run("int main() { return 2 && 3; }"), 1);
        assert_eq!(run("int main() { return 0 || 0; }"), 0);
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            run(
                "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } \
                 int main() { return fib(10); }"
            ),
            55
        );
        assert_eq!(
            run("void inc(int* p) { *p = *p + 1; } int main() { int x = 5; inc(&x); return x; }"),
            6
        );
    }

    #[test]
    fn pointers_and_arrays() {
        assert_eq!(
            run(
                "int main() { int a[5]; for (int i = 0; i < 5; i++) a[i] = i * i; \
                 return a[4] + a[2]; }"
            ),
            20
        );
        assert_eq!(
            run("int main() { int a[3] = {10, 20, 30}; int* p = a; p++; return *p; }"),
            20
        );
        assert_eq!(
            run("int main() { int a[4] = {1,2,3,4}; int* p = &a[3]; return (int)(p - a); }"),
            3
        );
        assert_eq!(run("int main() { int a[2] = {5}; return a[1]; }"), 0); // zero fill
    }

    #[test]
    fn strings_and_globals() {
        assert_eq!(
            run("char* msg = \"hi\"; int main() { return msg[0] + msg[1]; }"),
            ('h' as i64) + ('i' as i64)
        );
        assert_eq!(run("int g = 10; int main() { g += 5; return g; }"), 15);
        assert_eq!(
            run("int table[4] = {1, 2, 3, 4}; int main() { return table[2]; }"),
            3
        );
    }

    #[test]
    fn structs() {
        assert_eq!(
            run("struct point { int x; int y; };\n\
                 int main() { struct point p; p.x = 3; p.y = 4; return p.x * p.x + p.y * p.y; }"),
            25
        );
        assert_eq!(
            run("struct pair { int a; int b; };\n\
                 int main() { struct pair p; p.a = 1; p.b = 2; struct pair q; q = p; \
                 q.a = 10; return p.a + q.a + q.b; }"),
            13
        );
        assert_eq!(
            run("struct node { int v; struct node* next; };\n\
                 int main() { struct node a; struct node b; a.v = 1; b.v = 2; \
                 a.next = &b; b.next = NULL; return a.next->v; }"),
            2
        );
    }

    #[test]
    fn heap_allocation() {
        assert_eq!(
            run("int main() { int* p = malloc(4 * sizeof(int)); \
                 for (int i = 0; i < 4; i++) p[i] = i + 1; \
                 int s = p[0] + p[3]; free(p); return s; }"),
            5
        );
        assert_eq!(
            run("int main() { int* p = calloc(8, sizeof(int)); int v = p[7]; free(p); return v; }"),
            0
        );
        assert_eq!(
            run("int main() { int* p = malloc(2 * sizeof(int)); p[0] = 9; \
                 p = realloc(p, 8 * sizeof(int)); int v = p[0]; free(p); return v; }"),
            9
        );
    }

    #[test]
    fn inc_dec_semantics() {
        assert_eq!(
            run("int main() { int i = 5; int a = i++; return a * 100 + i; }"),
            506
        );
        assert_eq!(
            run("int main() { int i = 5; int a = ++i; return a * 100 + i; }"),
            606
        );
        assert_eq!(run("int main() { int i = 5; i--; --i; return i; }"), 3);
    }

    #[test]
    fn printf_output() {
        let (_, out) = run_output(
            "int main() { printf(\"%d %s %c %f\\n\", 42, \"hi\", 'x', 1.5); return 0; }",
        );
        assert_eq!(out, "42 hi x 1.500000\n");
        let (_, out) = run_output("int main() { puts(\"line\"); putchar('!'); return 0; }");
        assert_eq!(out, "line\n!");
        let (_, out) = run_output("int main() { printf(\"%p\", (int*)0); return 0; }");
        assert_eq!(out, "(nil)");
    }

    #[test]
    fn runtime_errors() {
        let p = compile("t.c", "int main() { int* p = NULL; return *p; }").unwrap();
        let err = Vm::new(&p).run_to_completion().unwrap_err();
        assert!(err.message().contains("invalid memory"));

        let p = compile("t.c", "int main() { return 1 / 0; }").unwrap();
        let err = Vm::new(&p).run_to_completion().unwrap_err();
        assert!(err.message().contains("division"));

        let p = compile(
            "t.c",
            "int main() { int* p = malloc(4); free(p); free(p); return 0; }",
        )
        .unwrap();
        let err = Vm::new(&p).run_to_completion().unwrap_err();
        assert!(err.message().contains("double free"));
    }

    #[test]
    fn stack_overflow_detected() {
        let p = compile(
            "t.c",
            "int f(int n) { int pad[200]; pad[0] = n; return f(n + 1); } \
                        int main() { return f(0); }",
        )
        .unwrap();
        let err = Vm::new(&p).run_to_completion().unwrap_err();
        assert!(err.message().contains("stack overflow"));
    }

    #[test]
    fn events_sequence_for_call_and_return() {
        let p = compile(
            "t.c",
            "int id(int x) { return x; }\nint main() { return id(7); }",
        )
        .unwrap();
        let mut vm = Vm::new(&p);
        let mut calls = 0;
        let mut returns = 0;
        let mut lines = Vec::new();
        loop {
            match vm.step().unwrap() {
                Event::Call { function, depth } => {
                    calls += 1;
                    assert_eq!(p.functions[function].name, "id");
                    assert_eq!(depth, 1);
                    // Arguments are bound when the call event fires.
                    let base = vm.current_frame().base;
                    assert_eq!(vm.memory().read_int(base, 4).unwrap(), 7);
                }
                Event::Return { value, .. } => {
                    returns += 1;
                    if returns == 1 {
                        assert_eq!(value, Some(RtVal::Int(7)));
                        // The frame is still intact at the return event.
                        assert_eq!(vm.frames().len(), 2);
                    }
                }
                Event::Line(n) => lines.push(n),
                Event::Exited(code) => {
                    assert_eq!(code, 7);
                    break;
                }
                _ => {}
            }
        }
        assert_eq!(calls, 1);
        assert_eq!(returns, 2); // id and main
        assert!(lines.contains(&1) && lines.contains(&2));
    }

    #[test]
    fn store_events_only_when_enabled() {
        let src = "int main() { int x = 1; x = 2; x = 3; return x; }";
        let p = compile("t.c", src).unwrap();
        let mut vm = Vm::new(&p);
        let mut stores = 0;
        loop {
            match vm.step().unwrap() {
                Event::Store { .. } => stores += 1,
                Event::Exited(_) => break,
                _ => {}
            }
        }
        assert_eq!(stores, 0);

        let mut vm = Vm::new(&p);
        vm.set_store_events(true);
        let mut stores = 0;
        loop {
            match vm.step().unwrap() {
                Event::Store { size, .. } => {
                    stores += 1;
                    assert_eq!(size, 4);
                }
                Event::Exited(_) => break,
                _ => {}
            }
        }
        assert_eq!(stores, 3);
    }

    #[test]
    fn exited_is_idempotent() {
        let p = compile("t.c", "int main() { return 3; }").unwrap();
        let mut vm = Vm::new(&p);
        assert_eq!(vm.run_to_completion().unwrap(), 3);
        assert_eq!(vm.step().unwrap(), Event::Exited(3));
        assert_eq!(vm.exit_code(), Some(3));
    }

    #[test]
    fn long_arithmetic() {
        assert_eq!(
            run("int main() { long big = 1000000000; big = big * 5; \
                 return (int)(big % 1000000007); }"),
            5_000_000_000i64 % 1_000_000_007
        );
    }

    #[test]
    fn pointer_comparison_and_null() {
        assert_eq!(
            run("int main() { int* p = NULL; if (p == NULL) return 1; return 0; }"),
            1
        );
        assert_eq!(
            run("int main() { int a[2]; int* p = &a[0]; int* q = &a[1]; return p < q; }"),
            1
        );
    }

    #[test]
    fn compound_assignment_on_array_elements() {
        assert_eq!(
            run("int main() { int a[3] = {1, 2, 3}; a[1] *= 10; a[2] += a[1]; return a[2]; }"),
            23
        );
    }

    mod sanitizer {
        use super::*;
        use state::DiagnosticKind;

        /// Runs with the sanitizer on, collecting traps and the exit code.
        fn san_run(src: &str) -> (Vec<Diagnostic>, i64) {
            let p = compile("t.c", src).unwrap();
            let mut vm = Vm::new(&p);
            vm.set_sanitizer(true);
            let mut traps = Vec::new();
            loop {
                match vm.step().unwrap() {
                    Event::SanitizerTrap(d) => traps.push(d),
                    Event::Exited(code) => return (traps, code),
                    _ => {}
                }
            }
        }

        #[test]
        fn uninit_read_traps_at_the_reading_line() {
            let (traps, _) = san_run("int main() {\nint x;\nint y = x + 1;\nreturn y - y;\n}");
            assert_eq!(traps.len(), 1);
            assert_eq!(traps[0].kind, DiagnosticKind::UninitRead);
            assert_eq!(traps[0].span, 3);
            assert_eq!(traps[0].function, "main");
        }

        #[test]
        fn use_after_free_traps_and_program_survives() {
            let (traps, code) = san_run(
                "int main() {\nlong* p = malloc(8);\np[0] = 1;\nfree(p);\n\
                 long v = p[0];\nreturn (int)v;\n}",
            );
            assert_eq!(traps.len(), 1);
            assert_eq!(traps[0].kind, DiagnosticKind::UseAfterFree);
            assert_eq!(traps[0].span, 5);
            // Quarantined memory still holds the old value; the program ran on.
            assert_eq!(code, 1);
        }

        #[test]
        fn double_free_is_a_trap_not_an_error() {
            let (traps, code) =
                san_run("int main() {\nint* p = malloc(4);\nfree(p);\nfree(p);\nreturn 7;\n}");
            assert_eq!(traps.len(), 1);
            assert_eq!(traps[0].kind, DiagnosticKind::DoubleFree);
            assert_eq!(traps[0].span, 4);
            assert_eq!(code, 7, "the second free is a no-op");
        }

        #[test]
        fn out_of_bounds_store_lands_in_the_redzone() {
            let (traps, _) = san_run(
                "int main() {\nint* p = malloc(5 * sizeof(int));\np[5] = 1;\nfree(p);\nreturn 0;\n}",
            );
            assert_eq!(traps.len(), 1);
            assert_eq!(traps[0].kind, DiagnosticKind::OutOfBounds);
            assert_eq!(traps[0].span, 3);
        }

        #[test]
        fn dead_store_traps_with_the_first_stores_span() {
            let (traps, code) = san_run("int main() {\nint x = 1;\nx = 2;\nreturn x;\n}");
            assert_eq!(traps.len(), 1);
            assert_eq!(traps[0].kind, DiagnosticKind::DeadStore);
            assert_eq!(traps[0].span, 2, "span is the overwritten store");
            assert_eq!(code, 2);
        }

        #[test]
        fn leak_traps_before_exit() {
            let p = compile("t.c", "int main() {\nint* p = malloc(8);\nreturn 0;\n}").unwrap();
            let mut vm = Vm::new(&p);
            vm.set_sanitizer(true);
            let mut saw_leak = false;
            loop {
                match vm.step().unwrap() {
                    Event::SanitizerTrap(d) => {
                        assert_eq!(d.kind, DiagnosticKind::Leak);
                        assert_eq!(d.span, 2, "leak is anchored at the allocation site");
                        assert!(!saw_leak, "one leak, once");
                        saw_leak = true;
                    }
                    Event::Exited(0) => break,
                    _ => {}
                }
            }
            assert!(saw_leak);
            // Exited stays idempotent after the trap drain.
            assert_eq!(vm.step().unwrap(), Event::Exited(0));
            assert_eq!(vm.sanitizer_traps(), 1);
        }

        #[test]
        fn escaped_slots_are_exempt() {
            let (traps, code) =
                san_run("int main() {\nint x;\nint* p = &x;\n*p = 5;\nint y = x;\nreturn y;\n}");
            assert_eq!(traps, vec![], "escaped slot must not trap");
            assert_eq!(code, 5);
        }

        #[test]
        fn parameters_count_as_initialized() {
            let (traps, code) =
                san_run("int f(int a) {\nreturn a + 1;\n}\nint main() {\nreturn f(3);\n}");
            assert_eq!(traps, vec![]);
            assert_eq!(code, 4);
        }

        #[test]
        fn trap_is_delivered_before_the_ops_own_event() {
            let src = "int main() {\nchar* s = malloc(4);\ns[0] = 'h';\ns[1] = 0;\n\
                       free(s);\nputs(s);\nreturn 0;\n}";
            let p = compile("t.c", src).unwrap();
            let mut vm = Vm::new(&p);
            vm.set_sanitizer(true);
            let mut order = Vec::new();
            loop {
                match vm.step().unwrap() {
                    Event::SanitizerTrap(d) => order.push(format!("trap:{}", d.kind.name())),
                    Event::Output(_) => order.push("output".to_owned()),
                    Event::Exited(_) => break,
                    _ => {}
                }
            }
            assert_eq!(order, ["trap:use-after-free", "output"]);
        }

        #[test]
        fn traps_dedupe_within_a_loop() {
            let (traps, _) = san_run(
                "int main() {\nint* p = malloc(4);\nfree(p);\nint s = 0;\n\
                 for (int i = 0; i < 5; i++) {\ns += p[0];\n}\nreturn s - s;\n}",
            );
            let uaf: Vec<_> = traps
                .iter()
                .filter(|d| d.kind == DiagnosticKind::UseAfterFree)
                .collect();
            assert_eq!(uaf.len(), 1, "same (kind, function, line) reports once");
        }

        #[test]
        fn sanitizer_off_keeps_seed_semantics() {
            // Without the sanitizer, double free stays a hard VM error.
            let p = compile(
                "t.c",
                "int main() { int* p = malloc(4); free(p); free(p); return 0; }",
            )
            .unwrap();
            assert!(Vm::new(&p).run_to_completion().is_err());
        }
    }
}
