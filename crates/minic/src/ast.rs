//! Abstract syntax tree for MiniC.
//!
//! Every node carries the 1-based source line it starts on, which is the
//! granularity the trackers step at.

use crate::types::Type;

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// Struct definitions in source order.
    pub structs: Vec<StructDef>,
    /// Global variable definitions in source order.
    pub globals: Vec<GlobalDef>,
    /// Function definitions in source order.
    pub functions: Vec<FunctionDef>,
}

/// `struct name { fields };`
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// The struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, Type)>,
    /// Line of the `struct` keyword.
    pub line: u32,
}

/// A file-scope variable with an optional constant initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Constant initializer (checked by the typechecker).
    pub init: Option<Initializer>,
    /// Declaration line.
    pub line: u32,
}

/// An initializer: a single expression or a brace-enclosed list.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// `= expr`
    Expr(Expr),
    /// `= { i1, i2, ... }` for arrays and structs.
    List(Vec<Initializer>),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters in declaration order.
    pub params: Vec<(String, Type)>,
    /// Body block.
    pub body: Vec<Stmt>,
    /// Line of the function header.
    pub line: u32,
    /// Line of the closing brace (used for "pause before exit" displays).
    pub end_line: u32,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration `ty name (= init)?;`
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Initializer>,
        /// Declaration line.
        line: u32,
    },
    /// Expression statement `expr;`
    Expr(Expr),
    /// `if (cond) then else?`
    If {
        /// Controlling expression.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Optional else branch.
        else_branch: Option<Vec<Stmt>>,
        /// Line of the `if`.
        line: u32,
    },
    /// `while (cond) body`
    While {
        /// Controlling expression.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Line of the `while`.
        line: u32,
    },
    /// `do body while (cond);` — the body runs at least once.
    DoWhile {
        /// Loop body.
        body: Vec<Stmt>,
        /// Controlling expression (evaluated after the body).
        cond: Expr,
        /// Line of the `do`.
        line: u32,
    },
    /// `switch (scrutinee) { case k: ... default: ... }` with C fallthrough.
    Switch {
        /// The switched-on expression (integer).
        scrutinee: Expr,
        /// Arms in source order: constant labels (None = `default`) and
        /// their statements (fallthrough runs into the next arm).
        arms: Vec<(Option<i64>, Vec<Stmt>)>,
        /// Line of the `switch`.
        line: u32,
    },
    /// `for (init; cond; step) body` — each part optional.
    For {
        /// Initialization: a declaration or expression statement.
        init: Option<Box<Stmt>>,
        /// Loop condition.
        cond: Option<Expr>,
        /// Per-iteration step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Line of the `for`.
        line: u32,
    },
    /// `return expr?;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Line of the `return`.
        line: u32,
    },
    /// `break;`
    Break {
        /// Line of the `break`.
        line: u32,
    },
    /// `continue;`
    Continue {
        /// Line of the `continue`.
        line: u32,
    },
    /// A braced block introducing a scope.
    Block(Vec<Stmt>),
}

impl Stmt {
    /// The line the statement starts on (first statement line for blocks).
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Decl { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::DoWhile { line, .. }
            | Stmt::Switch { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line } => *line,
            Stmt::Expr(e) => e.line,
            Stmt::Block(stmts) => stmts.first().map(Stmt::line).unwrap_or(0),
        }
    }
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's form.
    pub kind: ExprKind,
    /// 1-based line.
    pub line: u32,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, line: u32) -> Self {
        Expr { kind, line }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// Whether the operator is a comparison (result type `int`).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the operator is `&&` or `||` (short-circuiting).
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e`.
    Not,
    /// Bitwise not `~e`.
    BitNot,
}

/// Compound-assignment operators (`a op= b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// Plain `=`.
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Char literal.
    CharLit(char),
    /// String literal (type `char*`).
    StrLit(String),
    /// `NULL`.
    Null,
    /// Variable reference.
    Var(String),
    /// `lhs op= rhs` where lhs is an lvalue.
    Assign {
        /// The operator (plain or compound).
        op: AssignOp,
        /// Target lvalue.
        target: Box<Expr>,
        /// Source expression.
        value: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Pre/post increment/decrement.
    IncDec {
        /// `+1` or `-1`.
        delta: i64,
        /// Whether the operator is prefix (`++x`) or postfix (`x++`).
        prefix: bool,
        /// Target lvalue.
        target: Box<Expr>,
    },
    /// `cond ? then : else`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
    /// Function call `callee(args...)`. The callee is a plain name in MiniC.
    Call {
        /// Called function's name.
        callee: String,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// Array indexing `base[index]`.
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Member access `base.field`.
    Member {
        /// Struct expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// Member access through pointer `base->field`.
    Arrow {
        /// Pointer-to-struct expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// Dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e`.
    AddrOf(Box<Expr>),
    /// `sizeof(type)` or `sizeof expr`.
    SizeofType(Type),
    /// `sizeof expr`
    SizeofExpr(Box<Expr>),
    /// Cast `(type)e`.
    Cast {
        /// Destination type.
        ty: Type,
        /// Source expression.
        expr: Box<Expr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stmt_line_recursion() {
        let e = Expr::new(ExprKind::IntLit(1), 7);
        assert_eq!(Stmt::Expr(e.clone()).line(), 7);
        assert_eq!(Stmt::Block(vec![Stmt::Expr(e)]).line(), 7);
        assert_eq!(Stmt::Block(vec![]).line(), 0);
        assert_eq!(Stmt::Break { line: 3 }.line(), 3);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }
}
