//! MiniC's type representation, sizes and alignment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A MiniC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 64-bit signed integer.
    Long,
    /// 32-bit IEEE float.
    Float,
    /// 64-bit IEEE float.
    Double,
    /// 8-bit signed character.
    Char,
    /// The absence of a value (function returns only).
    Void,
    /// Pointer to another type. Pointers are 8 bytes.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// A named struct; layout is resolved by the typechecker.
    Struct(String),
    /// Function type, used for function designators / pointers.
    Func {
        /// Return type.
        ret: Box<Type>,
        /// Parameter types.
        params: Vec<Type>,
    },
}

impl Type {
    /// Convenience constructor for a pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether the type is one of the integer types (`char`, `int`, `long`).
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Int | Type::Long | Type::Char)
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// Whether the type is arithmetic (integer or float).
    pub fn is_arithmetic(&self) -> bool {
        self.is_integer() || self.is_float()
    }

    /// Whether the type is a pointer.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Whether the type can be used in a boolean context.
    pub fn is_scalar(&self) -> bool {
        self.is_arithmetic() || self.is_pointer()
    }

    /// The pointee of a pointer, or the element type of an array.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Array-to-pointer decay: arrays become pointers to their element type,
    /// everything else is unchanged.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone(),
        }
    }

    /// Size in bytes. Struct sizes require a [`StructTable`]; this method
    /// panics for bare `Struct` types — use [`StructTable::size_of`] instead.
    ///
    /// # Panics
    ///
    /// Panics when called on a `Struct`, `Void` or `Func` type.
    pub fn scalar_size(&self) -> u64 {
        match self {
            Type::Char => 1,
            Type::Int | Type::Float => 4,
            Type::Long | Type::Double | Type::Ptr(_) => 8,
            Type::Array(elem, n) => elem.scalar_size() * *n as u64,
            Type::Struct(name) => panic!("size of struct {name} requires a StructTable"),
            Type::Void => panic!("void has no size"),
            Type::Func { .. } => panic!("function types have no size"),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Long => f.write_str("long"),
            Type::Float => f.write_str("float"),
            Type::Double => f.write_str("double"),
            Type::Char => f.write_str("char"),
            Type::Void => f.write_str("void"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(name) => write!(f, "struct {name}"),
            Type::Func { ret, params } => {
                write!(f, "{ret}(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One field of a resolved struct layout.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset from the start of the struct.
    pub offset: u64,
}

/// Resolved layout of a struct: field offsets, total size, alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct StructLayout {
    /// Struct tag name.
    pub name: String,
    /// Fields in declaration order with resolved offsets.
    pub fields: Vec<FieldLayout>,
    /// Total size in bytes (padded to alignment).
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
}

impl StructLayout {
    /// Looks a field up by name.
    pub fn field(&self, name: &str) -> Option<&FieldLayout> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// All struct layouts of a program, produced by the typechecker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StructTable {
    layouts: Vec<StructLayout>,
}

impl StructTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StructTable::default()
    }

    /// Registers a resolved layout.
    pub fn insert(&mut self, layout: StructLayout) {
        self.layouts.push(layout);
    }

    /// Looks a struct up by tag name.
    pub fn get(&self, name: &str) -> Option<&StructLayout> {
        self.layouts.iter().find(|l| l.name == name)
    }

    /// Size of any type, resolving struct names through the table.
    ///
    /// # Panics
    ///
    /// Panics on `Void`, `Func`, or an unknown struct name (the typechecker
    /// guarantees neither reaches the backend).
    pub fn size_of(&self, ty: &Type) -> u64 {
        match ty {
            Type::Struct(name) => {
                self.get(name)
                    .unwrap_or_else(|| panic!("unknown struct {name}"))
                    .size
            }
            Type::Array(elem, n) => self.size_of(elem) * *n as u64,
            other => other.scalar_size(),
        }
    }

    /// Alignment of any type.
    ///
    /// # Panics
    ///
    /// Panics on `Void`, `Func`, or an unknown struct name.
    pub fn align_of(&self, ty: &Type) -> u64 {
        match ty {
            Type::Struct(name) => {
                self.get(name)
                    .unwrap_or_else(|| panic!("unknown struct {name}"))
                    .align
            }
            Type::Array(elem, _) => self.align_of(elem),
            Type::Char => 1,
            Type::Int | Type::Float => 4,
            Type::Long | Type::Double | Type::Ptr(_) => 8,
            Type::Void | Type::Func { .. } => panic!("{ty} has no alignment"),
        }
    }

    /// Computes a struct layout from field declarations (C-style: fields at
    /// aligned offsets, size padded to the max alignment).
    pub fn layout_struct(&self, name: &str, fields: &[(String, Type)]) -> StructLayout {
        let mut offset = 0u64;
        let mut align = 1u64;
        let mut out = Vec::with_capacity(fields.len());
        for (fname, fty) in fields {
            let fa = self.align_of(fty);
            let fs = self.size_of(fty);
            align = align.max(fa);
            offset = round_up(offset, fa);
            out.push(FieldLayout {
                name: fname.clone(),
                ty: fty.clone(),
                offset,
            });
            offset += fs;
        }
        StructLayout {
            name: name.to_owned(),
            fields: out,
            size: round_up(offset.max(1), align),
            align,
        }
    }
}

/// Rounds `v` up to the next multiple of `align` (which must be a power of
/// two or any positive integer).
pub fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Type::Char.scalar_size(), 1);
        assert_eq!(Type::Int.scalar_size(), 4);
        assert_eq!(Type::Float.scalar_size(), 4);
        assert_eq!(Type::Long.scalar_size(), 8);
        assert_eq!(Type::Double.scalar_size(), 8);
        assert_eq!(Type::Int.ptr_to().scalar_size(), 8);
        assert_eq!(Type::Array(Box::new(Type::Int), 5).scalar_size(), 20);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Int.ptr_to().to_string(), "int*");
        assert_eq!(Type::Array(Box::new(Type::Char), 4).to_string(), "char[4]");
        assert_eq!(Type::Struct("s".into()).to_string(), "struct s");
        assert_eq!(Type::Char.ptr_to().to_string(), "char*");
    }

    #[test]
    fn decay_turns_arrays_into_pointers() {
        let arr = Type::Array(Box::new(Type::Int), 3);
        assert_eq!(arr.decay(), Type::Int.ptr_to());
        assert_eq!(Type::Int.decay(), Type::Int);
    }

    #[test]
    fn struct_layout_padding() {
        let table = StructTable::new();
        let layout = table.layout_struct(
            "s",
            &[
                ("c".into(), Type::Char),
                ("x".into(), Type::Int),
                ("d".into(), Type::Double),
                ("c2".into(), Type::Char),
            ],
        );
        assert_eq!(layout.field("c").unwrap().offset, 0);
        assert_eq!(layout.field("x").unwrap().offset, 4);
        assert_eq!(layout.field("d").unwrap().offset, 8);
        assert_eq!(layout.field("c2").unwrap().offset, 16);
        assert_eq!(layout.align, 8);
        assert_eq!(layout.size, 24);
    }

    #[test]
    fn nested_struct_sizes() {
        let mut table = StructTable::new();
        let inner = table.layout_struct("inner", &[("a".into(), Type::Int)]);
        table.insert(inner);
        let outer = table.layout_struct(
            "outer",
            &[
                ("i".into(), Type::Struct("inner".into())),
                ("p".into(), Type::Char),
            ],
        );
        assert_eq!(outer.field("i").unwrap().offset, 0);
        assert_eq!(outer.field("p").unwrap().offset, 4);
        assert_eq!(outer.size, 8);
        table.insert(outer);
        assert_eq!(table.size_of(&Type::Struct("outer".into())), 8);
        assert_eq!(
            table.size_of(&Type::Array(Box::new(Type::Struct("outer".into())), 3)),
            24
        );
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(0, 4), 0);
        assert_eq!(round_up(1, 4), 4);
        assert_eq!(round_up(4, 4), 4);
        assert_eq!(round_up(9, 8), 16);
    }

    #[test]
    fn classification_predicates() {
        assert!(Type::Char.is_integer());
        assert!(Type::Double.is_float());
        assert!(Type::Int.ptr_to().is_pointer());
        assert!(Type::Int.ptr_to().is_scalar());
        assert!(!Type::Struct("s".into()).is_scalar());
        assert_eq!(Type::Int.ptr_to().pointee(), Some(&Type::Int));
    }
}
