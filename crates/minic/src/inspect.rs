//! Builds the language-agnostic [`state`] representation from a paused VM.
//!
//! This is the MiniC analogue of the paper's GDB extension that walks the
//! backtrace and the memory reachable from local variables to create
//! `Frame`/`Variable`/`Value` instances (§II-C1). Pointer classification
//! uses the tracking allocator: a pointer into a live heap block becomes a
//! `REF` (and the *whole block* is rendered, so `malloc`'d arrays get their
//! true length — the paper's interposition trick); a pointer to a freed
//! block or unmapped memory becomes `INVALID`, drawn as a cross by the
//! stack-and-heap diagrams.

use crate::mem::{Memory, Segment, STACK_TOP};
use crate::types::Type;
use crate::vm::Vm;
use state::{Frame, Location, Prim, Scope, SourceLocation, Value, Variable};
use std::collections::HashSet;

/// Limits applied while walking pointers.
#[derive(Debug, Clone, Copy)]
pub struct InspectOptions {
    /// Maximum pointer-following depth.
    pub max_depth: usize,
    /// Maximum C-string length read through a `char*`.
    pub max_string: u64,
    /// Maximum array elements rendered.
    pub max_elems: usize,
}

impl Default for InspectOptions {
    fn default() -> Self {
        InspectOptions {
            max_depth: 12,
            max_string: 256,
            max_elems: 256,
        }
    }
}

/// Builds the innermost frame, with the whole parent chain attached.
///
/// Locals appear once their declaration line has been reached, in
/// declaration order, parameters first — matching what a source-level
/// debugger shows.
///
/// # Panics
///
/// Panics if the program has already exited (no frames exist).
pub fn current_frame(vm: &Vm) -> Frame {
    current_frame_with(vm, InspectOptions::default())
}

/// [`current_frame`] with explicit limits.
///
/// # Panics
///
/// Panics if the program has already exited (no frames exist).
pub fn current_frame_with(vm: &Vm, opts: InspectOptions) -> Frame {
    let program = vm.program();
    let mut result: Option<Frame> = None;
    for (depth, fi) in vm.frames().iter().enumerate() {
        let meta = &program.functions[fi.function];
        let mut frame = Frame::new(
            meta.name.clone(),
            depth as u32,
            SourceLocation::new(program.file.clone(), fi.line),
        );
        for local in &meta.locals {
            // A local is visible from its declaration line onward; for the
            // frame currently *above* this one, the pause line is where the
            // call happened, which still bounds visibility correctly.
            if !local.is_param && local.decl_line > fi.line {
                continue;
            }
            let addr = fi.base + local.offset;
            let value = place_value(read_value(vm, addr, &local.ty, opts), Location::Stack, addr);
            let scope = if local.is_param {
                Scope::Parameter
            } else {
                Scope::Local
            };
            frame.insert_variable(Variable::new(local.name.clone(), scope, value));
        }
        if let Some(parent) = result.take() {
            frame.set_parent(parent);
        }
        result = Some(frame);
    }
    result.expect("program has at least the main frame")
}

/// Builds the global variables list.
pub fn global_variables(vm: &Vm) -> Vec<Variable> {
    global_variables_with(vm, InspectOptions::default())
}

/// [`global_variables`] with explicit limits.
pub fn global_variables_with(vm: &Vm, opts: InspectOptions) -> Vec<Variable> {
    vm.program()
        .globals
        .iter()
        .map(|g| {
            let value = place_value(
                read_value(vm, g.addr, &g.ty, opts),
                Location::Global,
                g.addr,
            );
            Variable::new(g.name.clone(), Scope::Global, value)
        })
        .collect()
}

/// Stamps a variable's value with the location/address of its storage —
/// except for dangling heap pointers, whose `Heap` location and freed
/// target address are the signal renderers use to print `<dangling>`.
fn place_value(v: Value, location: Location, addr: u64) -> Value {
    if v.abstract_type() == state::AbstractType::Invalid && v.location() == Location::Heap {
        return v;
    }
    v.with_location(location).with_address(addr)
}

/// Reads a typed value from memory into the abstract representation.
///
/// This is the engine behind the paper's `get_value_at_gdb`.
pub fn read_value(vm: &Vm, addr: u64, ty: &Type, opts: InspectOptions) -> Value {
    let mut visiting = HashSet::new();
    value_at(vm, addr, ty, opts, opts.max_depth, &mut visiting)
}

/// Whether `addr` currently points at live, readable storage.
pub fn classify_target(vm: &Vm, addr: u64) -> PointerClass {
    if addr == 0 {
        return PointerClass::Null;
    }
    match Memory::segment_of(addr) {
        Some(Segment::Global) => {
            if vm.memory().read_bytes(addr, 1).is_ok() {
                PointerClass::Valid(Location::Global)
            } else {
                PointerClass::Invalid
            }
        }
        Some(Segment::Stack) => {
            if addr >= vm.stack_pointer() && addr < STACK_TOP {
                PointerClass::Valid(Location::Stack)
            } else {
                // Below the stack pointer: popped frame, i.e. dangling.
                PointerClass::Invalid
            }
        }
        Some(Segment::Heap) => match vm.allocator().block_containing(addr) {
            Some(b) if b.live => PointerClass::Valid(Location::Heap),
            _ => PointerClass::Invalid,
        },
        None => PointerClass::Invalid,
    }
}

/// Result of [`classify_target`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerClass {
    /// The null pointer.
    Null,
    /// Live storage in the given conceptual location.
    Valid(Location),
    /// Dangling, freed or out-of-range.
    Invalid,
}

/// A stable reference to one heap block, pinned to its allocation epoch.
///
/// The allocator recycles freed ranges, so a bare address can silently come
/// to denote a *different* block than the one a tool captured earlier. A
/// handle remembers the allocation epoch alongside the address and
/// [`read_block`] refuses to read once the block was freed or its range
/// recycled — the stale read becomes an explicit error instead of bytes
/// from an unrelated allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHandle {
    addr: u64,
    size: u64,
    epoch: u64,
}

impl BlockHandle {
    /// The block's base address at capture time.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The block's requested size at capture time.
    pub fn size(&self) -> u64 {
        self.size
    }
}

/// Why [`read_block`] refused to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaleHandle {
    /// The block was freed (and possibly quarantined) since capture.
    Freed,
    /// The range was recycled: a different block now occupies the address.
    Recycled,
    /// No block record exists at the address any more.
    Gone,
}

impl std::fmt::Display for StaleHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaleHandle::Freed => write!(f, "block was freed after the handle was taken"),
            StaleHandle::Recycled => {
                write!(f, "block range was recycled by a later allocation")
            }
            StaleHandle::Gone => write!(f, "no heap block exists at the handle's address"),
        }
    }
}

impl std::error::Error for StaleHandle {}

/// Captures a handle to the live heap block containing `addr`.
pub fn block_handle(vm: &Vm, addr: u64) -> Option<BlockHandle> {
    vm.allocator()
        .block_containing(addr)
        .filter(|b| b.live)
        .map(|b| BlockHandle {
            addr: b.addr,
            size: b.size,
            epoch: b.epoch,
        })
}

/// Reads the full contents of the block behind `handle`.
///
/// # Errors
///
/// Returns [`StaleHandle`] when the block was freed, its range recycled by
/// a later allocation (epoch mismatch), or no record remains.
pub fn read_block(vm: &Vm, handle: &BlockHandle) -> Result<Vec<u8>, StaleHandle> {
    let block = vm
        .allocator()
        .block_containing(handle.addr)
        .ok_or(StaleHandle::Gone)?;
    if block.addr != handle.addr || block.epoch != handle.epoch {
        return Err(StaleHandle::Recycled);
    }
    if !block.live {
        return Err(StaleHandle::Freed);
    }
    vm.memory()
        .read_bytes(handle.addr, handle.size.max(1))
        .map(<[u8]>::to_vec)
        .map_err(|_| StaleHandle::Gone)
}

fn value_at(
    vm: &Vm,
    addr: u64,
    ty: &Type,
    opts: InspectOptions,
    depth: usize,
    visiting: &mut HashSet<u64>,
) -> Value {
    let program = vm.program();
    let lt = ty.to_string();
    let mem = vm.memory();
    match ty {
        Type::Char => match mem.read_int(addr, 1) {
            Ok(v) => {
                let c = char::from_u32((v as u8) as u32).unwrap_or('\u{fffd}');
                Value::primitive(Prim::Char(c), lt)
            }
            Err(_) => Value::invalid(lt),
        },
        Type::Int => match mem.read_int(addr, 4) {
            Ok(v) => Value::primitive(Prim::Int(v), lt),
            Err(_) => Value::invalid(lt),
        },
        Type::Long => match mem.read_int(addr, 8) {
            Ok(v) => Value::primitive(Prim::Int(v), lt),
            Err(_) => Value::invalid(lt),
        },
        Type::Float => match mem.read_float(addr, 4) {
            Ok(v) => Value::primitive(Prim::Float(v), lt),
            Err(_) => Value::invalid(lt),
        },
        Type::Double => match mem.read_float(addr, 8) {
            Ok(v) => Value::primitive(Prim::Float(v), lt),
            Err(_) => Value::invalid(lt),
        },
        Type::Array(elem, n) => {
            let esize = program.structs.size_of(elem);
            let count = (*n).min(opts.max_elems);
            let items = (0..count)
                .map(|i| {
                    let ea = addr + i as u64 * esize;
                    value_at(vm, ea, elem, opts, depth, visiting).with_address(ea)
                })
                .collect();
            Value::list(items, lt)
        }
        Type::Struct(name) => {
            let Some(layout) = program.structs.get(name) else {
                return Value::invalid(lt);
            };
            let fields = layout
                .fields
                .iter()
                .map(|f| {
                    let fa = addr + f.offset;
                    let v = value_at(vm, fa, &f.ty, opts, depth, visiting).with_address(fa);
                    (f.name.clone(), v)
                })
                .collect();
            Value::structure(fields, lt)
        }
        Type::Ptr(pointee) => {
            let Ok(target) = mem.read_ptr(addr) else {
                return Value::invalid(lt);
            };
            pointer_value(vm, target, pointee, &lt, opts, depth, visiting)
        }
        Type::Void | Type::Func { .. } => Value::invalid(lt),
    }
}

/// Renders a pointer *value* (already loaded) of type `{pointee}*`.
fn pointer_value(
    vm: &Vm,
    target: u64,
    pointee: &Type,
    lt: &str,
    opts: InspectOptions,
    depth: usize,
    visiting: &mut HashSet<u64>,
) -> Value {
    let class = classify_target(vm, target);
    let location = match class {
        PointerClass::Valid(loc) => loc,
        // A dangling pointer into the heap (freed block) keeps its heap
        // location and address so renderers can say "<dangling>" rather
        // than a generic "<invalid>".
        PointerClass::Invalid if Memory::segment_of(target) == Some(Segment::Heap) => {
            return Value::invalid(lt)
                .with_location(Location::Heap)
                .with_address(target);
        }
        PointerClass::Null | PointerClass::Invalid => return Value::invalid(lt),
    };
    // The paper treats `char*` as a PRIMITIVE whose content is the string.
    if *pointee == Type::Char {
        let s = vm
            .memory()
            .read_cstring(target, opts.max_string)
            .unwrap_or_default();
        return Value::primitive(Prim::Str(s), lt)
            .with_location(location)
            .with_address(target);
    }
    if depth == 0 || !visiting.insert(target) {
        // Depth/cycle cut: keep the arrow (address) but do not expand.
        let placeholder = Value::none(pointee.to_string())
            .with_location(location)
            .with_address(target);
        if visiting.contains(&target) && depth != 0 {
            // insert returned false: revisit — nothing to undo.
        }
        return Value::reference(placeholder, lt).with_location(Location::Constant);
    }
    let program = vm.program();
    let esize = program.structs.size_of(pointee).max(1);
    // Whole-block rendering: a pointer to the base of a live heap block
    // bigger than one element is a heap array of block_size/esize elements.
    let inner = if location == Location::Heap {
        let block = vm
            .allocator()
            .block_containing(target)
            .expect("classified as live heap");
        let n = (block.size / esize) as usize;
        if block.addr == target && n > 1 {
            let count = n.min(opts.max_elems);
            let items = (0..count)
                .map(|i| {
                    let ea = target + i as u64 * esize;
                    value_at(vm, ea, pointee, opts, depth - 1, visiting)
                        .with_address(ea)
                        .with_location(Location::Heap)
                })
                .collect();
            Value::list(items, format!("{pointee}[{n}]"))
        } else {
            value_at(vm, target, pointee, opts, depth - 1, visiting)
        }
    } else {
        value_at(vm, target, pointee, opts, depth - 1, visiting)
    };
    visiting.remove(&target);
    let inner = inner.with_location(location).with_address(target);
    Value::reference(inner, lt).with_location(Location::Constant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::vm::Event;
    use state::{AbstractType, Content};

    /// Runs until the given line is reached.
    fn run_to_line(src: &str, line: u32) -> Vm {
        let p = compile("t.c", src).unwrap();
        let mut vm = Vm::new(&p);
        loop {
            match vm.step().unwrap() {
                Event::Line(n) if n == line => return vm,
                Event::Exited(_) => panic!("program exited before line {line}"),
                _ => {}
            }
        }
    }

    #[test]
    fn scalars_and_visibility() {
        let src = "int main() {\nint a = 3;\ndouble d = 2.5;\nreturn 0;\nint late = 1;\n}";
        // Paused at line 4: `late` (declared on a later line) is hidden,
        // like a source-level debugger hides not-yet-declared block locals.
        let vm = run_to_line(src, 4);
        let f = current_frame(&vm);
        assert_eq!(f.name(), "main");
        let names: Vec<_> = f.variables().map(|v| v.name().to_owned()).collect();
        assert_eq!(names, ["a", "d"]);
        match f.variable("a").unwrap().value().content() {
            Content::Primitive(Prim::Int(3)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(f.variable("a").unwrap().value().location(), Location::Stack);
        assert!(f.variable("a").unwrap().value().address().is_some());
        assert_eq!(f.variable("d").unwrap().value().language_type(), "double");
    }

    #[test]
    fn arrays_render_as_lists() {
        let src = "int main() {\nint a[3] = {7, 8, 9};\nreturn a[0];\n}";
        let vm = run_to_line(src, 3);
        let f = current_frame(&vm);
        let v = f.variable("a").unwrap().value();
        assert_eq!(v.abstract_type(), AbstractType::List);
        assert_eq!(state::render_value(v), "[7, 8, 9]");
        assert_eq!(v.language_type(), "int[3]");
    }

    #[test]
    fn stack_pointer_reference() {
        let src = "int main() {\nint x = 5;\nint* p = &x;\nreturn *p;\n}";
        let vm = run_to_line(src, 4);
        let f = current_frame(&vm);
        let p = f.variable("p").unwrap().value();
        assert_eq!(p.abstract_type(), AbstractType::Ref);
        let target = match p.content() {
            Content::Ref(t) => t,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(target.location(), Location::Stack);
        assert_eq!(target.address(), f.variable("x").unwrap().value().address());
    }

    #[test]
    fn heap_block_renders_whole_array() {
        let src = "int main() {\nint* p = malloc(4 * sizeof(int));\n\
                   for (int i = 0; i < 4; i++) p[i] = i;\nreturn p[0];\n}";
        let vm = run_to_line(src, 4);
        let f = current_frame(&vm);
        let p = f.variable("p").unwrap().value();
        assert_eq!(p.abstract_type(), AbstractType::Ref);
        let target = p.deref_fully();
        assert_eq!(target.abstract_type(), AbstractType::List);
        assert_eq!(target.location(), Location::Heap);
        assert_eq!(state::render_value(target), "[0, 1, 2, 3]");
        assert_eq!(target.language_type(), "int[4]");
    }

    #[test]
    fn dangling_pointer_is_invalid() {
        let src = "int main() {\nint* p = malloc(8);\nfree(p);\nreturn 0;\n}";
        let vm = run_to_line(src, 4);
        let f = current_frame(&vm);
        let p = f.variable("p").unwrap().value();
        assert_eq!(p.abstract_type(), AbstractType::Invalid);
        // Heap danglers keep their location + address so renderers can
        // print "<dangling>" and diagrams can cross out the arrow.
        assert_eq!(p.location(), Location::Heap);
        assert!(p.address().is_some());
        assert_eq!(state::render_value(p), "<dangling>");
    }

    #[test]
    fn stale_block_handles_are_rejected() {
        // free() then a same-size malloc() recycles the address; a handle
        // captured before the free must refuse to read the impostor block.
        let src = "int main() {\nlong* p = malloc(8);\np[0] = 42;\nfree(p);\n\
                   long* q = malloc(8);\nq[0] = 99;\nreturn 0;\n}";
        let p = compile("t.c", src).unwrap();
        let mut vm = Vm::new(&p);
        let mut handle = None;
        loop {
            match vm.step().unwrap() {
                Event::Line(4) => {
                    // p[0] written, not yet freed: capture the handle.
                    let f = current_frame(&vm);
                    let addr = f.variable("p").unwrap().value().address().unwrap();
                    let target = vm.memory().read_ptr(addr).unwrap();
                    let h = block_handle(&vm, target).expect("block is live");
                    assert_eq!(read_block(&vm, &h).unwrap()[0], 42);
                    handle = Some(h);
                }
                Event::Line(6) => {
                    // q now occupies p's old range (first-fit reuse).
                    let h = handle.expect("handle captured at line 4");
                    assert_eq!(read_block(&vm, &h), Err(StaleHandle::Recycled));
                    return;
                }
                Event::Exited(_) => panic!("missed the capture lines"),
                _ => {}
            }
        }
    }

    #[test]
    fn freed_block_handle_reports_freed() {
        let src = "int main() {\nlong* p = malloc(8);\np[0] = 7;\nfree(p);\nreturn 0;\n}";
        let p = compile("t.c", src).unwrap();
        let mut vm = Vm::new(&p);
        let mut handle = None;
        loop {
            match vm.step().unwrap() {
                Event::Line(4) => {
                    let f = current_frame(&vm);
                    let addr = f.variable("p").unwrap().value().address().unwrap();
                    let target = vm.memory().read_ptr(addr).unwrap();
                    handle = Some(block_handle(&vm, target).unwrap());
                }
                Event::Line(5) => {
                    let h = handle.expect("handle captured at line 4");
                    // Freed, range not yet recycled: record survives.
                    assert_eq!(read_block(&vm, &h), Err(StaleHandle::Freed));
                    return;
                }
                Event::Exited(_) => panic!("missed the capture lines"),
                _ => {}
            }
        }
    }

    #[test]
    fn null_pointer_is_invalid() {
        let src = "int main() {\nint* p = NULL;\nreturn 0;\n}";
        let vm = run_to_line(src, 3);
        let f = current_frame(&vm);
        assert_eq!(
            f.variable("p").unwrap().value().abstract_type(),
            AbstractType::Invalid
        );
    }

    #[test]
    fn char_star_is_primitive_string() {
        let src = "int main() {\nchar* s = \"hello\";\nreturn 0;\n}";
        let vm = run_to_line(src, 3);
        let f = current_frame(&vm);
        let s = f.variable("s").unwrap().value();
        assert_eq!(s.abstract_type(), AbstractType::Primitive);
        match s.content() {
            Content::Primitive(Prim::Str(text)) => assert_eq!(text, "hello"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.language_type(), "char*");
        // The variable's own slot is on the stack (its string content lives
        // in the global literal pool, reachable through the address).
        assert_eq!(s.location(), Location::Stack);
    }

    #[test]
    fn structs_render_with_fields() {
        let src = "struct point { int x; int y; };\n\
                   int main() {\nstruct point p;\np.x = 1;\np.y = 2;\nreturn 0;\n}";
        let vm = run_to_line(src, 6);
        let f = current_frame(&vm);
        let v = f.variable("p").unwrap().value();
        assert_eq!(v.abstract_type(), AbstractType::Struct);
        assert_eq!(state::render_value(v), "struct point{x: 1, y: 2}");
    }

    #[test]
    fn linked_list_cycles_terminate() {
        let src = "struct node { int v; struct node* next; };\n\
                   int main() {\nstruct node a;\nstruct node b;\n\
                   a.v = 1; a.next = &b;\nb.v = 2; b.next = &a;\nreturn 0;\n}";
        let vm = run_to_line(src, 7);
        let f = current_frame(&vm);
        let a = f.variable("a").unwrap().value();
        // Must not hang or overflow; depth is bounded.
        assert!(a.depth() <= InspectOptions::default().max_depth * 3 + 4);
    }

    #[test]
    fn globals_inspected() {
        let src = "int g = 11;\nchar* name = \"ada\";\n\
                   int main() {\nreturn g;\n}";
        let vm = run_to_line(src, 4);
        let globals = global_variables(&vm);
        assert_eq!(globals.len(), 2);
        assert_eq!(globals[0].name(), "g");
        assert_eq!(globals[0].scope(), Scope::Global);
        assert_eq!(globals[0].value().location(), Location::Global);
        match globals[1].value().content() {
            Content::Primitive(Prim::Str(s)) => assert_eq!(s, "ada"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parent_chain_matches_call_stack() {
        let src = "int inner(int x) {\nreturn x + 1;\n}\n\
                   int outer(int x) {\nreturn inner(x * 2);\n}\n\
                   int main() {\nreturn outer(5);\n}";
        let vm = run_to_line(src, 2);
        let f = current_frame(&vm);
        let chain: Vec<_> = f.chain().map(|fr| fr.name().to_owned()).collect();
        assert_eq!(chain, ["inner", "outer", "main"]);
        assert_eq!(f.depth(), 2);
        // Parameter of inner is visible and bound.
        match f.variable("x").unwrap().value().content() {
            Content::Primitive(Prim::Int(10)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(f.variable("x").unwrap().scope(), Scope::Parameter);
    }

    #[test]
    fn pointer_into_middle_of_heap_block() {
        let src = "int main() {\nint* p = malloc(4 * sizeof(int));\n\
                   p[2] = 99;\nint* q = p + 2;\nreturn *q;\n}";
        let vm = run_to_line(src, 5);
        let f = current_frame(&vm);
        let q = f.variable("q").unwrap().value();
        assert_eq!(q.abstract_type(), AbstractType::Ref);
        let target = q.deref_fully();
        // Interior pointer: single element, not the whole block.
        match target.content() {
            Content::Primitive(Prim::Int(99)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
