//! The flat bytecode the MiniC VM executes, plus the executable [`Program`]
//! container with all the debug metadata the trackers need.

use crate::ast::BinOp;
use crate::typecheck::{HLocal, Intrinsic};
use crate::types::{StructTable, Type};
use std::collections::BTreeSet;

/// Width/kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTy {
    /// 1-byte signed integer (`char`).
    I8,
    /// 4-byte signed integer (`int`).
    I32,
    /// 8-byte signed integer (`long`).
    I64,
    /// 4-byte float.
    F32,
    /// 8-byte float.
    F64,
    /// 8-byte pointer.
    P,
}

impl MemTy {
    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            MemTy::I8 => 1,
            MemTy::I32 | MemTy::F32 => 4,
            MemTy::I64 | MemTy::F64 | MemTy::P => 8,
        }
    }

    /// The access kind for a scalar MiniC type.
    ///
    /// # Panics
    ///
    /// Panics for non-scalar types (the typechecker never sends one).
    pub fn from_type(ty: &Type) -> MemTy {
        match ty {
            Type::Char => MemTy::I8,
            Type::Int => MemTy::I32,
            Type::Long => MemTy::I64,
            Type::Float => MemTy::F32,
            Type::Double => MemTy::F64,
            Type::Ptr(_) => MemTy::P,
            other => panic!("no memory representation for `{other}`"),
        }
    }
}

/// One bytecode operation.
///
/// The VM evaluates expressions on an operand stack of tagged scalars
/// (integer, float, pointer). Store-like ops are the watchpoint hook points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Source-line marker: the VM reports a [`crate::vm::Event::Line`].
    Line(u32),
    /// Push an integer.
    PushI(i64),
    /// Push a float.
    PushF(f64),
    /// Push a pointer.
    PushP(u64),
    /// Push `frame_base + offset`.
    LocalAddr(u64),
    /// Pop an address, push the loaded value.
    Load(MemTy),
    /// Pop value then address, store, push the value back (C assignment
    /// yields the stored value).
    Store(MemTy),
    /// Pop source then destination address, copy `size` bytes.
    MemCopy(u64),
    /// Integer arithmetic/bitwise op on two popped integers.
    IArith(BinOp),
    /// Float arithmetic on two popped floats.
    FArith(BinOp),
    /// Integer (or pointer) comparison; pushes 0/1.
    ICmp(BinOp),
    /// Float comparison; pushes 0/1.
    FCmp(BinOp),
    /// Arithmetic negation (`true` = float operand).
    Neg(bool),
    /// Logical not on any scalar; pushes 0/1.
    Not,
    /// Bitwise not on an integer.
    BitNot,
    /// Integer to float.
    I2F,
    /// Float to integer (truncating, like C).
    F2I,
    /// Truncate an integer to the given width (with sign extension).
    TruncI(MemTy),
    /// Round a double to float precision.
    F2F32,
    /// Reinterpret an integer as a pointer.
    I2P,
    /// Reinterpret a pointer as an integer.
    P2I,
    /// Pop index (integer) then pointer; push `ptr + index * elem`.
    PtrAdd(u64),
    /// Pop index then pointer; push `ptr - index * elem`.
    PtrSub(u64),
    /// Pop two pointers; push `(lhs - rhs) / elem` as integer.
    PtrDiff(u64),
    /// Unconditional jump to code index.
    Jump(usize),
    /// Pop a scalar; jump when it is zero/null.
    JumpIfZero(usize),
    /// Pop a scalar; jump when it is non-zero.
    JumpIfNotZero(usize),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Call the function with the given index; arguments are on the stack.
    Call(usize),
    /// Return; `true` when a return value is on the stack.
    Ret(bool),
    /// Load-modify-store increment/decrement.
    IncDec {
        /// Access kind of the target.
        memty: MemTy,
        /// +1 or -1.
        delta: i64,
        /// Push the new (prefix) or old (postfix) value.
        prefix: bool,
        /// For pointer targets: the pointee size to scale by.
        ptr_step: Option<u64>,
    },
    /// Invoke a built-in with the given argument count.
    Intrinsic(Intrinsic, u8),
    /// No operation.
    Nop,
}

/// Metadata of one compiled function.
#[derive(Debug, Clone)]
pub struct FuncMeta {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Number of leading parameter slots in `locals`.
    pub nparams: usize,
    /// Frame layout (parameters first).
    pub locals: Vec<HLocal>,
    /// Frame size in bytes.
    pub frame_size: u64,
    /// Code index of the function's first op.
    pub entry: usize,
    /// Header line.
    pub line: u32,
    /// Closing-brace line.
    pub end_line: u32,
}

/// Metadata of one global variable.
#[derive(Debug, Clone)]
pub struct GlobalMeta {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Absolute address.
    pub addr: u64,
    /// Declaration line.
    pub line: u32,
}

/// A compiled MiniC program: code, initial globals image, and debug info.
#[derive(Debug, Clone)]
pub struct Program {
    /// Flat code for all functions.
    pub code: Vec<Op>,
    /// Function table; [`Op::Call`] indexes into it.
    pub functions: Vec<FuncMeta>,
    /// Index of `main` in `functions`.
    pub main_index: usize,
    /// Initial contents of the globals segment.
    pub global_image: Vec<u8>,
    /// Global variables (addresses point into the globals segment).
    pub globals: Vec<GlobalMeta>,
    /// Struct layouts (needed to render struct values).
    pub structs: StructTable,
    /// Source file name used in reported locations.
    pub file: String,
    /// Full source text (tools show listings from it).
    pub source: String,
}

impl Program {
    /// Looks a function up by name.
    pub fn function(&self, name: &str) -> Option<(usize, &FuncMeta)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
    }

    /// Looks a global up by name.
    pub fn global(&self, name: &str) -> Option<&GlobalMeta> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// The 1-based source line text, if the line exists.
    pub fn source_line(&self, line: u32) -> Option<&str> {
        self.source.lines().nth(line.saturating_sub(1) as usize)
    }

    /// All lines that carry a [`Op::Line`] marker, i.e. valid breakpoint
    /// targets.
    pub fn breakable_lines(&self) -> BTreeSet<u32> {
        self.code
            .iter()
            .filter_map(|op| match op {
                Op::Line(n) => Some(*n),
                _ => None,
            })
            .collect()
    }

    /// Number of source lines.
    pub fn line_count(&self) -> u32 {
        self.source.lines().count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memty_sizes() {
        assert_eq!(MemTy::I8.size(), 1);
        assert_eq!(MemTy::I32.size(), 4);
        assert_eq!(MemTy::F32.size(), 4);
        assert_eq!(MemTy::I64.size(), 8);
        assert_eq!(MemTy::F64.size(), 8);
        assert_eq!(MemTy::P.size(), 8);
    }

    #[test]
    fn memty_from_type() {
        assert_eq!(MemTy::from_type(&Type::Char), MemTy::I8);
        assert_eq!(MemTy::from_type(&Type::Int), MemTy::I32);
        assert_eq!(MemTy::from_type(&Type::Long), MemTy::I64);
        assert_eq!(MemTy::from_type(&Type::Float), MemTy::F32);
        assert_eq!(MemTy::from_type(&Type::Double), MemTy::F64);
        assert_eq!(MemTy::from_type(&Type::Int.ptr_to()), MemTy::P);
    }

    #[test]
    fn program_lookup_helpers() {
        let program = crate::compile(
            "p.c",
            "int g = 1;\nint helper(int x) { return x; }\nint main() { return helper(g); }",
        )
        .unwrap();
        assert!(program.function("helper").is_some());
        assert!(program.function("nope").is_none());
        assert_eq!(program.global("g").unwrap().ty, Type::Int);
        assert_eq!(program.source_line(1).unwrap(), "int g = 1;");
        assert!(program.breakable_lines().contains(&2));
        assert_eq!(program.line_count(), 3);
        assert_eq!(program.functions[program.main_index].name, "main");
    }
}
