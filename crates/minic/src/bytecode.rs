//! The flat bytecode the MiniC VM executes, plus the executable [`Program`]
//! container with all the debug metadata the trackers need.

use crate::ast::BinOp;
use crate::typecheck::{HLocal, Intrinsic};
use crate::types::{StructTable, Type};
use std::collections::BTreeSet;

/// Width/kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTy {
    /// 1-byte signed integer (`char`).
    I8,
    /// 4-byte signed integer (`int`).
    I32,
    /// 8-byte signed integer (`long`).
    I64,
    /// 4-byte float.
    F32,
    /// 8-byte float.
    F64,
    /// 8-byte pointer.
    P,
}

impl MemTy {
    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            MemTy::I8 => 1,
            MemTy::I32 | MemTy::F32 => 4,
            MemTy::I64 | MemTy::F64 | MemTy::P => 8,
        }
    }

    /// The access kind for a scalar MiniC type.
    ///
    /// # Panics
    ///
    /// Panics for non-scalar types (the typechecker never sends one).
    pub fn from_type(ty: &Type) -> MemTy {
        match ty {
            Type::Char => MemTy::I8,
            Type::Int => MemTy::I32,
            Type::Long => MemTy::I64,
            Type::Float => MemTy::F32,
            Type::Double => MemTy::F64,
            Type::Ptr(_) => MemTy::P,
            other => panic!("no memory representation for `{other}`"),
        }
    }
}

/// One bytecode operation.
///
/// The VM evaluates expressions on an operand stack of tagged scalars
/// (integer, float, pointer). Store-like ops are the watchpoint hook points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Source-line marker: the VM reports a [`crate::vm::Event::Line`].
    Line(u32),
    /// Push an integer.
    PushI(i64),
    /// Push a float.
    PushF(f64),
    /// Push a pointer.
    PushP(u64),
    /// Push `frame_base + offset`.
    LocalAddr(u64),
    /// Pop an address, push the loaded value.
    Load(MemTy),
    /// Pop value then address, store, push the value back (C assignment
    /// yields the stored value).
    Store(MemTy),
    /// Pop source then destination address, copy `size` bytes.
    MemCopy(u64),
    /// Integer arithmetic/bitwise op on two popped integers.
    IArith(BinOp),
    /// Float arithmetic on two popped floats.
    FArith(BinOp),
    /// Integer (or pointer) comparison; pushes 0/1.
    ICmp(BinOp),
    /// Float comparison; pushes 0/1.
    FCmp(BinOp),
    /// Arithmetic negation (`true` = float operand).
    Neg(bool),
    /// Logical not on any scalar; pushes 0/1.
    Not,
    /// Bitwise not on an integer.
    BitNot,
    /// Integer to float.
    I2F,
    /// Float to integer (truncating, like C).
    F2I,
    /// Truncate an integer to the given width (with sign extension).
    TruncI(MemTy),
    /// Round a double to float precision.
    F2F32,
    /// Reinterpret an integer as a pointer.
    I2P,
    /// Reinterpret a pointer as an integer.
    P2I,
    /// Pop index (integer) then pointer; push `ptr + index * elem`.
    PtrAdd(u64),
    /// Pop index then pointer; push `ptr - index * elem`.
    PtrSub(u64),
    /// Pop two pointers; push `(lhs - rhs) / elem` as integer.
    PtrDiff(u64),
    /// Unconditional jump to code index.
    Jump(usize),
    /// Pop a scalar; jump when it is zero/null.
    JumpIfZero(usize),
    /// Pop a scalar; jump when it is non-zero.
    JumpIfNotZero(usize),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Call the function with the given index; arguments are on the stack.
    Call(usize),
    /// Return; `true` when a return value is on the stack.
    Ret(bool),
    /// Load-modify-store increment/decrement.
    IncDec {
        /// Access kind of the target.
        memty: MemTy,
        /// +1 or -1.
        delta: i64,
        /// Push the new (prefix) or old (postfix) value.
        prefix: bool,
        /// For pointer targets: the pointee size to scale by.
        ptr_step: Option<u64>,
    },
    /// Invoke a built-in with the given argument count.
    Intrinsic(Intrinsic, u8),
    /// No operation.
    Nop,
    /// Fused `LocalAddr`+`Load` superinstruction (emitted by the
    /// optimizer, never by codegen): push the value of the local at the
    /// given frame offset.
    LoadLocal(MemTy, u64),
    /// Fused `PushI`+`IArith` superinstruction: integer arithmetic with
    /// an immediate right operand.
    IArithImm(BinOp, i64),
    /// Fused `PushI`+`ICmp` superinstruction: comparison with an
    /// immediate right operand; pushes 0/1.
    ICmpImm(BinOp, i64),
}

/// Requirement on one popped operand, as the VM's tag discipline defines
/// it: `Int`/`Float` are strict (any other tag is a VM panic), `PtrOrInt`
/// admits the integer-zero-as-NULL flows the VM accepts everywhere it
/// pops a pointer, and `Scalar` admits any tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Must be an integer.
    Int,
    /// Must be a float.
    Float,
    /// Must be a pointer or an integer (NULL conversions).
    PtrOrInt,
    /// Any scalar tag.
    Scalar,
}

impl Kind {
    /// The operand requirement for storing a value with access kind `mt`
    /// (the VM's `store` accepts integers in pointer slots, nothing else
    /// cross-tag).
    pub fn for_store(mt: MemTy) -> Kind {
        match mt {
            MemTy::I8 | MemTy::I32 | MemTy::I64 => Kind::Int,
            MemTy::F32 | MemTy::F64 => Kind::Float,
            MemTy::P => Kind::PtrOrInt,
        }
    }
}

/// Tag of one pushed result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Out {
    /// An integer.
    Int,
    /// A float.
    Float,
    /// A pointer.
    Ptr,
    /// The tag a load with this access kind produces.
    Mem(MemTy),
    /// The same tag as popped operand `i` (0 = top of stack before the
    /// op). `Store` re-pushes its value operand; `Dup` pushes its operand
    /// twice.
    Operand(usize),
}

/// The operand-stack effect of one op: what it pops (top of stack first)
/// and what it pushes (bottom first). This is the single table the
/// codegen, the VM (as a debug cross-check), the abstract interpreter and
/// the bytecode verifier all consume; the per-crate match arms it
/// replaced encoded the same facts four times over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackEffect {
    /// Operand requirements, top of stack first.
    pub pops: Vec<Kind>,
    /// Results pushed, in push order.
    pub pushes: Vec<Out>,
}

impl StackEffect {
    fn new(pops: &[Kind], pushes: &[Out]) -> StackEffect {
        StackEffect {
            pops: pops.to_vec(),
            pushes: pushes.to_vec(),
        }
    }

    /// Net change in stack depth.
    pub fn delta(&self) -> i64 {
        self.pushes.len() as i64 - self.pops.len() as i64
    }
}

impl Op {
    /// The stack effect of this op, for every op whose effect does not
    /// depend on the function table. Returns `None` for [`Op::Call`]
    /// (argument count and result come from the callee's signature); use
    /// [`Op::stack_effect_with`] to resolve those too.
    ///
    /// [`Op::Ret`] is described as popping a `Scalar`; the verifier
    /// refines the returned value's tag against the containing function's
    /// declared return type.
    pub fn stack_effect(&self) -> Option<StackEffect> {
        use Kind as K;
        use Op::*;
        use Out as O;
        Some(match *self {
            Line(_) | Jump(_) | Nop | Ret(false) => StackEffect::new(&[], &[]),
            PushI(_) => StackEffect::new(&[], &[O::Int]),
            PushF(_) => StackEffect::new(&[], &[O::Float]),
            PushP(_) | LocalAddr(_) => StackEffect::new(&[], &[O::Ptr]),
            Load(mt) => StackEffect::new(&[K::PtrOrInt], &[O::Mem(mt)]),
            LoadLocal(mt, _) => StackEffect::new(&[], &[O::Mem(mt)]),
            // Pops value then address; pushes the stored value back.
            Store(mt) => StackEffect::new(&[K::for_store(mt), K::PtrOrInt], &[O::Operand(0)]),
            MemCopy(_) => StackEffect::new(&[K::PtrOrInt, K::PtrOrInt], &[]),
            IArith(_) => StackEffect::new(&[K::Int, K::Int], &[O::Int]),
            IArithImm(_, _) => StackEffect::new(&[K::Int], &[O::Int]),
            FArith(_) => StackEffect::new(&[K::Float, K::Float], &[O::Float]),
            ICmp(_) => StackEffect::new(&[K::Scalar, K::Scalar], &[O::Int]),
            ICmpImm(_, _) => StackEffect::new(&[K::Scalar], &[O::Int]),
            FCmp(_) => StackEffect::new(&[K::Float, K::Float], &[O::Int]),
            Neg(true) => StackEffect::new(&[K::Float], &[O::Float]),
            Neg(false) => StackEffect::new(&[K::Int], &[O::Int]),
            Not => StackEffect::new(&[K::Scalar], &[O::Int]),
            BitNot | TruncI(_) => StackEffect::new(&[K::Int], &[O::Int]),
            I2F => StackEffect::new(&[K::Int], &[O::Float]),
            F2I => StackEffect::new(&[K::Float], &[O::Int]),
            F2F32 => StackEffect::new(&[K::Float], &[O::Float]),
            I2P => StackEffect::new(&[K::Int], &[O::Ptr]),
            P2I => StackEffect::new(&[K::PtrOrInt], &[O::Int]),
            // Pop index (strict integer) then pointer.
            PtrAdd(_) | PtrSub(_) => StackEffect::new(&[K::Int, K::PtrOrInt], &[O::Ptr]),
            PtrDiff(_) => StackEffect::new(&[K::PtrOrInt, K::PtrOrInt], &[O::Int]),
            JumpIfZero(_) | JumpIfNotZero(_) | Pop => StackEffect::new(&[K::Scalar], &[]),
            Dup => StackEffect::new(&[K::Scalar], &[O::Operand(0), O::Operand(0)]),
            Ret(true) => StackEffect::new(&[K::Scalar], &[]),
            IncDec { memty, .. } => StackEffect::new(&[K::PtrOrInt], &[O::Mem(memty)]),
            Intrinsic(intr, argc) => {
                let pushes: &[Out] = match intr {
                    crate::typecheck::Intrinsic::Malloc
                    | crate::typecheck::Intrinsic::Calloc
                    | crate::typecheck::Intrinsic::Realloc => &[O::Ptr],
                    crate::typecheck::Intrinsic::Free => &[],
                    crate::typecheck::Intrinsic::Printf
                    | crate::typecheck::Intrinsic::Puts
                    | crate::typecheck::Intrinsic::Putchar => &[O::Int],
                };
                StackEffect {
                    pops: vec![K::Scalar; argc as usize],
                    pushes: pushes.to_vec(),
                }
            }
            Call(_) => return None,
        })
    }

    /// Like [`Op::stack_effect`], resolving [`Op::Call`] against the
    /// function table: arguments are popped right-to-left with the
    /// parameter slots' store requirements, and a non-void callee pushes
    /// one result tagged by its declared return type.
    ///
    /// # Panics
    ///
    /// Panics when a `Call` index is out of bounds — callers validating
    /// untrusted code must bounds-check first (the verifier does).
    pub fn stack_effect_with(&self, functions: &[FuncMeta]) -> StackEffect {
        if let Op::Call(idx) = *self {
            let callee = &functions[idx];
            let pops = callee.locals[..callee.nparams]
                .iter()
                .rev()
                .map(|slot| {
                    if slot.ty.is_scalar() {
                        Kind::for_store(MemTy::from_type(&slot.ty))
                    } else {
                        Kind::Scalar
                    }
                })
                .collect();
            let pushes = match &callee.ret {
                Type::Void => vec![],
                Type::Float | Type::Double => vec![Out::Float],
                // Pointer results may carry integer NULLs; callers only
                // use them in pointer-or-int positions, so `Ptr` is the
                // honest upper bound.
                Type::Ptr(_) => vec![Out::Ptr],
                _ => vec![Out::Int],
            };
            return StackEffect { pops, pushes };
        }
        self.stack_effect()
            .expect("every non-Call op has a context-free effect")
    }

    /// The code-index target of a jump op, if this is one.
    pub fn jump_target(&self) -> Option<usize> {
        match self {
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => Some(*t),
            _ => None,
        }
    }

    /// Mutable access to a jump op's target (codegen patches forward
    /// jumps through this).
    pub fn jump_target_mut(&mut self) -> Option<&mut usize> {
        match self {
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => Some(t),
            _ => None,
        }
    }

    /// Whether control can continue to the next op after this one
    /// executes (false for unconditional jumps and returns).
    pub fn can_fall_through(&self) -> bool {
        !matches!(self, Op::Jump(_) | Op::Ret(_))
    }

    /// Whether this op is an observation barrier: an op at which a
    /// tracker can pause (or that writes inspectable state), so the
    /// optimizer must keep it in place and may not move values across it.
    /// `Line` markers are the stepping/breakpoint hooks; store-like ops
    /// are the watchpoint hooks; calls, returns and intrinsics emit
    /// events and run arbitrary effects.
    pub fn is_observation_barrier(&self) -> bool {
        matches!(
            self,
            Op::Line(_)
                | Op::Store(_)
                | Op::MemCopy(_)
                | Op::IncDec { .. }
                | Op::Call(_)
                | Op::Ret(_)
                | Op::Intrinsic(_, _)
        )
    }

    /// The fewest arguments an intrinsic call can carry without the VM
    /// faulting on a missing argument.
    pub fn intrinsic_min_args(intr: Intrinsic) -> u8 {
        match intr {
            Intrinsic::Calloc | Intrinsic::Realloc => 2,
            Intrinsic::Malloc
            | Intrinsic::Free
            | Intrinsic::Printf
            | Intrinsic::Puts
            | Intrinsic::Putchar => 1,
        }
    }
}

/// Metadata of one compiled function.
#[derive(Debug, Clone)]
pub struct FuncMeta {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Number of leading parameter slots in `locals`.
    pub nparams: usize,
    /// Frame layout (parameters first).
    pub locals: Vec<HLocal>,
    /// Frame size in bytes.
    pub frame_size: u64,
    /// Code index of the function's first op.
    pub entry: usize,
    /// Header line.
    pub line: u32,
    /// Closing-brace line.
    pub end_line: u32,
}

/// Metadata of one global variable.
#[derive(Debug, Clone)]
pub struct GlobalMeta {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Absolute address.
    pub addr: u64,
    /// Declaration line.
    pub line: u32,
}

/// A compiled MiniC program: code, initial globals image, and debug info.
#[derive(Debug, Clone)]
pub struct Program {
    /// Flat code for all functions.
    pub code: Vec<Op>,
    /// Function table; [`Op::Call`] indexes into it.
    pub functions: Vec<FuncMeta>,
    /// Index of `main` in `functions`.
    pub main_index: usize,
    /// Initial contents of the globals segment.
    pub global_image: Vec<u8>,
    /// Global variables (addresses point into the globals segment).
    pub globals: Vec<GlobalMeta>,
    /// Struct layouts (needed to render struct values).
    pub structs: StructTable,
    /// Source file name used in reported locations.
    pub file: String,
    /// Full source text (tools show listings from it).
    pub source: String,
}

impl Program {
    /// Looks a function up by name.
    pub fn function(&self, name: &str) -> Option<(usize, &FuncMeta)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
    }

    /// Looks a global up by name.
    pub fn global(&self, name: &str) -> Option<&GlobalMeta> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// The 1-based source line text, if the line exists.
    pub fn source_line(&self, line: u32) -> Option<&str> {
        self.source.lines().nth(line.saturating_sub(1) as usize)
    }

    /// All lines that carry a [`Op::Line`] marker, i.e. valid breakpoint
    /// targets.
    pub fn breakable_lines(&self) -> BTreeSet<u32> {
        self.code
            .iter()
            .filter_map(|op| match op {
                Op::Line(n) => Some(*n),
                _ => None,
            })
            .collect()
    }

    /// Number of source lines.
    pub fn line_count(&self) -> u32 {
        self.source.lines().count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memty_sizes() {
        assert_eq!(MemTy::I8.size(), 1);
        assert_eq!(MemTy::I32.size(), 4);
        assert_eq!(MemTy::F32.size(), 4);
        assert_eq!(MemTy::I64.size(), 8);
        assert_eq!(MemTy::F64.size(), 8);
        assert_eq!(MemTy::P.size(), 8);
    }

    #[test]
    fn memty_from_type() {
        assert_eq!(MemTy::from_type(&Type::Char), MemTy::I8);
        assert_eq!(MemTy::from_type(&Type::Int), MemTy::I32);
        assert_eq!(MemTy::from_type(&Type::Long), MemTy::I64);
        assert_eq!(MemTy::from_type(&Type::Float), MemTy::F32);
        assert_eq!(MemTy::from_type(&Type::Double), MemTy::F64);
        assert_eq!(MemTy::from_type(&Type::Int.ptr_to()), MemTy::P);
    }

    #[test]
    fn program_lookup_helpers() {
        let program = crate::compile(
            "p.c",
            "int g = 1;\nint helper(int x) { return x; }\nint main() { return helper(g); }",
        )
        .unwrap();
        assert!(program.function("helper").is_some());
        assert!(program.function("nope").is_none());
        assert_eq!(program.global("g").unwrap().ty, Type::Int);
        assert_eq!(program.source_line(1).unwrap(), "int g = 1;");
        assert!(program.breakable_lines().contains(&2));
        assert_eq!(program.line_count(), 3);
        assert_eq!(program.functions[program.main_index].name, "main");
    }
}
