//! The simulated byte-addressable memory of the MiniC virtual machine.
//!
//! The address space mimics a conventional process layout so that teaching
//! tools can show "real" addresses (paper Figs. 6c and 7):
//!
//! ```text
//! 0x000000            NULL page (never mapped; dereference traps)
//! 0x001000  GLOBALS   globals and string literals
//! 0x100000  HEAP      malloc arena, managed by `alloc::Allocator`
//! 0x700000  STACK     grows downward from STACK_TOP
//! 0x800000  STACK_TOP
//! ```
//!
//! All scalars are stored little-endian. Loads and stores are bounds-checked
//! against the segment they fall in; accessing the NULL page or an unmapped
//! address is an error the VM surfaces as a MiniC runtime error.

use std::fmt;

/// The null address.
pub const NULL: u64 = 0;
/// Base address of the globals segment.
pub const GLOBAL_BASE: u64 = 0x1000;
/// Base address of the heap segment.
pub const HEAP_BASE: u64 = 0x10_0000;
/// Lowest valid stack address.
pub const STACK_BASE: u64 = 0x70_0000;
/// One past the highest stack address; initial stack pointer.
pub const STACK_TOP: u64 = 0x80_0000;
/// Heap capacity in bytes.
pub const HEAP_SIZE: u64 = STACK_BASE - HEAP_BASE;

/// An out-of-segment or null access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    /// The offending address.
    pub addr: u64,
    /// Number of bytes of the attempted access.
    pub size: u64,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid memory access of {} byte(s) at {:#x}",
            self.size, self.addr
        )
    }
}

impl std::error::Error for MemError {}

/// Which segment an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Globals and string literals.
    Global,
    /// The malloc arena.
    Heap,
    /// The call stack.
    Stack,
}

/// The VM's memory: three independently grown segments.
#[derive(Debug, Clone)]
pub struct Memory {
    globals: Vec<u8>,
    heap: Vec<u8>,
    stack: Vec<u8>,
}

impl Memory {
    /// Creates a memory with a globals segment of `global_size` bytes
    /// (zero-initialized).
    pub fn new(global_size: u64) -> Self {
        Memory {
            globals: vec![0; global_size as usize],
            heap: Vec::new(),
            stack: vec![0; (STACK_TOP - STACK_BASE) as usize],
        }
    }

    /// Classifies an address without bounds checking the access size.
    pub fn segment_of(addr: u64) -> Option<Segment> {
        if (GLOBAL_BASE..HEAP_BASE).contains(&addr) {
            Some(Segment::Global)
        } else if (HEAP_BASE..STACK_BASE).contains(&addr) {
            Some(Segment::Heap)
        } else if (STACK_BASE..STACK_TOP).contains(&addr) {
            Some(Segment::Stack)
        } else {
            None
        }
    }

    /// Grows the heap segment so that `size` bytes from `HEAP_BASE` are
    /// mapped. Used by the allocator.
    pub fn ensure_heap(&mut self, size: u64) {
        if size as usize > self.heap.len() {
            self.heap.resize(size as usize, 0);
        }
    }

    /// Number of currently mapped heap bytes.
    pub fn heap_len(&self) -> u64 {
        self.heap.len() as u64
    }

    fn slice(&self, addr: u64, size: u64) -> Result<&[u8], MemError> {
        let err = MemError { addr, size };
        let (buf, base) = match Memory::segment_of(addr) {
            Some(Segment::Global) => (&self.globals, GLOBAL_BASE),
            Some(Segment::Heap) => (&self.heap, HEAP_BASE),
            Some(Segment::Stack) => (&self.stack, STACK_BASE),
            None => return Err(err),
        };
        let off = (addr - base) as usize;
        let end = off.checked_add(size as usize).ok_or(err)?;
        buf.get(off..end).ok_or(err)
    }

    fn slice_mut(&mut self, addr: u64, size: u64) -> Result<&mut [u8], MemError> {
        let err = MemError { addr, size };
        let (buf, base) = match Memory::segment_of(addr) {
            Some(Segment::Global) => (&mut self.globals, GLOBAL_BASE),
            Some(Segment::Heap) => (&mut self.heap, HEAP_BASE),
            Some(Segment::Stack) => (&mut self.stack, STACK_BASE),
            None => return Err(err),
        };
        let off = (addr - base) as usize;
        let end = off.checked_add(size as usize).ok_or(err)?;
        buf.get_mut(off..end).ok_or(err)
    }

    /// Reads `size` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails when any byte of the range is unmapped.
    pub fn read_bytes(&self, addr: u64, size: u64) -> Result<&[u8], MemError> {
        self.slice(addr, size)
    }

    /// Writes `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails when any byte of the range is unmapped.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        self.slice_mut(addr, bytes.len() as u64)?
            .copy_from_slice(bytes);
        Ok(())
    }

    /// Copies `size` bytes from `src` to `dst` (regions may not overlap in
    /// practice; a temporary buffer makes overlap safe anyway).
    ///
    /// # Errors
    ///
    /// Fails when either range is unmapped.
    pub fn copy(&mut self, dst: u64, src: u64, size: u64) -> Result<(), MemError> {
        let tmp = self.slice(src, size)?.to_vec();
        self.write_bytes(dst, &tmp)
    }

    /// Reads a signed integer of `size` (1, 4 or 8) bytes, sign-extended.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 4 or 8.
    pub fn read_int(&self, addr: u64, size: u64) -> Result<i64, MemError> {
        let b = self.slice(addr, size)?;
        Ok(match size {
            1 => b[0] as i8 as i64,
            4 => i32::from_le_bytes(b.try_into().unwrap()) as i64,
            8 => i64::from_le_bytes(b.try_into().unwrap()),
            _ => panic!("unsupported integer width {size}"),
        })
    }

    /// Writes the low `size` bytes of `value` (two's complement truncation).
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 4 or 8.
    pub fn write_int(&mut self, addr: u64, size: u64, value: i64) -> Result<(), MemError> {
        match size {
            1 => self.write_bytes(addr, &[(value as u8)]),
            4 => self.write_bytes(addr, &(value as i32).to_le_bytes()),
            8 => self.write_bytes(addr, &value.to_le_bytes()),
            _ => panic!("unsupported integer width {size}"),
        }
    }

    /// Reads an unsigned 64-bit pointer value.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn read_ptr(&self, addr: u64) -> Result<u64, MemError> {
        let b = self.slice(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Writes an unsigned 64-bit pointer value.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn write_ptr(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads an `f32` (4 bytes) or `f64` (8 bytes) as `f64`.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 4 or 8.
    pub fn read_float(&self, addr: u64, size: u64) -> Result<f64, MemError> {
        let b = self.slice(addr, size)?;
        Ok(match size {
            4 => f32::from_le_bytes(b.try_into().unwrap()) as f64,
            8 => f64::from_le_bytes(b.try_into().unwrap()),
            _ => panic!("unsupported float width {size}"),
        })
    }

    /// Writes `value` as `f32` (4 bytes, rounded) or `f64` (8 bytes).
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 4 or 8.
    pub fn write_float(&mut self, addr: u64, size: u64, value: f64) -> Result<(), MemError> {
        match size {
            4 => self.write_bytes(addr, &(value as f32).to_le_bytes()),
            8 => self.write_bytes(addr, &value.to_le_bytes()),
            _ => panic!("unsupported float width {size}"),
        }
    }

    /// Reads a NUL-terminated C string starting at `addr`, capped at `max`
    /// bytes. Non-UTF-8 bytes are replaced.
    ///
    /// # Errors
    ///
    /// Fails when `addr` is unmapped; a missing terminator within the
    /// segment simply truncates at the segment end or at `max`.
    pub fn read_cstring(&self, addr: u64, max: u64) -> Result<String, MemError> {
        // Validate at least the first byte.
        self.slice(addr, 1)?;
        let mut bytes = Vec::new();
        let mut a = addr;
        while (a - addr) < max {
            match self.slice(a, 1) {
                Ok(b) if b[0] != 0 => bytes.push(b[0]),
                _ => break,
            }
            a += 1;
        }
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        let mut m = Memory::new(256);
        m.ensure_heap(1024);
        m
    }

    #[test]
    fn segments_classified() {
        assert_eq!(Memory::segment_of(0), None);
        assert_eq!(Memory::segment_of(GLOBAL_BASE), Some(Segment::Global));
        assert_eq!(Memory::segment_of(HEAP_BASE + 5), Some(Segment::Heap));
        assert_eq!(Memory::segment_of(STACK_TOP - 1), Some(Segment::Stack));
        assert_eq!(Memory::segment_of(STACK_TOP), None);
    }

    #[test]
    fn int_roundtrip_all_widths() {
        let mut m = mem();
        for (size, value) in [(1u64, -5i64), (4, -123456), (8, i64::MIN + 3)] {
            m.write_int(GLOBAL_BASE, size, value).unwrap();
            assert_eq!(m.read_int(GLOBAL_BASE, size).unwrap(), value);
        }
        // Truncation wraps like C.
        m.write_int(GLOBAL_BASE, 1, 300).unwrap();
        assert_eq!(m.read_int(GLOBAL_BASE, 1).unwrap(), 300i64 as i8 as i64);
    }

    #[test]
    fn float_roundtrip() {
        let mut m = mem();
        m.write_float(HEAP_BASE, 8, 3.25).unwrap();
        assert_eq!(m.read_float(HEAP_BASE, 8).unwrap(), 3.25);
        m.write_float(HEAP_BASE, 4, 1.5).unwrap();
        assert_eq!(m.read_float(HEAP_BASE, 4).unwrap(), 1.5);
    }

    #[test]
    fn pointer_roundtrip() {
        let mut m = mem();
        m.write_ptr(STACK_TOP - 8, HEAP_BASE).unwrap();
        assert_eq!(m.read_ptr(STACK_TOP - 8).unwrap(), HEAP_BASE);
    }

    #[test]
    fn null_and_oob_accesses_fail() {
        let mut m = mem();
        assert!(m.read_int(NULL, 4).is_err());
        assert!(m.read_int(0x10, 4).is_err());
        assert!(m.write_int(GLOBAL_BASE + 255, 4, 1).is_err()); // straddles end
        assert!(m.read_int(HEAP_BASE + 1024, 1).is_err()); // beyond mapped heap
        assert!(m.read_int(STACK_TOP, 1).is_err());
    }

    #[test]
    fn cstring_reading() {
        let mut m = mem();
        m.write_bytes(GLOBAL_BASE, b"hello\0world").unwrap();
        assert_eq!(m.read_cstring(GLOBAL_BASE, 100).unwrap(), "hello");
        assert_eq!(m.read_cstring(GLOBAL_BASE + 6, 3).unwrap(), "wor");
        assert!(m.read_cstring(NULL, 10).is_err());
    }

    #[test]
    fn copy_between_segments() {
        let mut m = mem();
        m.write_bytes(GLOBAL_BASE, b"abcd").unwrap();
        m.copy(HEAP_BASE, GLOBAL_BASE, 4).unwrap();
        assert_eq!(m.read_bytes(HEAP_BASE, 4).unwrap(), b"abcd");
    }

    #[test]
    fn heap_grows_on_demand() {
        let mut m = Memory::new(0);
        assert!(m.read_int(HEAP_BASE, 1).is_err());
        m.ensure_heap(16);
        assert_eq!(m.heap_len(), 16);
        assert_eq!(m.read_int(HEAP_BASE, 8).unwrap(), 0);
    }
}
