//! Type checking and lowering to a typed HIR.
//!
//! [`check`] validates a parsed [`TranslationUnit`] and produces a
//! [`CheckedProgram`]: struct layouts, a fully laid-out globals segment
//! (addresses assigned, constant initializers evaluated, string literals
//! interned), per-function frame layouts, and function bodies lowered to a
//! typed HIR in which every lvalue has become an explicit address
//! computation. The bytecode backend ([`crate::codegen`]) is a direct walk
//! of this HIR.
//!
//! Deliberate MiniC restrictions diagnosed here: no struct-by-value
//! parameters/returns, no variable shadowing between nested local scopes,
//! implicit pointer conversions only through `void*`.

use crate::ast::{self, AssignOp, BinOp, Expr, ExprKind, Initializer, Stmt, TranslationUnit, UnOp};
use crate::mem::GLOBAL_BASE;
use crate::types::{round_up, StructTable, Type};
use crate::Error;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// HIR
// ---------------------------------------------------------------------------

/// Result of type checking: everything the backend needs.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    /// Resolved struct layouts.
    pub structs: StructTable,
    /// Global variables with assigned addresses and flattened initializers.
    pub globals: Vec<HGlobal>,
    /// Interned string literals and their addresses.
    pub strings: Vec<(String, u64)>,
    /// Size of the globals segment (variables + string pool).
    pub global_segment_size: u64,
    /// Checked functions; indices are the [`CallTarget::Function`] indices.
    pub functions: Vec<HFunction>,
}

impl CheckedProgram {
    /// Looks a function up by name.
    pub fn function(&self, name: &str) -> Option<(usize, &HFunction)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
    }
}

/// A global variable with a resolved address.
#[derive(Debug, Clone)]
pub struct HGlobal {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Absolute address in the globals segment.
    pub addr: u64,
    /// Constant-initializer writes, as (offset from `addr`) patches.
    pub init: Vec<InitWrite>,
    /// Declaration line.
    pub line: u32,
}

/// One constant write into the initial globals image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitWrite {
    /// Write `value` truncated to `size` bytes at `offset`.
    Int {
        /// Offset from the global's base address.
        offset: u64,
        /// Width in bytes (1, 4 or 8).
        size: u64,
        /// The value.
        value: i64,
    },
    /// Write a float of `size` bytes at `offset`.
    Float {
        /// Offset from the global's base address.
        offset: u64,
        /// Width in bytes (4 or 8).
        size: u64,
        /// The value.
        value: f64,
    },
    /// Write an 8-byte pointer at `offset`.
    Ptr {
        /// Offset from the global's base address.
        offset: u64,
        /// The pointer value (string literal address or 0).
        value: u64,
    },
}

/// A checked function with frame layout and lowered body.
#[derive(Debug, Clone)]
pub struct HFunction {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// The first `nparams` entries of `locals` are the parameters.
    pub nparams: usize,
    /// All locals (parameters first), with frame offsets.
    pub locals: Vec<HLocal>,
    /// Frame size in bytes (16-aligned).
    pub frame_size: u64,
    /// Lowered body.
    pub body: Vec<HStmt>,
    /// Header line.
    pub line: u32,
    /// Closing-brace line.
    pub end_line: u32,
}

/// A local variable slot in a function frame.
#[derive(Debug, Clone)]
pub struct HLocal {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Byte offset from the frame base.
    pub offset: u64,
    /// Declaration line (inspection hides locals not yet declared).
    pub decl_line: u32,
    /// Whether the slot is a parameter.
    pub is_param: bool,
}

/// A lowered statement.
#[derive(Debug, Clone)]
pub struct HStmt {
    /// Source line (step granularity).
    pub line: u32,
    /// The statement's form.
    pub kind: HStmtKind,
}

/// Lowered statement forms. `for` loops are lowered to `While` with a
/// `step` expression so `continue` can jump to the step.
#[derive(Debug, Clone)]
pub enum HStmtKind {
    /// Evaluate and discard.
    Expr(HExpr),
    /// Two-way branch.
    If {
        /// Scalar condition.
        cond: HExpr,
        /// Then branch.
        then_branch: Vec<HStmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<HStmt>,
    },
    /// Loop. `step` runs after the body and on `continue`.
    While {
        /// Scalar condition.
        cond: HExpr,
        /// Body.
        body: Vec<HStmt>,
        /// `for` step expression.
        step: Option<HExpr>,
    },
    /// `do body while (cond);` — condition evaluated after the body.
    DoWhile {
        /// Body (runs at least once).
        body: Vec<HStmt>,
        /// Scalar condition.
        cond: HExpr,
    },
    /// `switch` with C fallthrough; `break` exits, `continue` passes to the
    /// enclosing loop.
    Switch {
        /// Integer scrutinee.
        scrutinee: HExpr,
        /// Arms in source order (label `None` = `default`).
        arms: Vec<(Option<i64>, Vec<HStmt>)>,
    },
    /// Return from the function.
    Return(Option<HExpr>),
    /// Exit the innermost loop.
    Break,
    /// Jump to the innermost loop's step/condition.
    Continue,
    /// A scope block (no codegen significance; kept for line structure).
    Block(Vec<HStmt>),
}

/// A lowered, typed expression.
#[derive(Debug, Clone)]
pub struct HExpr {
    /// Result type.
    pub ty: Type,
    /// Source line.
    pub line: u32,
    /// Form.
    pub kind: HExprKind,
}

impl HExpr {
    fn new(ty: Type, line: u32, kind: HExprKind) -> Self {
        HExpr { ty, line, kind }
    }
}

/// Call targets: user functions (by index) or built-in intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallTarget {
    /// Index into [`CheckedProgram::functions`].
    Function(usize),
    /// A built-in.
    Intrinsic(Intrinsic),
}

/// Built-in functions. `Malloc`/`Calloc`/`Realloc`/`Free` feed the tracking
/// allocator (the paper's `LD_PRELOAD` interposition analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// `void* malloc(long)`
    Malloc,
    /// `void* calloc(long, long)`
    Calloc,
    /// `void* realloc(void*, long)`
    Realloc,
    /// `void free(void*)`
    Free,
    /// `int printf(char*, ...)` — subset of conversions.
    Printf,
    /// `int puts(char*)`
    Puts,
    /// `int putchar(int)`
    Putchar,
}

impl Intrinsic {
    fn by_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "malloc" => Intrinsic::Malloc,
            "calloc" => Intrinsic::Calloc,
            "realloc" => Intrinsic::Realloc,
            "free" => Intrinsic::Free,
            "printf" => Intrinsic::Printf,
            "puts" => Intrinsic::Puts,
            "putchar" => Intrinsic::Putchar,
            _ => return None,
        })
    }
}

/// Lowered expression forms. All lvalues have become address computations;
/// `Load`/`Store` make every memory access explicit.
#[derive(Debug, Clone)]
pub enum HExprKind {
    /// Integer constant (type says width).
    ConstInt(i64),
    /// Float constant.
    ConstFloat(f64),
    /// Pointer constant: string literal address, global address, or NULL.
    ConstPtr(u64),
    /// Address of local slot `usize` (frame base + offset at runtime).
    LocalAddr(usize),
    /// Load through an address expression; result is the pointee type.
    Load(Box<HExpr>),
    /// Scalar store; evaluates to the stored value.
    Store {
        /// Address to store to.
        addr: Box<HExpr>,
        /// Value to store (already converted to the target type).
        value: Box<HExpr>,
    },
    /// Struct assignment: byte copy of `size` bytes.
    CopyStruct {
        /// Destination address.
        dst: Box<HExpr>,
        /// Source address.
        src: Box<HExpr>,
        /// Bytes to copy.
        size: u64,
    },
    /// Arithmetic/bitwise/comparison on a common operand type.
    Binary {
        /// Operator.
        op: BinOp,
        /// The type both operands were converted to.
        operand_ty: Type,
        /// Left operand.
        lhs: Box<HExpr>,
        /// Right operand.
        rhs: Box<HExpr>,
    },
    /// Short-circuit `&&` / `||`; result `int` 0/1.
    Logical {
        /// true for `&&`, false for `||`.
        is_and: bool,
        /// Left operand (scalar).
        lhs: Box<HExpr>,
        /// Right operand (scalar).
        rhs: Box<HExpr>,
    },
    /// Unary op on an arithmetic operand (`Not` accepts scalars).
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<HExpr>,
    },
    /// `ptr ± index*elem_size`.
    PtrAdd {
        /// Pointer operand.
        ptr: Box<HExpr>,
        /// Element index (integer).
        index: Box<HExpr>,
        /// Element size in bytes.
        elem_size: u64,
        /// Whether to subtract instead of add.
        negate: bool,
    },
    /// `(lhs - rhs) / elem_size`, type `long`.
    PtrDiff {
        /// Left pointer.
        lhs: Box<HExpr>,
        /// Right pointer.
        rhs: Box<HExpr>,
        /// Element size in bytes.
        elem_size: u64,
    },
    /// Numeric or pointer cast; `ty` is the destination.
    Cast {
        /// Source type.
        from: Type,
        /// Operand.
        expr: Box<HExpr>,
    },
    /// Function or intrinsic call.
    Call {
        /// Callee.
        target: CallTarget,
        /// Arguments (converted).
        args: Vec<HExpr>,
    },
    /// `cond ? a : b`.
    Ternary {
        /// Scalar condition.
        cond: Box<HExpr>,
        /// Value if nonzero.
        then_expr: Box<HExpr>,
        /// Value if zero.
        else_expr: Box<HExpr>,
    },
    /// `++`/`--` on a scalar lvalue.
    IncDec {
        /// Address of the target.
        addr: Box<HExpr>,
        /// +1 or -1.
        delta: i64,
        /// Prefix (result is new value) or postfix (old value).
        prefix: bool,
        /// `Some(elem_size)` when the target is a pointer.
        elem_size: Option<u64>,
    },
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

/// Type checks a translation unit and lowers it to the HIR.
///
/// # Errors
///
/// Returns [`Error::Type`] describing the first semantic error.
///
/// # Examples
///
/// ```
/// let tokens = minic::lexer::lex("int main() { return 1 + 2; }")?;
/// let unit = minic::parser::parse(tokens)?;
/// let checked = minic::typecheck::check(&unit)?;
/// assert_eq!(checked.functions.len(), 1);
/// # Ok::<(), minic::Error>(())
/// ```
pub fn check(unit: &TranslationUnit) -> Result<CheckedProgram, Error> {
    let mut checker = Checker::new();
    checker.check_unit(unit)?;
    Ok(checker.finish())
}

struct FuncSig {
    ret: Type,
    params: Vec<Type>,
}

struct Checker {
    structs: StructTable,
    globals: Vec<HGlobal>,
    global_names: HashMap<String, usize>,
    next_global_addr: u64,
    strings: Vec<(String, u64)>,
    string_map: HashMap<String, u64>,
    string_base: u64,
    sigs: Vec<FuncSig>,
    sig_names: HashMap<String, usize>,
    functions: Vec<HFunction>,
}

/// Per-function checking state.
struct FuncCx {
    locals: Vec<HLocal>,
    scopes: Vec<HashMap<String, usize>>,
    cur_offset: u64,
    ret: Type,
    /// Nesting of constructs `continue` may target (loops only).
    loop_depth: u32,
    /// Nesting of constructs `break` may target (loops and switches).
    break_depth: u32,
}

fn terr(line: u32, message: impl Into<String>) -> Error {
    Error::Type {
        line,
        message: message.into(),
    }
}

impl Checker {
    fn new() -> Self {
        Checker {
            structs: StructTable::new(),
            globals: Vec::new(),
            global_names: HashMap::new(),
            next_global_addr: GLOBAL_BASE,
            strings: Vec::new(),
            string_map: HashMap::new(),
            string_base: 0,
            sigs: Vec::new(),
            sig_names: HashMap::new(),
            functions: Vec::new(),
        }
    }

    fn finish(self) -> CheckedProgram {
        let end = self
            .strings
            .iter()
            .map(|(s, a)| a + s.len() as u64 + 1)
            .max()
            .unwrap_or(self.string_base);
        CheckedProgram {
            structs: self.structs,
            globals: self.globals,
            strings: self.strings,
            global_segment_size: end - GLOBAL_BASE,
            functions: self.functions,
        }
    }

    /// Validates that a declared type is well-formed (known structs, no
    /// void variables, positive array sizes are enforced by the parser).
    fn validate_type(&self, ty: &Type, line: u32, allow_void: bool) -> Result<(), Error> {
        match ty {
            Type::Void if !allow_void => Err(terr(line, "variable cannot have type void")),
            Type::Void => Ok(()),
            Type::Struct(name) => {
                if self.structs.get(name).is_none() {
                    Err(terr(line, format!("unknown struct `{name}`")))
                } else {
                    Ok(())
                }
            }
            Type::Ptr(inner) => match inner.as_ref() {
                // Pointers to not-yet-defined structs are fine in C; we
                // require the struct to exist somewhere in the unit, which
                // the definition pass has already ensured.
                Type::Struct(name) if self.structs.get(name).is_none() => {
                    Err(terr(line, format!("unknown struct `{name}`")))
                }
                Type::Void | Type::Struct(_) => Ok(()),
                other => self.validate_type(other, line, true),
            },
            Type::Array(elem, n) => {
                if *n == 0 {
                    return Err(terr(line, "array size must be positive"));
                }
                self.validate_type(elem, line, false)
            }
            _ => Ok(()),
        }
    }

    fn intern_string(&mut self, s: &str) -> u64 {
        if let Some(&addr) = self.string_map.get(s) {
            return addr;
        }
        let addr = if let Some((last, a)) = self.strings.last() {
            a + last.len() as u64 + 1
        } else {
            self.string_base
        };
        self.strings.push((s.to_owned(), addr));
        self.string_map.insert(s.to_owned(), addr);
        addr
    }

    fn check_unit(&mut self, unit: &TranslationUnit) -> Result<(), Error> {
        // 1. Struct definitions, in order.
        for def in &unit.structs {
            if self.structs.get(&def.name).is_some() {
                return Err(terr(def.line, format!("duplicate struct `{}`", def.name)));
            }
            // Self-referential pointers are allowed: temporarily allow the
            // tag for pointer fields by checking field types with a probe.
            for (fname, fty) in &def.fields {
                match fty {
                    Type::Ptr(inner) => {
                        if let Type::Struct(n) = inner.as_ref() {
                            if n != &def.name && self.structs.get(n).is_none() {
                                return Err(terr(
                                    def.line,
                                    format!("unknown struct `{n}` in field `{fname}`"),
                                ));
                            }
                        }
                    }
                    Type::Struct(n) if self.structs.get(n).is_none() => {
                        return Err(terr(
                            def.line,
                            format!(
                                "field `{fname}` has incomplete type `struct {n}` \
                                     (define it first or use a pointer)"
                            ),
                        ));
                    }
                    _ => {}
                }
            }
            let layout = self.structs.layout_struct(&def.name, &def.fields);
            self.structs.insert(layout);
        }

        // 2. Global layout.
        for g in &unit.globals {
            if self.global_names.contains_key(&g.name) {
                return Err(terr(g.line, format!("duplicate global `{}`", g.name)));
            }
            self.validate_type(&g.ty, g.line, false)?;
            let align = self.structs.align_of(&g.ty);
            let size = self.structs.size_of(&g.ty);
            let addr = round_up(self.next_global_addr, align);
            self.next_global_addr = addr + size;
            self.global_names.insert(g.name.clone(), self.globals.len());
            self.globals.push(HGlobal {
                name: g.name.clone(),
                ty: g.ty.clone(),
                addr,
                init: Vec::new(),
                line: g.line,
            });
        }
        self.string_base = round_up(self.next_global_addr, 8);

        // 3. Global initializers (may intern strings).
        for (i, g) in unit.globals.iter().enumerate() {
            if let Some(init) = &g.init {
                let ty = self.globals[i].ty.clone();
                let mut writes = Vec::new();
                self.const_init(&ty, init, 0, g.line, &mut writes)?;
                self.globals[i].init = writes;
            }
        }

        // 4. Function signatures.
        for f in &unit.functions {
            if self.sig_names.contains_key(&f.name) {
                return Err(terr(f.line, format!("duplicate function `{}`", f.name)));
            }
            self.validate_type(&f.ret, f.line, true)?;
            if matches!(f.ret, Type::Struct(_) | Type::Array(..)) {
                return Err(terr(
                    f.line,
                    "MiniC does not support returning structs or arrays by value",
                ));
            }
            for (pname, pty) in &f.params {
                self.validate_type(pty, f.line, false)?;
                if matches!(pty, Type::Struct(_)) {
                    return Err(terr(
                        f.line,
                        format!(
                            "parameter `{pname}`: MiniC does not support struct-by-value \
                             parameters (pass a pointer)"
                        ),
                    ));
                }
            }
            self.sig_names.insert(f.name.clone(), self.sigs.len());
            self.sigs.push(FuncSig {
                ret: f.ret.clone(),
                params: f.params.iter().map(|(_, t)| t.clone()).collect(),
            });
        }
        if !self.sig_names.contains_key("main") {
            return Err(terr(1, "program has no `main` function"));
        }

        // 5. Function bodies.
        for f in &unit.functions {
            let lowered = self.check_function(f)?;
            self.functions.push(lowered);
        }
        Ok(())
    }

    // -- constant initializers ---------------------------------------------

    /// Flattens a constant initializer for type `ty` at `offset`.
    fn const_init(
        &mut self,
        ty: &Type,
        init: &Initializer,
        offset: u64,
        line: u32,
        out: &mut Vec<InitWrite>,
    ) -> Result<(), Error> {
        match (ty, init) {
            (Type::Array(elem, n), Initializer::List(items)) => {
                if items.len() > *n {
                    return Err(terr(line, "too many initializers for array"));
                }
                let esize = self.structs.size_of(elem);
                for (i, item) in items.iter().enumerate() {
                    self.const_init(elem, item, offset + i as u64 * esize, line, out)?;
                }
                Ok(())
            }
            (Type::Struct(name), Initializer::List(items)) => {
                let layout = self.structs.get(name).expect("validated").clone();
                if items.len() > layout.fields.len() {
                    return Err(terr(line, "too many initializers for struct"));
                }
                for (item, field) in items.iter().zip(layout.fields.iter()) {
                    self.const_init(&field.ty, item, offset + field.offset, line, out)?;
                }
                Ok(())
            }
            (_, Initializer::List(_)) => Err(terr(line, "brace initializer on a scalar type")),
            (_, Initializer::Expr(e)) => {
                let c = self.const_expr(e)?;
                let w = match (ty, c) {
                    (t, ConstVal::Int(v)) if t.is_integer() => InitWrite::Int {
                        offset,
                        size: self.structs.size_of(t),
                        value: v,
                    },
                    (t, ConstVal::Int(v)) if t.is_float() => InitWrite::Float {
                        offset,
                        size: self.structs.size_of(t),
                        value: v as f64,
                    },
                    (t, ConstVal::Float(v)) if t.is_float() => InitWrite::Float {
                        offset,
                        size: self.structs.size_of(t),
                        value: v,
                    },
                    (Type::Ptr(_), ConstVal::Ptr(p)) => InitWrite::Ptr { offset, value: p },
                    (Type::Ptr(_), ConstVal::Int(0)) => InitWrite::Ptr { offset, value: 0 },
                    (t, _) => {
                        return Err(terr(
                            e.line,
                            format!("initializer is not a constant of type `{t}`"),
                        ))
                    }
                };
                out.push(w);
                Ok(())
            }
        }
    }

    fn const_expr(&mut self, e: &Expr) -> Result<ConstVal, Error> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(ConstVal::Int(*v)),
            ExprKind::FloatLit(v) => Ok(ConstVal::Float(*v)),
            ExprKind::CharLit(c) => Ok(ConstVal::Int(*c as i64)),
            ExprKind::StrLit(s) => Ok(ConstVal::Ptr(self.intern_string(s))),
            ExprKind::Null => Ok(ConstVal::Ptr(0)),
            ExprKind::SizeofType(ty) => {
                self.validate_type(ty, e.line, false)?;
                Ok(ConstVal::Int(self.structs.size_of(ty) as i64))
            }
            ExprKind::Unary {
                op: UnOp::Neg,
                operand,
            } => match self.const_expr(operand)? {
                ConstVal::Int(v) => Ok(ConstVal::Int(v.wrapping_neg())),
                ConstVal::Float(v) => Ok(ConstVal::Float(-v)),
                ConstVal::Ptr(_) => Err(terr(e.line, "cannot negate a pointer constant")),
            },
            ExprKind::Binary { op, lhs, rhs } => {
                let (l, r) = (self.const_expr(lhs)?, self.const_expr(rhs)?);
                match (l, r) {
                    (ConstVal::Int(a), ConstVal::Int(b)) => {
                        let v = match op {
                            BinOp::Add => a.wrapping_add(b),
                            BinOp::Sub => a.wrapping_sub(b),
                            BinOp::Mul => a.wrapping_mul(b),
                            BinOp::Div if b != 0 => a.wrapping_div(b),
                            BinOp::Rem if b != 0 => a.wrapping_rem(b),
                            BinOp::Shl => a.wrapping_shl(b as u32),
                            BinOp::Shr => a.wrapping_shr(b as u32),
                            BinOp::BitAnd => a & b,
                            BinOp::BitOr => a | b,
                            BinOp::BitXor => a ^ b,
                            _ => {
                                return Err(terr(
                                    e.line,
                                    "operator not allowed in constant initializer",
                                ))
                            }
                        };
                        Ok(ConstVal::Int(v))
                    }
                    _ => Err(terr(e.line, "non-integer constant arithmetic")),
                }
            }
            _ => Err(terr(e.line, "initializer is not a compile-time constant")),
        }
    }

    // -- functions -----------------------------------------------------------

    fn check_function(&mut self, f: &ast::FunctionDef) -> Result<HFunction, Error> {
        let mut cx = FuncCx {
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            cur_offset: 0,
            ret: f.ret.clone(),
            loop_depth: 0,
            break_depth: 0,
        };
        for (pname, pty) in &f.params {
            self.declare_local(&mut cx, pname, pty.clone(), f.line, true)?;
        }
        let nparams = f.params.len();
        let body = self.check_block(&mut cx, &f.body)?;
        let frame_size = round_up(cx.cur_offset.max(8), 16);
        Ok(HFunction {
            name: f.name.clone(),
            ret: f.ret.clone(),
            nparams,
            locals: cx.locals,
            frame_size,
            body,
            line: f.line,
            end_line: f.end_line,
        })
    }

    fn declare_local(
        &mut self,
        cx: &mut FuncCx,
        name: &str,
        ty: Type,
        line: u32,
        is_param: bool,
    ) -> Result<usize, Error> {
        self.validate_type(&ty, line, false)?;
        if cx.scopes.iter().any(|s| s.contains_key(name)) {
            return Err(terr(
                line,
                format!("redeclaration of `{name}` (MiniC forbids shadowing)"),
            ));
        }
        let align = self.structs.align_of(&ty);
        let size = self.structs.size_of(&ty);
        let offset = round_up(cx.cur_offset, align);
        cx.cur_offset = offset + size;
        let idx = cx.locals.len();
        cx.locals.push(HLocal {
            name: name.to_owned(),
            ty,
            offset,
            decl_line: line,
            is_param,
        });
        cx.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), idx);
        Ok(idx)
    }

    fn lookup_var(&self, cx: &FuncCx, name: &str) -> Option<VarRef> {
        for scope in cx.scopes.iter().rev() {
            if let Some(&idx) = scope.get(name) {
                return Some(VarRef::Local(idx));
            }
        }
        self.global_names.get(name).map(|&i| VarRef::Global(i))
    }

    fn check_block(&mut self, cx: &mut FuncCx, stmts: &[Stmt]) -> Result<Vec<HStmt>, Error> {
        cx.scopes.push(HashMap::new());
        let result = stmts
            .iter()
            .map(|s| self.check_stmt(cx, s))
            .collect::<Result<Vec<_>, _>>();
        cx.scopes.pop();
        result
    }

    fn check_stmt(&mut self, cx: &mut FuncCx, stmt: &Stmt) -> Result<HStmt, Error> {
        let line = stmt.line();
        let kind = match stmt {
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                let idx = self.declare_local(cx, name, ty.clone(), *line, false)?;
                let mut writes = Vec::new();
                if let Some(init) = init {
                    self.lower_local_init(cx, idx, ty, init, 0, *line, &mut writes)?;
                }
                // A declaration lowers to the sequence of initializing
                // stores, wrapped in a block to keep one statement per line.
                HStmtKind::Block(
                    writes
                        .into_iter()
                        .map(|e| HStmt {
                            line: *line,
                            kind: HStmtKind::Expr(e),
                        })
                        .collect(),
                )
            }
            Stmt::Expr(e) => HStmtKind::Expr(self.rvalue(cx, e)?),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let cond = self.scalar_cond(cx, cond)?;
                let then_branch = self.check_block(cx, then_branch)?;
                let else_branch = match else_branch {
                    Some(b) => self.check_block(cx, b)?,
                    None => Vec::new(),
                };
                HStmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                }
            }
            Stmt::While { cond, body, .. } => {
                let cond = self.scalar_cond(cx, cond)?;
                cx.loop_depth += 1;
                cx.break_depth += 1;
                let body = self.check_block(cx, body)?;
                cx.loop_depth -= 1;
                cx.break_depth -= 1;
                HStmtKind::While {
                    cond,
                    body,
                    step: None,
                }
            }
            Stmt::DoWhile { body, cond, .. } => {
                cx.loop_depth += 1;
                cx.break_depth += 1;
                let body = self.check_block(cx, body)?;
                cx.loop_depth -= 1;
                cx.break_depth -= 1;
                let cond = self.scalar_cond(cx, cond)?;
                HStmtKind::DoWhile { body, cond }
            }
            Stmt::Switch {
                scrutinee, arms, ..
            } => {
                let scrutinee = self.rvalue(cx, scrutinee)?;
                if !scrutinee.ty.is_integer() {
                    return Err(terr(
                        line,
                        format!("switch requires an integer, found `{}`", scrutinee.ty),
                    ));
                }
                let scrutinee = self.convert(scrutinee, &Type::Long, line)?;
                let mut seen: Vec<i64> = Vec::new();
                let mut saw_default = false;
                let mut checked_arms = Vec::with_capacity(arms.len());
                cx.break_depth += 1;
                for (label, body) in arms {
                    match label {
                        Some(k) => {
                            if seen.contains(k) {
                                cx.break_depth -= 1;
                                return Err(terr(line, format!("duplicate case label {k}")));
                            }
                            seen.push(*k);
                        }
                        None => {
                            if saw_default {
                                cx.break_depth -= 1;
                                return Err(terr(line, "duplicate default label"));
                            }
                            saw_default = true;
                        }
                    }
                    let body = match self.check_block(cx, body) {
                        Ok(b) => b,
                        Err(e) => {
                            cx.break_depth -= 1;
                            return Err(e);
                        }
                    };
                    checked_arms.push((*label, body));
                }
                cx.break_depth -= 1;
                HStmtKind::Switch {
                    scrutinee,
                    arms: checked_arms,
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                cx.scopes.push(HashMap::new());
                let init_stmt = init
                    .as_deref()
                    .map(|s| self.check_stmt(cx, s))
                    .transpose()?;
                let cond = match cond {
                    Some(c) => self.scalar_cond(cx, c)?,
                    None => HExpr::new(Type::Int, *line, HExprKind::ConstInt(1)),
                };
                let step = step.as_ref().map(|e| self.rvalue(cx, e)).transpose()?;
                cx.loop_depth += 1;
                cx.break_depth += 1;
                let body = self.check_block(cx, body)?;
                cx.loop_depth -= 1;
                cx.break_depth -= 1;
                cx.scopes.pop();
                let mut outer = Vec::new();
                if let Some(s) = init_stmt {
                    outer.push(s);
                }
                outer.push(HStmt {
                    line: *line,
                    kind: HStmtKind::While { cond, body, step },
                });
                HStmtKind::Block(outer)
            }
            Stmt::Return { value, line } => {
                let value = match (value, &cx.ret) {
                    (None, Type::Void) => None,
                    (None, t) => {
                        return Err(terr(
                            *line,
                            format!("return without value in `{t}` function"),
                        ))
                    }
                    (Some(_), Type::Void) => {
                        return Err(terr(*line, "return with value in void function"))
                    }
                    (Some(e), t) => {
                        let ret_ty = t.clone();
                        let v = self.rvalue(cx, e)?;
                        Some(self.convert(v, &ret_ty, *line)?)
                    }
                };
                HStmtKind::Return(value)
            }
            Stmt::Break { line } => {
                if cx.break_depth == 0 {
                    return Err(terr(*line, "break outside of a loop or switch"));
                }
                HStmtKind::Break
            }
            Stmt::Continue { line } => {
                if cx.loop_depth == 0 {
                    return Err(terr(*line, "continue outside of a loop"));
                }
                HStmtKind::Continue
            }
            Stmt::Block(stmts) => HStmtKind::Block(self.check_block(cx, stmts)?),
        };
        Ok(HStmt { line, kind })
    }

    /// Lowers a local initializer to a list of store expressions.
    #[allow(clippy::too_many_arguments)] // mirrors the initializer shape
    fn lower_local_init(
        &mut self,
        cx: &mut FuncCx,
        local: usize,
        ty: &Type,
        init: &Initializer,
        offset: u64,
        line: u32,
        out: &mut Vec<HExpr>,
    ) -> Result<(), Error> {
        match (ty, init) {
            (Type::Array(elem, n), Initializer::List(items)) => {
                if items.len() > *n {
                    return Err(terr(line, "too many initializers for array"));
                }
                let esize = self.structs.size_of(elem);
                for (i, item) in items.iter().enumerate() {
                    self.lower_local_init(
                        cx,
                        local,
                        elem,
                        item,
                        offset + i as u64 * esize,
                        line,
                        out,
                    )?;
                }
                // C zero-fills the remainder of a partially initialized array.
                for i in items.len()..*n {
                    let zero = self.zero_value(elem, line)?;
                    out.push(self.store_at_local(
                        cx,
                        local,
                        offset + i as u64 * esize,
                        elem,
                        zero,
                        line,
                    ));
                }
                Ok(())
            }
            (Type::Struct(name), Initializer::List(items)) => {
                let layout = self.structs.get(name).expect("validated").clone();
                if items.len() > layout.fields.len() {
                    return Err(terr(line, "too many initializers for struct"));
                }
                for (item, field) in items.iter().zip(layout.fields.iter()) {
                    self.lower_local_init(
                        cx,
                        local,
                        &field.ty,
                        item,
                        offset + field.offset,
                        line,
                        out,
                    )?;
                }
                for field in layout.fields.iter().skip(items.len()) {
                    let zero = self.zero_value(&field.ty, line)?;
                    out.push(self.store_at_local(
                        cx,
                        local,
                        offset + field.offset,
                        &field.ty,
                        zero,
                        line,
                    ));
                }
                Ok(())
            }
            (_, Initializer::List(_)) => Err(terr(line, "brace initializer on a scalar type")),
            (_, Initializer::Expr(e)) => {
                let v = self.rvalue(cx, e)?;
                let v = self.convert(v, ty, line)?;
                out.push(self.store_at_local(cx, local, offset, ty, v, line));
                Ok(())
            }
        }
    }

    fn zero_value(&self, ty: &Type, line: u32) -> Result<HExpr, Error> {
        Ok(match ty {
            t if t.is_integer() => HExpr::new(t.clone(), line, HExprKind::ConstInt(0)),
            t if t.is_float() => HExpr::new(t.clone(), line, HExprKind::ConstFloat(0.0)),
            Type::Ptr(_) => HExpr::new(ty.clone(), line, HExprKind::ConstPtr(0)),
            other => {
                return Err(terr(
                    line,
                    format!("cannot zero-initialize nested `{other}` here"),
                ))
            }
        })
    }

    fn store_at_local(
        &self,
        _cx: &FuncCx,
        local: usize,
        offset: u64,
        ty: &Type,
        value: HExpr,
        line: u32,
    ) -> HExpr {
        let base = HExpr::new(
            Type::Ptr(Box::new(ty.clone())),
            line,
            HExprKind::LocalAddr(local),
        );
        let addr = if offset == 0 {
            base
        } else {
            HExpr::new(
                Type::Ptr(Box::new(ty.clone())),
                line,
                HExprKind::PtrAdd {
                    ptr: Box::new(base),
                    index: Box::new(HExpr::new(
                        Type::Long,
                        line,
                        HExprKind::ConstInt(offset as i64),
                    )),
                    elem_size: 1,
                    negate: false,
                },
            )
        };
        HExpr::new(
            ty.clone(),
            line,
            HExprKind::Store {
                addr: Box::new(addr),
                value: Box::new(value),
            },
        )
    }

    // -- expressions ---------------------------------------------------------

    fn scalar_cond(&mut self, cx: &mut FuncCx, e: &Expr) -> Result<HExpr, Error> {
        let v = self.rvalue(cx, e)?;
        if !v.ty.is_scalar() {
            return Err(terr(
                e.line,
                format!("condition must be scalar, found `{}`", v.ty),
            ));
        }
        Ok(v)
    }

    /// Computes the address of an lvalue. Returns `(addr_expr, value_type)`;
    /// the address expression's type is `Ptr(value_type)`.
    fn lvalue(&mut self, cx: &mut FuncCx, e: &Expr) -> Result<(HExpr, Type), Error> {
        match &e.kind {
            ExprKind::Var(name) => match self.lookup_var(cx, name) {
                Some(VarRef::Local(idx)) => {
                    let ty = cx.locals[idx].ty.clone();
                    Ok((
                        HExpr::new(
                            Type::Ptr(Box::new(ty.clone())),
                            e.line,
                            HExprKind::LocalAddr(idx),
                        ),
                        ty,
                    ))
                }
                Some(VarRef::Global(idx)) => {
                    let g = &self.globals[idx];
                    let ty = g.ty.clone();
                    Ok((
                        HExpr::new(
                            Type::Ptr(Box::new(ty.clone())),
                            e.line,
                            HExprKind::ConstPtr(g.addr),
                        ),
                        ty,
                    ))
                }
                None => Err(terr(e.line, format!("unknown variable `{name}`"))),
            },
            ExprKind::Deref(inner) => {
                let p = self.rvalue(cx, inner)?;
                match p.ty.clone() {
                    Type::Ptr(t) => {
                        if *t == Type::Void {
                            Err(terr(e.line, "cannot dereference a void pointer"))
                        } else {
                            Ok((p, *t))
                        }
                    }
                    other => Err(terr(e.line, format!("cannot dereference `{other}`"))),
                }
            }
            ExprKind::Index { base, index } => {
                let b = self.rvalue(cx, base)?;
                let elem = match b.ty.clone() {
                    Type::Ptr(t) if *t != Type::Void => *t,
                    other => return Err(terr(e.line, format!("cannot index into `{other}`"))),
                };
                let idx = self.rvalue(cx, index)?;
                if !idx.ty.is_integer() {
                    return Err(terr(e.line, "array index must be an integer"));
                }
                let esize = self.structs.size_of(&elem);
                Ok((
                    HExpr::new(
                        Type::Ptr(Box::new(elem.clone())),
                        e.line,
                        HExprKind::PtrAdd {
                            ptr: Box::new(b),
                            index: Box::new(idx),
                            elem_size: esize,
                            negate: false,
                        },
                    ),
                    elem,
                ))
            }
            ExprKind::Member { base, field } => {
                let (baddr, bty) = self.lvalue(cx, base)?;
                self.member_addr(baddr, &bty, field, e.line)
            }
            ExprKind::Arrow { base, field } => {
                // Friendlier diagnostic when `->` is used on a plain struct.
                if let Ok((_, bty)) = self.lvalue(cx, base) {
                    if matches!(bty, Type::Struct(_)) {
                        return Err(terr(
                            e.line,
                            "`->` requires a pointer to struct (did you mean `.`?)",
                        ));
                    }
                }
                let p = self.rvalue(cx, base)?;
                match p.ty.clone() {
                    Type::Ptr(inner) if matches!(*inner, Type::Struct(_)) => {
                        self.member_addr(p, &inner, field, e.line)
                    }
                    other => Err(terr(
                        e.line,
                        format!("`->` requires a pointer to struct, found `{other}`"),
                    )),
                }
            }
            _ => Err(terr(e.line, "expression is not an lvalue")),
        }
    }

    fn member_addr(
        &self,
        baddr: HExpr,
        bty: &Type,
        field: &str,
        line: u32,
    ) -> Result<(HExpr, Type), Error> {
        let Type::Struct(sname) = bty else {
            return Err(terr(line, format!("`.` requires a struct, found `{bty}`")));
        };
        let layout = self.structs.get(sname).expect("validated");
        let Some(f) = layout.field(field) else {
            return Err(terr(line, format!("struct {sname} has no field `{field}`")));
        };
        let fty = f.ty.clone();
        let addr = HExpr::new(
            Type::Ptr(Box::new(fty.clone())),
            line,
            HExprKind::PtrAdd {
                ptr: Box::new(baddr),
                index: Box::new(HExpr::new(
                    Type::Long,
                    line,
                    HExprKind::ConstInt(f.offset as i64),
                )),
                elem_size: 1,
                negate: false,
            },
        );
        Ok((addr, fty))
    }

    /// Loads from an lvalue address, applying array decay (arrays yield
    /// their address as a pointer rather than loading).
    fn load_lvalue(&mut self, addr: HExpr, ty: Type, line: u32) -> Result<HExpr, Error> {
        match ty {
            Type::Array(elem, _) => Ok(HExpr::new(
                Type::Ptr(elem),
                line,
                // The address of the array *is* the decayed pointer; only
                // the static type changes.
                addr.kind,
            )),
            Type::Struct(_) => {
                // Struct rvalues only appear as assignment sources; the
                // caller (`rvalue` for Assign) intercepts that case. Any
                // other use is an error.
                Err(terr(
                    line,
                    "struct value cannot be used here (MiniC passes structs by pointer)",
                ))
            }
            t => Ok(HExpr::new(t, line, HExprKind::Load(Box::new(addr)))),
        }
    }

    /// Implicit conversion of `e` to type `to`.
    fn convert(&self, e: HExpr, to: &Type, line: u32) -> Result<HExpr, Error> {
        if &e.ty == to {
            return Ok(e);
        }
        match (&e.ty, to) {
            (a, b) if a.is_arithmetic() && b.is_arithmetic() => {
                let from = e.ty.clone();
                Ok(HExpr::new(
                    b.clone(),
                    line,
                    HExprKind::Cast {
                        from,
                        expr: Box::new(e),
                    },
                ))
            }
            (Type::Ptr(a), Type::Ptr(b)) if **a == Type::Void || **b == Type::Void => {
                Ok(HExpr::new(to.clone(), line, e.kind))
            }
            (Type::Ptr(a), Type::Ptr(b)) if a == b => Ok(e),
            (from, to) => Err(terr(
                line,
                format!("cannot implicitly convert `{from}` to `{to}`"),
            )),
        }
    }

    /// The usual arithmetic conversions: the common type of two operands.
    fn common_arith(&self, a: &Type, b: &Type) -> Type {
        if a == &Type::Double || b == &Type::Double {
            Type::Double
        } else if a == &Type::Float || b == &Type::Float {
            Type::Float
        } else if a == &Type::Long || b == &Type::Long {
            Type::Long
        } else {
            Type::Int
        }
    }

    fn rvalue(&mut self, cx: &mut FuncCx, e: &Expr) -> Result<HExpr, Error> {
        let line = e.line;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(HExpr::new(Type::Int, line, HExprKind::ConstInt(*v))),
            ExprKind::FloatLit(v) => Ok(HExpr::new(Type::Double, line, HExprKind::ConstFloat(*v))),
            ExprKind::CharLit(c) => {
                Ok(HExpr::new(Type::Char, line, HExprKind::ConstInt(*c as i64)))
            }
            ExprKind::StrLit(s) => {
                let addr = self.intern_string(s);
                Ok(HExpr::new(
                    Type::Char.ptr_to(),
                    line,
                    HExprKind::ConstPtr(addr),
                ))
            }
            ExprKind::Null => Ok(HExpr::new(
                Type::Void.ptr_to(),
                line,
                HExprKind::ConstPtr(0),
            )),
            ExprKind::Var(_)
            | ExprKind::Deref(_)
            | ExprKind::Index { .. }
            | ExprKind::Member { .. }
            | ExprKind::Arrow { .. } => {
                let (addr, ty) = self.lvalue(cx, e)?;
                self.load_lvalue(addr, ty, line)
            }
            ExprKind::AddrOf(inner) => {
                let (addr, ty) = self.lvalue(cx, inner)?;
                Ok(HExpr::new(Type::Ptr(Box::new(ty)), line, addr.kind))
            }
            ExprKind::Assign { op, target, value } => {
                let (addr, ty) = self.lvalue(cx, target)?;
                if let Type::Struct(name) = &ty {
                    if *op != AssignOp::Assign {
                        return Err(terr(line, "compound assignment on a struct"));
                    }
                    let (src, sty) = self.lvalue(cx, value)?;
                    if sty != ty {
                        return Err(terr(
                            line,
                            format!("cannot assign `{sty}` to `struct {name}`"),
                        ));
                    }
                    let size = self.structs.size_of(&ty);
                    return Ok(HExpr::new(
                        Type::Void,
                        line,
                        HExprKind::CopyStruct {
                            dst: Box::new(addr),
                            src: Box::new(src),
                            size,
                        },
                    ));
                }
                if matches!(ty, Type::Array(..)) {
                    return Err(terr(line, "cannot assign to an array"));
                }
                let rhs = self.rvalue(cx, value)?;
                let stored = if *op == AssignOp::Assign {
                    self.convert(rhs, &ty, line)?
                } else {
                    // Compound assignment: load, combine, store.
                    let binop = match op {
                        AssignOp::Add => BinOp::Add,
                        AssignOp::Sub => BinOp::Sub,
                        AssignOp::Mul => BinOp::Mul,
                        AssignOp::Div => BinOp::Div,
                        AssignOp::Rem => BinOp::Rem,
                        AssignOp::Assign => unreachable!("handled above"),
                    };
                    let current =
                        HExpr::new(ty.clone(), line, HExprKind::Load(Box::new(addr.clone())));
                    let combined = self.binary_typed(binop, current, rhs, line)?;
                    self.convert(combined, &ty, line)?
                };
                Ok(HExpr::new(
                    ty,
                    line,
                    HExprKind::Store {
                        addr: Box::new(addr),
                        value: Box::new(stored),
                    },
                ))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.rvalue(cx, lhs)?;
                let r = self.rvalue(cx, rhs)?;
                self.binary_typed(*op, l, r, line)
            }
            ExprKind::Unary { op, operand } => {
                let v = self.rvalue(cx, operand)?;
                match op {
                    UnOp::Neg => {
                        if !v.ty.is_arithmetic() {
                            return Err(terr(line, format!("cannot negate `{}`", v.ty)));
                        }
                        let ty = if v.ty.is_float() {
                            v.ty.clone()
                        } else {
                            self.common_arith(&v.ty, &Type::Int)
                        };
                        let v = self.convert(v, &ty, line)?;
                        Ok(HExpr::new(
                            ty,
                            line,
                            HExprKind::Unary {
                                op: UnOp::Neg,
                                operand: Box::new(v),
                            },
                        ))
                    }
                    UnOp::Not => {
                        if !v.ty.is_scalar() {
                            return Err(terr(line, format!("cannot apply `!` to `{}`", v.ty)));
                        }
                        Ok(HExpr::new(
                            Type::Int,
                            line,
                            HExprKind::Unary {
                                op: UnOp::Not,
                                operand: Box::new(v),
                            },
                        ))
                    }
                    UnOp::BitNot => {
                        if !v.ty.is_integer() {
                            return Err(terr(line, format!("cannot apply `~` to `{}`", v.ty)));
                        }
                        let ty = self.common_arith(&v.ty, &Type::Int);
                        let v = self.convert(v, &ty, line)?;
                        Ok(HExpr::new(
                            ty,
                            line,
                            HExprKind::Unary {
                                op: UnOp::BitNot,
                                operand: Box::new(v),
                            },
                        ))
                    }
                }
            }
            ExprKind::IncDec {
                delta,
                prefix,
                target,
            } => {
                let (addr, ty) = self.lvalue(cx, target)?;
                let elem_size = match &ty {
                    Type::Ptr(p) if **p != Type::Void => Some(self.structs.size_of(p)),
                    Type::Ptr(_) => return Err(terr(line, "cannot increment a void pointer")),
                    t if t.is_arithmetic() => None,
                    other => return Err(terr(line, format!("cannot increment `{other}`"))),
                };
                Ok(HExpr::new(
                    ty,
                    line,
                    HExprKind::IncDec {
                        addr: Box::new(addr),
                        delta: *delta,
                        prefix: *prefix,
                        elem_size,
                    },
                ))
            }
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.scalar_cond(cx, cond)?;
                let t = self.rvalue(cx, then_expr)?;
                let f = self.rvalue(cx, else_expr)?;
                let ty = if t.ty.is_arithmetic() && f.ty.is_arithmetic() {
                    self.common_arith(&t.ty, &f.ty)
                } else if t.ty == f.ty {
                    t.ty.clone()
                } else if t.ty.is_pointer() && f.ty.is_pointer() {
                    // One side void* (e.g. NULL): adopt the other side.
                    if t.ty == Type::Void.ptr_to() {
                        f.ty.clone()
                    } else {
                        t.ty.clone()
                    }
                } else {
                    return Err(terr(
                        line,
                        format!("incompatible ternary arms `{}` and `{}`", t.ty, f.ty),
                    ));
                };
                let t = self.convert(t, &ty, line)?;
                let f = self.convert(f, &ty, line)?;
                Ok(HExpr::new(
                    ty,
                    line,
                    HExprKind::Ternary {
                        cond: Box::new(c),
                        then_expr: Box::new(t),
                        else_expr: Box::new(f),
                    },
                ))
            }
            ExprKind::Call { callee, args } => self.check_call(cx, callee, args, line),
            ExprKind::SizeofType(ty) => {
                self.validate_type(ty, line, false)?;
                Ok(HExpr::new(
                    Type::Long,
                    line,
                    HExprKind::ConstInt(self.structs.size_of(ty) as i64),
                ))
            }
            ExprKind::SizeofExpr(inner) => {
                // `sizeof` only needs the operand's type; prefer the lvalue
                // type so arrays (and structs) report their full size rather
                // than the decayed pointer's.
                let size = match self.lvalue(cx, inner.as_ref()) {
                    Ok((_, lty)) => self.structs.size_of(&lty),
                    Err(_) => {
                        let v = self.rvalue(cx, inner.as_ref())?;
                        self.structs.size_of(&v.ty)
                    }
                };
                Ok(HExpr::new(
                    Type::Long,
                    line,
                    HExprKind::ConstInt(size as i64),
                ))
            }
            ExprKind::Cast { ty, expr } => {
                self.validate_type(ty, line, true)?;
                let v = self.rvalue(cx, expr)?;
                let from = v.ty.clone();
                let ok = (from.is_arithmetic() && ty.is_arithmetic())
                    || (from.is_pointer() && ty.is_pointer())
                    || (from.is_integer() && ty.is_pointer())
                    || (from.is_pointer() && ty.is_integer());
                if !ok {
                    return Err(terr(line, format!("invalid cast from `{from}` to `{ty}`")));
                }
                Ok(HExpr::new(
                    ty.clone(),
                    line,
                    HExprKind::Cast {
                        from,
                        expr: Box::new(v),
                    },
                ))
            }
        }
    }

    fn binary_typed(&mut self, op: BinOp, l: HExpr, r: HExpr, line: u32) -> Result<HExpr, Error> {
        use BinOp::*;
        if op.is_logical() {
            if !l.ty.is_scalar() || !r.ty.is_scalar() {
                return Err(terr(line, "logical operators require scalar operands"));
            }
            return Ok(HExpr::new(
                Type::Int,
                line,
                HExprKind::Logical {
                    is_and: op == And,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                },
            ));
        }
        // Pointer arithmetic.
        match op {
            Add | Sub => {
                let (lp, rp) = (l.ty.is_pointer(), r.ty.is_pointer());
                if lp && rp {
                    if op == Sub {
                        let elem = l.ty.pointee().expect("pointer").clone();
                        if l.ty != r.ty {
                            return Err(terr(line, "pointer difference of incompatible types"));
                        }
                        if elem == Type::Void {
                            return Err(terr(line, "arithmetic on void pointers"));
                        }
                        let esize = self.structs.size_of(&elem);
                        return Ok(HExpr::new(
                            Type::Long,
                            line,
                            HExprKind::PtrDiff {
                                lhs: Box::new(l),
                                rhs: Box::new(r),
                                elem_size: esize,
                            },
                        ));
                    }
                    return Err(terr(line, "cannot add two pointers"));
                }
                if lp || rp {
                    let (ptr, idx) = if lp { (l, r) } else { (r, l) };
                    if op == Sub && !lp {
                        return Err(terr(line, "cannot subtract a pointer from an integer"));
                    }
                    if !idx.ty.is_integer() {
                        return Err(terr(line, "pointer offset must be an integer"));
                    }
                    let elem = ptr.ty.pointee().expect("pointer").clone();
                    if elem == Type::Void {
                        return Err(terr(line, "arithmetic on void pointers"));
                    }
                    let esize = self.structs.size_of(&elem);
                    let ty = ptr.ty.clone();
                    return Ok(HExpr::new(
                        ty,
                        line,
                        HExprKind::PtrAdd {
                            ptr: Box::new(ptr),
                            index: Box::new(idx),
                            elem_size: esize,
                            negate: op == Sub,
                        },
                    ));
                }
            }
            _ => {}
        }
        // Pointer comparison.
        if op.is_comparison() && l.ty.is_pointer() && r.ty.is_pointer() {
            let compatible =
                l.ty == r.ty || l.ty == Type::Void.ptr_to() || r.ty == Type::Void.ptr_to();
            if !compatible {
                return Err(terr(
                    line,
                    format!(
                        "comparison of incompatible pointers `{}` and `{}`",
                        l.ty, r.ty
                    ),
                ));
            }
            return Ok(HExpr::new(
                Type::Int,
                line,
                HExprKind::Binary {
                    op,
                    operand_ty: Type::Void.ptr_to(),
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                },
            ));
        }
        if !l.ty.is_arithmetic() || !r.ty.is_arithmetic() {
            return Err(terr(
                line,
                format!("invalid operands `{}` and `{}`", l.ty, r.ty),
            ));
        }
        if matches!(op, Rem | Shl | Shr | BitAnd | BitOr | BitXor)
            && (l.ty.is_float() || r.ty.is_float())
        {
            return Err(terr(line, "integer operator applied to floating point"));
        }
        let common = self.common_arith(&l.ty, &r.ty);
        let l = self.convert(l, &common, line)?;
        let r = self.convert(r, &common, line)?;
        let result_ty = if op.is_comparison() {
            Type::Int
        } else {
            common.clone()
        };
        Ok(HExpr::new(
            result_ty,
            line,
            HExprKind::Binary {
                op,
                operand_ty: common,
                lhs: Box::new(l),
                rhs: Box::new(r),
            },
        ))
    }

    fn check_call(
        &mut self,
        cx: &mut FuncCx,
        callee: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<HExpr, Error> {
        // User functions shadow intrinsics.
        if let Some(&idx) = self.sig_names.get(callee) {
            let nparams = self.sigs[idx].params.len();
            if args.len() != nparams {
                return Err(terr(
                    line,
                    format!(
                        "`{callee}` expects {nparams} argument(s), got {}",
                        args.len()
                    ),
                ));
            }
            let mut lowered = Vec::with_capacity(args.len());
            for (i, a) in args.iter().enumerate() {
                let v = self.rvalue(cx, a)?;
                let pty = self.sigs[idx].params[i].clone();
                lowered.push(self.convert(v, &pty, line)?);
            }
            let ret = self.sigs[idx].ret.clone();
            return Ok(HExpr::new(
                ret,
                line,
                HExprKind::Call {
                    target: CallTarget::Function(idx),
                    args: lowered,
                },
            ));
        }
        let Some(intr) = Intrinsic::by_name(callee) else {
            return Err(terr(line, format!("unknown function `{callee}`")));
        };
        let mut lowered: Vec<HExpr> = args
            .iter()
            .map(|a| self.rvalue(cx, a))
            .collect::<Result<_, _>>()?;
        let expect = |n: usize| -> Result<(), Error> {
            if args.len() == n {
                Ok(())
            } else {
                Err(terr(
                    line,
                    format!("`{callee}` expects {n} argument(s), got {}", args.len()),
                ))
            }
        };
        let ty = match intr {
            Intrinsic::Malloc => {
                expect(1)?;
                lowered[0] = self.convert(lowered[0].clone(), &Type::Long, line)?;
                Type::Void.ptr_to()
            }
            Intrinsic::Calloc => {
                expect(2)?;
                for a in lowered.iter_mut() {
                    *a = self.convert(a.clone(), &Type::Long, line)?;
                }
                Type::Void.ptr_to()
            }
            Intrinsic::Realloc => {
                expect(2)?;
                if !lowered[0].ty.is_pointer() {
                    return Err(terr(line, "realloc requires a pointer first argument"));
                }
                lowered[1] = self.convert(lowered[1].clone(), &Type::Long, line)?;
                Type::Void.ptr_to()
            }
            Intrinsic::Free => {
                expect(1)?;
                if !lowered[0].ty.is_pointer() {
                    return Err(terr(line, "free requires a pointer argument"));
                }
                Type::Void
            }
            Intrinsic::Printf => {
                if lowered.is_empty() {
                    return Err(terr(line, "printf requires a format string"));
                }
                if lowered[0].ty != Type::Char.ptr_to() {
                    return Err(terr(line, "printf format must be a char*"));
                }
                // Default promotions: float -> double, char -> int.
                for a in lowered.iter_mut().skip(1) {
                    if a.ty == Type::Float {
                        *a = self.convert(a.clone(), &Type::Double, line)?;
                    } else if a.ty == Type::Char {
                        *a = self.convert(a.clone(), &Type::Int, line)?;
                    } else if !a.ty.is_scalar() {
                        return Err(terr(line, "printf arguments must be scalars"));
                    }
                }
                Type::Int
            }
            Intrinsic::Puts => {
                expect(1)?;
                if lowered[0].ty != Type::Char.ptr_to() {
                    return Err(terr(line, "puts requires a char*"));
                }
                Type::Int
            }
            Intrinsic::Putchar => {
                expect(1)?;
                lowered[0] = self.convert(lowered[0].clone(), &Type::Int, line)?;
                Type::Int
            }
        };
        Ok(HExpr::new(
            ty,
            line,
            HExprKind::Call {
                target: CallTarget::Intrinsic(intr),
                args: lowered,
            },
        ))
    }
}

enum VarRef {
    Local(usize),
    Global(usize),
}

enum ConstVal {
    Int(i64),
    Float(f64),
    Ptr(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<CheckedProgram, Error> {
        check(&parse(lex(src).unwrap()).unwrap())
    }

    fn check_ok(src: &str) -> CheckedProgram {
        match check_src(src) {
            Ok(p) => p,
            Err(e) => panic!("expected success, got: {e}"),
        }
    }

    fn check_err(src: &str) -> Error {
        match check_src(src) {
            Ok(_) => panic!("expected a type error"),
            Err(e) => e,
        }
    }

    #[test]
    fn accepts_basic_program() {
        let p =
            check_ok("int add(int a, int b) { return a + b; } int main() { return add(1, 2); }");
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].nparams, 2);
    }

    #[test]
    fn requires_main() {
        let e = check_err("int f() { return 0; }");
        assert!(e.message().contains("main"));
    }

    #[test]
    fn frame_layout_is_aligned() {
        let p = check_ok("int main() { char c; int x; double d; return 0; }");
        let f = &p.functions[0];
        let off: Vec<u64> = f.locals.iter().map(|l| l.offset).collect();
        assert_eq!(off, vec![0, 4, 8]);
        assert_eq!(f.frame_size % 16, 0);
    }

    #[test]
    fn rejects_shadowing() {
        let e = check_err("int main() { int x; { int x; } return 0; }");
        assert!(e.message().contains("shadowing"), "{e}");
    }

    #[test]
    fn rejects_unknown_variable_and_function() {
        assert!(check_err("int main() { return y; }")
            .message()
            .contains("unknown variable"));
        assert!(check_err("int main() { return g(); }")
            .message()
            .contains("unknown function"));
    }

    #[test]
    fn pointer_arithmetic_types() {
        check_ok("int main() { int a[4]; int* p = a; p = p + 1; long d = p - a; return (int)d; }");
        assert!(
            check_err("int main() { int* p; int* q; p = p + q; return 0; }")
                .message()
                .contains("add two pointers")
        );
        assert!(
            check_err("int main() { double x; int* p; p = p + x; return 0; }")
                .message()
                .contains("integer")
        );
    }

    #[test]
    fn void_pointer_rules() {
        check_ok("int main() { int* p = malloc(4); free(p); return 0; }");
        assert!(check_err("int main() { void* p = NULL; return *p; }")
            .message()
            .contains("void"));
        assert!(
            check_err("int main() { void* p = NULL; p = p + 1; return 0; }")
                .message()
                .contains("void")
        );
    }

    #[test]
    fn incompatible_pointer_assignment_rejected() {
        let e = check_err("int main() { int* p; double* q = p; return 0; }");
        assert!(e.message().contains("convert"));
    }

    #[test]
    fn struct_member_resolution() {
        let p = check_ok(
            "struct point { int x; int y; };\n\
             int main() { struct point p; p.x = 1; p.y = p.x + 2; return p.y; }",
        );
        assert!(p.structs.get("point").is_some());
        assert!(
            check_err("struct point { int x; };\nint main() { struct point p; return p.z; }")
                .message()
                .contains("no field")
        );
    }

    #[test]
    fn arrow_requires_pointer() {
        let e = check_err("struct s { int a; };\nint main() { struct s v; return v->a; }");
        assert!(e.message().contains("->"));
    }

    #[test]
    fn self_referential_struct_allowed() {
        check_ok(
            "struct node { int v; struct node* next; };\n\
             int main() { struct node n; n.next = NULL; return n.v; }",
        );
    }

    #[test]
    fn incomplete_struct_field_rejected() {
        let e = check_err(
            "struct a { struct b inner; };\nstruct b { int x; };\nint main() { return 0; }",
        );
        assert!(e.message().contains("incomplete"));
    }

    #[test]
    fn struct_by_value_params_rejected() {
        let e = check_err(
            "struct s { int a; };\nint f(struct s v) { return 0; }\nint main() { return 0; }",
        );
        assert!(e.message().contains("struct-by-value"));
    }

    #[test]
    fn break_continue_outside_loop() {
        assert!(check_err("int main() { break; return 0; }")
            .message()
            .contains("break"));
        assert!(check_err("int main() { continue; return 0; }")
            .message()
            .contains("continue"));
    }

    #[test]
    fn return_type_checking() {
        assert!(check_err("void f() { return 1; } int main() { return 0; }")
            .message()
            .contains("void"));
        assert!(check_err("int main() { return; }")
            .message()
            .contains("without value"));
        check_ok("int main() { return 2.5; }"); // implicit double -> int
    }

    #[test]
    fn global_layout_and_initializers() {
        let p = check_ok(
            "int g = 3;\nchar* msg = \"hi\";\ndouble pi = 3.14;\nint arr[3] = {1, 2};\n\
             int main() { return g; }",
        );
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.globals[0].addr, GLOBAL_BASE);
        assert!(p.globals[0].init.contains(&InitWrite::Int {
            offset: 0,
            size: 4,
            value: 3
        }));
        assert_eq!(p.strings.len(), 1);
        assert!(p.global_segment_size >= 4 + 8 + 8 + 12);
        // arr gets two explicit writes (zero-fill is implicit in the image).
        assert_eq!(p.globals[3].init.len(), 2);
    }

    #[test]
    fn non_constant_global_initializer_rejected() {
        let e = check_err("int g = f(); int main() { return 0; }");
        assert!(e.message().contains("constant"));
    }

    #[test]
    fn sizeof_values() {
        let p = check_ok("int main() { long a = sizeof(int); int arr[5]; long b = sizeof arr; long c = sizeof(double*); return 0; }");
        // Find the ConstInt stores: 4, 20, 8.
        let f = &p.functions[0];
        let mut consts = Vec::new();
        fn walk(stmts: &[HStmt], out: &mut Vec<i64>) {
            for s in stmts {
                match &s.kind {
                    HStmtKind::Expr(e) => collect(e, out),
                    HStmtKind::Block(b) => walk(b, out),
                    _ => {}
                }
            }
        }
        fn collect(e: &HExpr, out: &mut Vec<i64>) {
            if let HExprKind::Store { value, .. } = &e.kind {
                if let HExprKind::Cast { expr, .. } = &value.kind {
                    if let HExprKind::ConstInt(v) = expr.kind {
                        out.push(v);
                    }
                }
                if let HExprKind::ConstInt(v) = value.kind {
                    out.push(v);
                }
            }
        }
        walk(&f.body, &mut consts);
        assert!(consts.contains(&4));
        assert!(consts.contains(&20));
        assert!(consts.contains(&8));
    }

    #[test]
    fn printf_checking() {
        check_ok("int main() { printf(\"%d %s\\n\", 1, \"x\"); return 0; }");
        let e = check_err("int main() { printf(42); return 0; }");
        assert!(e.message().contains("format"));
    }

    #[test]
    fn intrinsic_shadowed_by_user_function() {
        let p = check_ok("int malloc(int x) { return x; } int main() { return malloc(3); }");
        let main = p.function("main").unwrap().1;
        fn first_call(stmts: &[HStmt]) -> Option<CallTarget> {
            for s in stmts {
                if let HStmtKind::Return(Some(e)) = &s.kind {
                    if let HExprKind::Call { target, .. } = &e.kind {
                        return Some(*target);
                    }
                }
            }
            None
        }
        assert_eq!(first_call(&main.body), Some(CallTarget::Function(0)));
    }

    #[test]
    fn for_loop_lowering() {
        let p = check_ok("int main() { int s = 0; for (int i = 0; i < 3; i++) s += i; return s; }");
        let f = &p.functions[0];
        // The for becomes Block[decl-block, While{step: Some}].
        let has_while_with_step = f.body.iter().any(|s| match &s.kind {
            HStmtKind::Block(inner) => inner
                .iter()
                .any(|s| matches!(&s.kind, HStmtKind::While { step: Some(_), .. })),
            _ => false,
        });
        assert!(has_while_with_step);
    }

    #[test]
    fn array_assignment_rejected() {
        let e = check_err("int main() { int a[2]; int b[2]; a = b; return 0; }");
        assert!(e.message().contains("array"));
    }

    #[test]
    fn ternary_common_types() {
        check_ok(
            "int main() { int x = 1; double d = x ? 1 : 2.5; int* p = x ? NULL : &x; return 0; }",
        );
        let e = check_err("int main() { int x; int* p; double d = x ? x : p; return 0; }");
        assert!(e.message().contains("ternary"));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(check_err("int g; int g; int main() { return 0; }")
            .message()
            .contains("duplicate"));
        assert!(
            check_err("int f() { return 0; } int f() { return 1; } int main() { return 0; }")
                .message()
                .contains("duplicate")
        );
        assert!(
            check_err("struct s { int a; }; struct s { int b; }; int main() { return 0; }")
                .message()
                .contains("duplicate")
        );
    }

    #[test]
    fn decl_line_recorded_for_inspection() {
        let p = check_ok("int main() {\n int a = 1;\n int b = 2;\n return a + b;\n}");
        let f = &p.functions[0];
        assert_eq!(f.locals[0].decl_line, 2);
        assert_eq!(f.locals[1].decl_line, 3);
    }
}
