//! Program-level MiniC battery: realistic teaching programs (the kind the
//! paper's tools display) checked end to end by exit code and output.

use minic::vm::Vm;

fn run(src: &str) -> (i64, String) {
    let program = minic::compile("prog.c", src).expect("compiles");
    let mut vm = Vm::new(&program);
    let code = vm.run_to_completion().expect("runs");
    (code, vm.output().to_owned())
}

#[test]
fn insertion_sort_array() {
    let src = "
int main() {
    int a[8] = {5, 2, 8, 1, 9, 3, 7, 4};
    for (int i = 1; i < 8; i++) {
        int key = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            j = j - 1;
        }
        a[j + 1] = key;
    }
    for (int i = 0; i < 8; i++) {
        printf(\"%d \", a[i]);
    }
    int ok = 1;
    for (int i = 1; i < 8; i++) {
        if (a[i - 1] > a[i]) { ok = 0; }
    }
    return ok;
}
";
    let (code, out) = run(src);
    assert_eq!(code, 1);
    assert_eq!(out, "1 2 3 4 5 7 8 9 ");
}

#[test]
fn linked_list_build_sum_free() {
    let src = "
struct node { int v; struct node* next; };
struct node* push(struct node* head, int v) {
    struct node* n = malloc(sizeof(struct node));
    n->v = v;
    n->next = head;
    return n;
}
int main() {
    struct node* head = NULL;
    for (int i = 1; i <= 10; i++) {
        head = push(head, i);
    }
    int sum = 0;
    struct node* cur = head;
    while (cur != NULL) {
        sum += cur->v;
        cur = cur->next;
    }
    while (head != NULL) {
        struct node* next = head->next;
        free(head);
        head = next;
    }
    return sum;
}
";
    assert_eq!(run(src).0, 55);
}

#[test]
fn string_reverse_in_heap() {
    let src = "
int len_of(char* s) {
    int n = 0;
    while (s[n] != '\\0') { n++; }
    return n;
}
int main() {
    char* src = \"easytracker\";
    int n = len_of(src);
    char* dst = malloc(n + 1);
    for (int i = 0; i < n; i++) {
        dst[i] = src[n - 1 - i];
    }
    dst[n] = '\\0';
    printf(\"%s\\n\", dst);
    int ok = dst[0] == 'r' && dst[n - 1] == 'e';
    free(dst);
    return ok;
}
";
    let (code, out) = run(src);
    assert_eq!(code, 1);
    assert_eq!(out, "rekcartysae\n");
}

#[test]
fn matrix_multiply_2d_arrays() {
    let src = "
int main() {
    int a[2][3] = {{1, 2, 3}, {4, 5, 6}};
    int b[3][2] = {{7, 8}, {9, 10}, {11, 12}};
    int c[2][2];
    for (int i = 0; i < 2; i++) {
        for (int j = 0; j < 2; j++) {
            c[i][j] = 0;
            for (int k = 0; k < 3; k++) {
                c[i][j] += a[i][k] * b[k][j];
            }
        }
    }
    return c[0][0] + c[0][1] + c[1][0] + c[1][1];
}
";
    // [[58, 64], [139, 154]] -> 415
    assert_eq!(run(src).0, 415);
}

#[test]
fn collatz_with_long() {
    let src = "
int main() {
    long n = 27;
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; }
        else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}
";
    assert_eq!(run(src).0, 111);
}

#[test]
fn struct_copies_are_deep_for_inline_arrays() {
    let src = "
struct vec { int xs[3]; };
int main() {
    struct vec a;
    a.xs[0] = 1; a.xs[1] = 2; a.xs[2] = 3;
    struct vec b;
    b = a;
    b.xs[0] = 99;
    return a.xs[0] * 100 + b.xs[0];
}
";
    assert_eq!(run(src).0, 199);
}

#[test]
fn pointer_swap_function() {
    let src = "
void swap(int* a, int* b) {
    int t = *a;
    *a = *b;
    *b = t;
}
int main() {
    int x = 3;
    int y = 11;
    swap(&x, &y);
    return x * 100 + y;
}
";
    assert_eq!(run(src).0, 1103);
}

#[test]
fn dynamic_growable_buffer_with_realloc() {
    let src = "
int main() {
    int cap = 2;
    int n = 0;
    int* buf = malloc(cap * sizeof(int));
    for (int i = 0; i < 20; i++) {
        if (n == cap) {
            cap = cap * 2;
            buf = realloc(buf, cap * sizeof(int));
        }
        buf[n] = i * i;
        n++;
    }
    int last = buf[19];
    free(buf);
    return last;
}
";
    assert_eq!(run(src).0, 361);
}

#[test]
fn floats_accumulate_with_precision_rules() {
    let src = "
int main() {
    double total = 0.0;
    for (int i = 1; i <= 100; i++) {
        total += 1.0 / i;
    }
    /* harmonic(100) = 5.187377... */
    return (int)(total * 1000.0);
}
";
    assert_eq!(run(src).0, 5187);
}

#[test]
fn char_classification() {
    let src = "
int is_vowel(char c) {
    return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}
int main() {
    char* text = \"the quick brown fox\";
    int vowels = 0;
    for (int i = 0; text[i] != '\\0'; i++) {
        if (is_vowel(text[i])) { vowels++; }
    }
    return vowels;
}
";
    assert_eq!(run(src).0, 5);
}

#[test]
fn sieve_of_eratosthenes_on_heap() {
    let src = "
int main() {
    int n = 100;
    char* sieve = calloc(n + 1, 1);
    int count = 0;
    for (int p = 2; p <= n; p++) {
        if (sieve[p] == 0) {
            count++;
            for (int m = p * 2; m <= n; m += p) {
                sieve[m] = 1;
            }
        }
    }
    free(sieve);
    return count;
}
";
    assert_eq!(run(src).0, 25);
}

#[test]
fn ternary_and_compound_in_one_expression() {
    let src = "
int main() {
    int score = 73;
    int grade = score >= 90 ? 4 : score >= 80 ? 3 : score >= 70 ? 2 : 1;
    int bonus = 0;
    bonus += grade > 1 ? 10 : 0;
    return grade * 100 + bonus;
}
";
    assert_eq!(run(src).0, 210);
}

#[test]
fn global_state_machine() {
    let src = "
int state = 0;
int transitions = 0;
void feed(char c) {
    transitions++;
    if (state == 0 && c == 'a') { state = 1; }
    else if (state == 1 && c == 'b') { state = 2; }
    else if (c == 'a') { state = 1; }
    else { state = 0; }
}
int main() {
    char* input = \"xaababx\";
    for (int i = 0; input[i] != '\\0'; i++) {
        feed(input[i]);
    }
    return state * 100 + transitions;
}
";
    // Trace: x->0 a->1 a->1 b->2 a->1 b->2 x->0; 7 transitions.
    assert_eq!(run(src).0, 7);
}

#[test]
fn recursion_with_arrays_passed_by_pointer() {
    let src = "
int sum_range(int* a, int lo, int hi) {
    if (lo >= hi) { return 0; }
    if (hi - lo == 1) { return a[lo]; }
    int mid = (lo + hi) / 2;
    return sum_range(a, lo, mid) + sum_range(a, mid, hi);
}
int main() {
    int a[10];
    for (int i = 0; i < 10; i++) { a[i] = i + 1; }
    return sum_range(a, 0, 10);
}
";
    assert_eq!(run(src).0, 55);
}

#[test]
fn shadowing_globals_by_locals_is_allowed() {
    let src = "
int x = 100;
int get_global() { return x; }
int main() {
    int x = 5;
    return x + get_global();
}
";
    assert_eq!(run(src).0, 105);
}

#[test]
fn break_and_continue_in_nested_loops() {
    let src = "
int main() {
    int found_i = -1;
    int found_j = -1;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 1) { continue; }
        for (int j = 0; j < 10; j++) {
            if (i * j == 24) {
                found_i = i;
                found_j = j;
                break;
            }
        }
        if (found_i >= 0) { break; }
    }
    return found_i * 10 + found_j;
}
";
    // First even i with i*j==24: i=4, j=6.
    assert_eq!(run(src).0, 46);
}

#[test]
fn do_while_runs_body_at_least_once() {
    let src = "
int main() {
    int n = 10;
    int iterations = 0;
    do {
        iterations++;
        n = n - 3;
    } while (n > 0);
    int once = 0;
    do { once++; } while (0);
    return iterations * 10 + once;
}
";
    assert_eq!(run(src).0, 41);
}

#[test]
fn do_while_with_break_and_continue() {
    let src = "
int main() {
    int i = 0;
    int sum = 0;
    do {
        i++;
        if (i % 2 == 0) { continue; }
        if (i > 7) { break; }
        sum += i;
    } while (i < 100);
    return sum;
}
";
    // odd i in 1..=7: 1+3+5+7 = 16
    assert_eq!(run(src).0, 16);
}

#[test]
fn switch_dispatch_and_fallthrough() {
    let src = "
int classify(int c) {
    int kind = 0;
    switch (c) {
        case 0:
        case 1:
            kind = 10;
            break;
        case 2:
            kind = 20;
            /* fallthrough */
        case 3:
            kind = kind + 1;
            break;
        default:
            kind = 99;
    }
    return kind;
}
int main() {
    return classify(0) * 1000000 + classify(1) * 10000 +
           classify(2) * 1000 + classify(3) * 100 + classify(7);
}
";
    // classify: 0->10, 1->10, 2->21, 3->1, 7->99
    assert_eq!(
        run(src).0,
        10 * 1_000_000 + 10 * 10_000 + 21 * 1000 + 100 + 99
    );
}

#[test]
fn switch_without_default_skips() {
    let src = "
int main() {
    int x = 5;
    int hit = 0;
    switch (x) {
        case 1: hit = 1; break;
        case 2: hit = 2; break;
    }
    return hit;
}
";
    assert_eq!(run(src).0, 0);
}

#[test]
fn switch_inside_loop_break_vs_continue() {
    let src = "
int main() {
    int total = 0;
    for (int i = 0; i < 6; i++) {
        switch (i % 3) {
            case 0:
                break;          /* breaks the switch, not the loop */
            case 1:
                continue;       /* continues the enclosing loop */
            default:
                total += 100;
        }
        total += 1;             /* runs for i%3 == 0 and 2 */
    }
    return total;
}
";
    // i=0:+1, i=1:skip, i=2:+101, i=3:+1, i=4:skip, i=5:+101 => 204
    assert_eq!(run(src).0, 204);
}

#[test]
fn switch_on_char_labels() {
    let src = "
int main() {
    char* s = \"abca\";
    int a = 0;
    int other = 0;
    for (int i = 0; s[i] != '\\0'; i++) {
        switch (s[i]) {
            case 'a': a++; break;
            default: other++;
        }
    }
    return a * 10 + other;
}
";
    assert_eq!(run(src).0, 22);
}

#[test]
fn switch_type_errors() {
    let bad = minic::compile(
        "t.c",
        "int main() { double d = 1.0; switch (d) { default: break; } return 0; }",
    );
    assert!(bad.unwrap_err().message().contains("integer"));
    let dup = minic::compile(
        "t.c",
        "int main() { switch (1) { case 2: break; case 2: break; } return 0; }",
    );
    assert!(dup.unwrap_err().message().contains("duplicate case"));
    let dupd = minic::compile(
        "t.c",
        "int main() { switch (1) { default: break; default: break; } return 0; }",
    );
    assert!(dupd.unwrap_err().message().contains("duplicate default"));
}
