//! Control-flow graph construction over flat MiniC bytecode.
//!
//! Each compiled function occupies a contiguous code range
//! `[entry, next_entry)`. Basic blocks are delimited by the classic leader
//! rules: the range start, every jump target, and every op following a jump
//! or return. Alongside the graph the builder records, for every op, the
//! source line in effect (from the preceding [`Op::Line`] marker), which is
//! what lets the checker anchor diagnostics to lines.

use minic::bytecode::{Op, Program};
use std::collections::BTreeSet;

/// One basic block: a maximal straight-line op range.
#[derive(Debug, Clone)]
pub struct Block {
    /// First op index (absolute, into `Program::code`).
    pub start: usize,
    /// One past the last op index.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// The control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct FuncCfg {
    /// Index into `Program::functions`.
    pub func_index: usize,
    /// The function's name.
    pub name: String,
    /// Code range `[start, end)` the function occupies.
    pub range: (usize, usize),
    /// Basic blocks; block 0 is the entry block.
    pub blocks: Vec<Block>,
    /// For each op in `range`, the id of the block containing it.
    block_of: Vec<usize>,
    /// For each op in `range`, the source line in effect.
    line_of: Vec<u32>,
}

impl FuncCfg {
    /// The block containing absolute op index `op`.
    pub fn block_of(&self, op: usize) -> usize {
        self.block_of[op - self.range.0]
    }

    /// The source line in effect at absolute op index `op`.
    pub fn line_of(&self, op: usize) -> u32 {
        self.line_of[op - self.range.0]
    }

    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the function has no blocks (never the case for compiled code).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks reachable from the entry, in reverse post-order — the
    /// canonical iteration order for forward dataflow. Unreachable blocks
    /// (e.g. the implicit trailing return after an explicit `return`) are
    /// omitted; analyses treat them as bottom.
    pub fn reverse_post_order(&self) -> Vec<usize> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack = vec![(0usize, 0usize)];
        visited[0] = true;
        while let Some((b, i)) = stack.pop() {
            if i < self.blocks[b].succs.len() {
                stack.push((b, i + 1));
                let s = self.blocks[b].succs[i];
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post
    }
}

/// Builds one [`FuncCfg`] per function of `program`, in function-table order.
pub fn build_cfgs(program: &Program) -> Vec<FuncCfg> {
    // Function ranges: entries sorted; each function runs to the next entry.
    let mut entries: Vec<usize> = program.functions.iter().map(|f| f.entry).collect();
    entries.sort_unstable();
    program
        .functions
        .iter()
        .enumerate()
        .map(|(idx, f)| {
            let start = f.entry;
            let end = entries
                .iter()
                .find(|&&e| e > start)
                .copied()
                .unwrap_or(program.code.len());
            build_func_cfg(program, idx, start, end)
        })
        .collect()
}

fn build_func_cfg(program: &Program, func_index: usize, start: usize, end: usize) -> FuncCfg {
    let code = &program.code[start..end];
    let meta = &program.functions[func_index];

    // Leaders.
    let mut leaders = BTreeSet::new();
    leaders.insert(start);
    for (i, op) in code.iter().enumerate() {
        let at = start + i;
        let branches = op.jump_target().is_some() || !op.can_fall_through();
        if branches {
            if let Some(t) = op.jump_target() {
                if (start..end).contains(&t) {
                    leaders.insert(t);
                }
            }
            if at + 1 < end {
                leaders.insert(at + 1);
            }
        }
    }

    let starts: Vec<usize> = leaders.iter().copied().collect();
    let mut blocks: Vec<Block> = starts
        .iter()
        .enumerate()
        .map(|(i, &s)| Block {
            start: s,
            end: starts.get(i + 1).copied().unwrap_or(end),
            succs: Vec::new(),
            preds: Vec::new(),
        })
        .collect();

    let mut block_of = vec![0usize; end - start];
    for (id, b) in blocks.iter().enumerate() {
        for op in b.start..b.end {
            block_of[op - start] = id;
        }
    }

    // Successor edges from each block's terminating op.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (id, b) in blocks.iter().enumerate() {
        if b.start == b.end {
            continue;
        }
        let last = &program.code[b.end - 1];
        if let Some(t) = last.jump_target() {
            if (start..end).contains(&t) {
                edges.push((id, block_of[t - start]));
            }
        }
        if last.can_fall_through() && b.end < end {
            edges.push((id, block_of[b.end - start]));
        }
    }
    for (from, to) in edges {
        if !blocks[from].succs.contains(&to) {
            blocks[from].succs.push(to);
        }
        if !blocks[to].preds.contains(&from) {
            blocks[to].preds.push(from);
        }
    }

    // Per-op source line from the Line markers, seeded with the header line.
    let mut line_of = vec![0u32; end - start];
    let mut cur = meta.line;
    for (i, op) in code.iter().enumerate() {
        if let Op::Line(n) = op {
            cur = *n;
        }
        line_of[i] = cur;
    }

    FuncCfg {
        func_index,
        name: meta.name.clone(),
        range: (start, end),
        blocks,
        block_of,
        line_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(src: &str) -> Vec<FuncCfg> {
        let program = minic::compile("t.c", src).expect("fixture compiles");
        build_cfgs(&program)
    }

    #[test]
    fn straight_line_is_one_block_per_ret() {
        let cfgs = cfg_of("int main() { int x = 1; return x; }");
        let main = &cfgs[0];
        assert_eq!(main.name, "main");
        // The explicit return plus the implicit trailing return each end a
        // block; no block has a branch.
        assert!(main.blocks.iter().all(|b| b.succs.len() <= 1));
    }

    #[test]
    fn if_else_diamond_has_join_block() {
        let cfgs = cfg_of("int main() { int x = 0; if (x) { x = 1; } else { x = 2; } return x; }");
        let main = &cfgs[0];
        // Some block must have two successors (the branch) and some block two
        // predecessors (the join).
        assert!(main.blocks.iter().any(|b| b.succs.len() == 2));
        assert!(main.blocks.iter().any(|b| b.preds.len() == 2));
    }

    #[test]
    fn loop_creates_back_edge() {
        let cfgs = cfg_of("int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }");
        let main = &cfgs[0];
        let back_edge = main
            .blocks
            .iter()
            .enumerate()
            .any(|(id, b)| b.succs.iter().any(|&s| s <= id));
        assert!(back_edge, "while loop must produce a back edge");
    }

    #[test]
    fn ranges_partition_the_code() {
        let cfgs =
            cfg_of("int add(int a, int b) { return a + b; }\nint main() { return add(1, 2); }");
        assert_eq!(cfgs.len(), 2);
        let mut ranges: Vec<_> = cfgs.iter().map(|c| c.range).collect();
        ranges.sort_unstable();
        assert_eq!(
            ranges[0].1, ranges[1].0,
            "function ranges must be contiguous"
        );
    }

    #[test]
    fn line_tracking_follows_markers() {
        let cfgs = cfg_of("int main() {\n  int x = 1;\n  return x;\n}");
        let main = &cfgs[0];
        let (start, end) = main.range;
        let lines: BTreeSet<u32> = (start..end).map(|op| main.line_of(op)).collect();
        assert!(lines.contains(&2) && lines.contains(&3));
    }

    #[test]
    fn reverse_post_order_starts_at_entry() {
        let cfgs = cfg_of("int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }");
        let rpo = cfgs[0].reverse_post_order();
        assert_eq!(rpo[0], 0);
        assert!(rpo.len() <= cfgs[0].len());
        // Every reachable block appears exactly once.
        let unique: BTreeSet<_> = rpo.iter().collect();
        assert_eq!(unique.len(), rpo.len());
    }
}
