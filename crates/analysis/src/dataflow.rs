//! The dataflow engine: bit-set worklist solvers for the classic analyses
//! the checker composes — dominators, reaching definitions, live variables,
//! and the "may be overwritten before read" analysis behind dead-store
//! detection.
//!
//! All solvers operate on a [`crate::cfg::FuncCfg`] plus per-block gen/kill
//! (or use/def) sets supplied by the caller, so they are independent of how
//! accesses were discovered.

use crate::cfg::FuncCfg;

/// A fixed-width bit set over `0..len` used as the dataflow fact domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over a universe of `len` elements.
    pub fn empty(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a universe of `len` elements.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::empty(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Inserts element `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes element `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether element `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Iterates over the present elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.contains(i))
    }
}

/// Immediate dominators, one per block (`None` for the entry block and for
/// unreachable blocks). Computed with the Cooper–Harvey–Kennedy iterative
/// scheme over reverse post-order.
pub fn dominators(cfg: &FuncCfg) -> Vec<Option<usize>> {
    let rpo = cfg.reverse_post_order();
    let mut order = vec![usize::MAX; cfg.len()];
    for (i, &b) in rpo.iter().enumerate() {
        order[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; cfg.len()];
    idom[0] = Some(0); // sentinel: entry "dominated by itself" during iteration
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new = None;
            for &p in &cfg.blocks[b].preds {
                if idom[p].is_none() {
                    continue; // unreachable or not yet processed
                }
                new = Some(match new {
                    None => p,
                    Some(cur) => intersect(&idom, &order, cur, p),
                });
            }
            if let Some(n) = new {
                if idom[b] != Some(n) {
                    idom[b] = Some(n);
                    changed = true;
                }
            }
        }
    }
    idom[0] = None; // the entry has no immediate dominator
    idom
}

fn intersect(idom: &[Option<usize>], order: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order[a] > order[b] {
            a = idom[a].expect("processed block has an idom");
        }
        while order[b] > order[a] {
            b = idom[b].expect("processed block has an idom");
        }
    }
    a
}

/// Whether block `a` dominates block `b` under the `idom` tree.
pub fn dominates(idom: &[Option<usize>], a: usize, b: usize) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur] {
            Some(next) if next != cur => cur = next,
            _ => return false,
        }
    }
}

/// Forward may-analysis: which definition sites reach each block entry.
///
/// `ndefs` is the size of the definition universe; `gen`/`kill` give, per
/// block, the definitions generated in the block (downward-exposed) and the
/// definitions killed by it. Returns the in-set per block.
pub fn reaching_definitions(
    cfg: &FuncCfg,
    ndefs: usize,
    gen: &[BitSet],
    kill: &[BitSet],
    entry_in: &BitSet,
) -> Vec<BitSet> {
    let rpo = cfg.reverse_post_order();
    let mut ins = vec![BitSet::empty(ndefs); cfg.len()];
    let mut outs = vec![BitSet::empty(ndefs); cfg.len()];
    ins[0] = entry_in.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            if b != 0 {
                let mut new_in = BitSet::empty(ndefs);
                for &p in &cfg.blocks[b].preds {
                    new_in.union_with(&outs[p]);
                }
                if new_in != ins[b] {
                    ins[b] = new_in;
                }
            }
            let mut out = ins[b].clone();
            out.subtract(&kill[b]);
            out.union_with(&gen[b]);
            if out != outs[b] {
                outs[b] = out;
                changed = true;
            }
        }
    }
    ins
}

/// Backward may-analysis: which variables are live out of each block.
///
/// `nvars` is the variable universe; `use_` holds the upward-exposed uses,
/// `def` the variables defined (assigned) in the block before any use.
/// Returns the live-out set per block.
pub fn liveness(cfg: &FuncCfg, nvars: usize, use_: &[BitSet], def: &[BitSet]) -> Vec<BitSet> {
    let mut live_in = vec![BitSet::empty(nvars); cfg.len()];
    let mut live_out = vec![BitSet::empty(nvars); cfg.len()];
    let rpo = cfg.reverse_post_order();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().rev() {
            let mut out = BitSet::empty(nvars);
            for &s in &cfg.blocks[b].succs {
                out.union_with(&live_in[s]);
            }
            let mut inn = out.clone();
            inn.subtract(&def[b]);
            inn.union_with(&use_[b]);
            if out != live_out[b] {
                live_out[b] = out;
                changed = true;
            }
            if inn != live_in[b] {
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    live_out
}

/// Backward may-analysis for dead stores: variable `v` is in the result at a
/// block entry when **some** path starting there touches `v` with a write
/// before any read (so a store just before that point *may* be overwritten
/// unobserved). `first_write`/`first_read` give, per block, the variables
/// whose first access inside the block is a write resp. a read.
///
/// This is deliberately a *may* variant (union join) rather than the
/// must-dead complement of liveness: the runtime sanitizer traps whenever
/// the concrete path overwrites an unread store, so the static answer has
/// to cover every such path, not just paths that all agree.
pub fn may_overwrite(
    cfg: &FuncCfg,
    nvars: usize,
    first_write: &[BitSet],
    first_read: &[BitSet],
) -> Vec<BitSet> {
    let mut ow_in = vec![BitSet::empty(nvars); cfg.len()];
    let mut ow_out = vec![BitSet::empty(nvars); cfg.len()];
    let rpo = cfg.reverse_post_order();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().rev() {
            let mut out = BitSet::empty(nvars);
            for &s in &cfg.blocks[b].succs {
                out.union_with(&ow_in[s]);
            }
            // Transfer: first-write vars are overwritten here; first-read
            // vars are observed here; everything else passes through.
            let mut inn = out.clone();
            inn.subtract(&first_read[b]);
            inn.union_with(&first_write[b]);
            if out != ow_out[b] {
                ow_out[b] = out;
                changed = true;
            }
            if inn != ow_in[b] {
                ow_in[b] = inn;
                changed = true;
            }
        }
    }
    ow_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfgs;

    fn main_cfg(src: &str) -> FuncCfg {
        let program = minic::compile("t.c", src).expect("fixture compiles");
        build_cfgs(&program)
            .into_iter()
            .find(|c| c.name == "main")
            .unwrap()
    }

    #[test]
    fn bitset_basics() {
        let mut a = BitSet::empty(70);
        a.insert(0);
        a.insert(69);
        assert!(a.contains(0) && a.contains(69) && !a.contains(33));
        let mut b = BitSet::empty(70);
        b.insert(33);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 33, 69]);
        a.subtract(&b);
        assert!(!a.contains(33));
        let full = BitSet::full(70);
        assert_eq!(full.iter().count(), 70);
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let cfg = main_cfg("int main() { int i = 0; while (i < 9) { i = i + 1; } return i; }");
        let idom = dominators(&cfg);
        for b in cfg.reverse_post_order() {
            assert!(dominates(&idom, 0, b), "entry must dominate block {b}");
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let cfg = main_cfg("int main() { int x = 0; if (x) { x = 1; } else { x = 2; } return x; }");
        let idom = dominators(&cfg);
        let branch = (0..cfg.len())
            .find(|&b| cfg.blocks[b].succs.len() == 2)
            .expect("branch block");
        let join = (0..cfg.len())
            .find(|&b| cfg.blocks[b].preds.len() == 2)
            .expect("join block");
        // The join's immediate dominator chain reaches the branch without
        // passing through either arm.
        assert!(dominates(&idom, branch, join));
        for &arm in &cfg.blocks[branch].succs {
            if arm != join {
                assert!(
                    !dominates(&idom, arm, join),
                    "arm {arm} must not dominate join"
                );
            }
        }
    }

    #[test]
    fn reaching_definitions_joins_both_arms() {
        // Two defs of the same variable in the two arms: both reach the join.
        let cfg = main_cfg("int main() { int x = 0; if (x) { x = 1; } else { x = 2; } return x; }");
        // Build a tiny universe by hand: def 0 in one arm, def 1 in the other.
        let branch = (0..cfg.len())
            .find(|&b| cfg.blocks[b].succs.len() == 2)
            .unwrap();
        let join = (0..cfg.len())
            .find(|&b| cfg.blocks[b].preds.len() == 2)
            .unwrap();
        let arms: Vec<usize> = cfg.blocks[branch].succs.clone();
        let mut gen = vec![BitSet::empty(2); cfg.len()];
        let kill = vec![BitSet::empty(2); cfg.len()];
        gen[arms[0]].insert(0);
        gen[arms[1]].insert(1);
        let ins = reaching_definitions(&cfg, 2, &gen, &kill, &BitSet::empty(2));
        assert!(ins[join].contains(0) && ins[join].contains(1));
    }

    #[test]
    fn liveness_flows_backward_through_loop() {
        let cfg = main_cfg("int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }");
        // One variable (id 0) read in the loop header: it must be live out of
        // the entry block.
        let header = (0..cfg.len())
            .find(|&b| cfg.blocks[b].succs.len() == 2)
            .expect("loop header");
        let mut use_ = vec![BitSet::empty(1); cfg.len()];
        let def = vec![BitSet::empty(1); cfg.len()];
        use_[header].insert(0);
        let live_out = liveness(&cfg, 1, &use_, &def);
        assert!(
            live_out[0].contains(0),
            "var used in loop header is live out of entry"
        );
    }

    #[test]
    fn may_overwrite_unions_paths() {
        // One arm overwrites before reading, the other reads first: the
        // may-overwrite answer at the branch must include the variable.
        let cfg =
            main_cfg("int main() { int x = 0; if (x) { x = 1; } else { x = x + 2; } return x; }");
        let branch = (0..cfg.len())
            .find(|&b| cfg.blocks[b].succs.len() == 2)
            .unwrap();
        let arms: Vec<usize> = cfg.blocks[branch].succs.clone();
        let mut fw = vec![BitSet::empty(1); cfg.len()];
        let mut fr = vec![BitSet::empty(1); cfg.len()];
        fw[arms[0]].insert(0);
        fr[arms[1]].insert(0);
        let ow = may_overwrite(&cfg, 1, &fw, &fr);
        assert!(ow[branch].contains(0), "overwrite on one path is enough");
    }
}
