//! Abstract interpretation over the bytecode's operand stack.
//!
//! MiniC bytecode addresses locals through `LocalAddr` followed (possibly
//! much later) by `Load`/`Store`, so knowing *which* slot an access touches
//! requires simulating the operand stack symbolically. The interpreter runs
//! each function's CFG to a fixpoint over a small abstract domain and then
//! replays the stable facts once to
//!
//! 1. resolve every `Load`/`Store`/`IncDec` to the scalar local slot it
//!    touches (the [`FuncSummary::accesses`] table the bit-set dataflow
//!    passes consume),
//! 2. compute which slots *escape* (their address flows somewhere the
//!    analysis cannot follow),
//! 3. emit the heap diagnostics — use-after-free, double-free,
//!    out-of-bounds, leak — that need pointer provenance.
//!
//! The domain is deliberately tiny: known integer constants (for pointer
//! arithmetic with literal indices), exact local-slot addresses, and heap
//! pointers tagged with their allocation site and, when known, byte offset.
//! Everything else is `Top`. Structured codegen guarantees matching stack
//! heights at join points; if a function ever violates that, the
//! interpreter bails out and reports nothing for it.

use crate::cfg::FuncCfg;
use minic::bytecode::{MemTy, Op, Program};
use minic::typecheck::Intrinsic;
use minic::types::Type;
use state::{Diagnostic, DiagnosticKind};
use std::collections::{BTreeMap, BTreeSet};

/// One tracked scalar local slot of a function.
#[derive(Debug, Clone)]
pub struct SlotInfo {
    /// The variable's source name.
    pub name: String,
    /// Byte offset from the frame base.
    pub offset: u64,
    /// Size of the scalar in bytes.
    pub size: u64,
    /// Whether the slot is a parameter (parameters are born initialized).
    pub is_param: bool,
}

/// How an op touches a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The op loads from the slot.
    Read,
    /// The op stores to the slot.
    Write,
    /// The op does both (`IncDec`).
    ReadWrite,
}

/// One heap allocation site (a `malloc`/`calloc`/`realloc` op).
#[derive(Debug, Clone)]
pub struct SiteInfo {
    /// Absolute op index of the allocating intrinsic.
    pub op: usize,
    /// Source line of the allocation.
    pub line: u32,
    /// Block size in bytes, when the argument folds to a constant.
    pub size: Option<u64>,
    /// Whether the pointer escapes the function (returned, passed to a
    /// call, or stored to untracked memory) — escaped sites are exempt
    /// from leak reporting.
    pub escaped: bool,
}

/// Everything the abstract interpreter learned about one function.
#[derive(Debug, Clone, Default)]
pub struct FuncSummary {
    /// Tracked scalar slots, in frame-layout order.
    pub slots: Vec<SlotInfo>,
    /// Op index → (slot index, access kind) for resolved local accesses.
    pub accesses: BTreeMap<usize, (usize, AccessKind)>,
    /// Indices of slots whose address escapes; excluded from the
    /// uninitialized-read and dead-store analyses.
    pub escaped: BTreeSet<usize>,
    /// Heap allocation sites of the function.
    pub sites: Vec<SiteInfo>,
    /// Heap diagnostics (use-after-free, double-free, out-of-bounds, leak).
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the interpreter bailed out (stack-height mismatch); all
    /// tables are empty then.
    pub bailed: bool,
}

/// Abstract value on the simulated operand stack / in tracked slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AVal {
    /// Known integer constant.
    Const(i64),
    /// Exact address of tracked slot `i` (frame base + its offset).
    Slot(usize),
    /// Pointer derived from heap site `s`, at a known byte offset when
    /// `off` is `Some`.
    Heap { site: usize, off: Option<i64> },
    /// Anything else.
    Top,
}

impl AVal {
    fn join(a: AVal, b: AVal) -> AVal {
        match (a, b) {
            (x, y) if x == y => x,
            (AVal::Heap { site: s1, .. }, AVal::Heap { site: s2, .. }) if s1 == s2 => AVal::Heap {
                site: s1,
                off: None,
            },
            _ => AVal::Top,
        }
    }
}

/// Per-site heap state as a may-bitmask (join is bitwise or).
const H_NOT: u8 = 1; // may be not-yet-allocated
const H_ALLOC: u8 = 2; // may be allocated and live
const H_FREED: u8 = 4; // may be freed

#[derive(Debug, Clone, PartialEq, Eq)]
struct Fact {
    stack: Vec<AVal>,
    /// Abstract value *stored in* each tracked slot.
    vals: Vec<AVal>,
    /// May-state per allocation site.
    heap: Vec<u8>,
}

impl Fact {
    fn join(mut self, other: &Fact) -> Option<Fact> {
        if self.stack.len() != other.stack.len() {
            return None;
        }
        for (a, b) in self.stack.iter_mut().zip(&other.stack) {
            *a = AVal::join(*a, *b);
        }
        for (a, b) in self.vals.iter_mut().zip(&other.vals) {
            *a = AVal::join(*a, *b);
        }
        for (a, b) in self.heap.iter_mut().zip(&other.heap) {
            *a |= *b;
        }
        Some(self)
    }
}

/// Builds the tracked-slot table for a function: scalar locals only, keyed
/// by exact frame offset.
pub fn slot_table(program: &Program, func_index: usize) -> Vec<SlotInfo> {
    program.functions[func_index]
        .locals
        .iter()
        .filter(|l| l.ty.is_scalar())
        .map(|l| SlotInfo {
            name: l.name.clone(),
            offset: l.offset,
            size: l.ty.scalar_size(),
            is_param: l.is_param,
        })
        .collect()
}

/// Runs the abstract interpreter over one function.
pub fn interpret(program: &Program, cfg: &FuncCfg) -> FuncSummary {
    let slots = slot_table(program, cfg.func_index);
    let by_offset: BTreeMap<u64, usize> = slots
        .iter()
        .enumerate()
        .map(|(i, s)| (s.offset, i))
        .collect();

    // Allocation sites: allocating intrinsics in this function's range.
    let (start, end) = cfg.range;
    let mut sites = Vec::new();
    let mut site_of_op = BTreeMap::new();
    for op in start..end {
        if let Op::Intrinsic(Intrinsic::Malloc | Intrinsic::Calloc | Intrinsic::Realloc, _) =
            program.code[op]
        {
            site_of_op.insert(op, sites.len());
            sites.push(SiteInfo {
                op,
                line: cfg.line_of(op),
                size: None,
                escaped: false,
            });
        }
    }

    let entry_fact = Fact {
        stack: Vec::new(),
        vals: vec![AVal::Top; slots.len()],
        heap: vec![H_NOT; sites.len()],
    };

    let mut summary = FuncSummary {
        slots,
        sites,
        ..FuncSummary::default()
    };

    // Fixpoint over block in-facts. Escapes and site sizes only grow, so
    // they are accumulated across iterations.
    let rpo = cfg.reverse_post_order();
    let mut ins: Vec<Option<Fact>> = vec![None; cfg.len()];
    ins[0] = Some(entry_fact);
    let mut changed = true;
    let mut ctx = Ctx {
        program,
        cfg,
        by_offset: &by_offset,
        site_of_op: &site_of_op,
        summary: &mut summary,
        emit: false,
        seen: BTreeSet::new(),
    };
    while changed {
        changed = false;
        for &b in &rpo {
            let Some(fact) = ins[b].clone() else { continue };
            let out = match ctx.transfer_block(b, fact) {
                Some(out) => out,
                None => {
                    return bail(ctx.summary);
                }
            };
            for &s in &cfg.blocks[b].succs {
                let joined = match &ins[s] {
                    None => Some(out.clone()),
                    Some(cur) => match out.clone().join(cur) {
                        None => return bail(ctx.summary),
                        Some(j) => Some(j),
                    },
                };
                if joined != ins[s] {
                    ins[s] = joined;
                    changed = true;
                }
            }
        }
    }

    // Emit pass over the stable facts: fill the access table and report
    // heap diagnostics, deduplicated by (kind, line).
    ctx.emit = true;
    for &b in &rpo {
        if let Some(fact) = ins[b].clone() {
            if ctx.transfer_block(b, fact).is_none() {
                return bail(ctx.summary);
            }
        }
    }
    summary
}

fn bail(summary: &mut FuncSummary) -> FuncSummary {
    FuncSummary {
        bailed: true,
        slots: std::mem::take(&mut summary.slots),
        ..FuncSummary::default()
    }
}

struct Ctx<'a> {
    program: &'a Program,
    cfg: &'a FuncCfg,
    by_offset: &'a BTreeMap<u64, usize>,
    site_of_op: &'a BTreeMap<usize, usize>,
    summary: &'a mut FuncSummary,
    emit: bool,
    seen: BTreeSet<(DiagnosticKind, u32)>,
}

impl Ctx<'_> {
    fn report(&mut self, kind: DiagnosticKind, line: u32, message: String) {
        if self.emit && self.seen.insert((kind, line)) {
            self.summary.diagnostics.push(Diagnostic::new(
                kind,
                line,
                self.cfg.name.clone(),
                message,
            ));
        }
    }

    fn escape_slot(&mut self, v: AVal) {
        if let AVal::Slot(i) = v {
            self.summary.escaped.insert(i);
        }
    }

    fn escape_site(&mut self, v: AVal) {
        if let AVal::Heap { site, .. } = v {
            self.summary.sites[site].escaped = true;
        }
    }

    /// Marks a popped value as flowing somewhere opaque: local addresses
    /// and heap pointers both escape.
    fn escape_value(&mut self, v: AVal) {
        self.escape_slot(v);
        self.escape_site(v);
    }

    fn record_access(&mut self, op: usize, slot: usize, kind: AccessKind) {
        if self.emit {
            self.summary.accesses.insert(op, (slot, kind));
        }
    }

    /// Checks a memory access through abstract address `addr`, reporting
    /// use-after-free and out-of-bounds against the heap state.
    fn check_heap_access(&mut self, fact: &Fact, addr: AVal, size: u64, line: u32, what: &str) {
        let AVal::Heap { site, off } = addr else {
            return;
        };
        let info = &self.summary.sites[site];
        if fact.heap[site] & H_FREED != 0 {
            self.report(
                DiagnosticKind::UseAfterFree,
                line,
                format!(
                    "{what} through pointer into block freed earlier (allocated at line {})",
                    info.line
                ),
            );
            return;
        }
        if let (Some(o), Some(block)) = (off, info.size) {
            if o < 0 || (o as u64).saturating_add(size) > block {
                self.report(
                    DiagnosticKind::OutOfBounds,
                    line,
                    format!(
                        "{what} at byte offset {o} of a {block}-byte block (allocated at line {})",
                        info.line
                    ),
                );
            }
        }
    }

    /// Abstractly executes one block, returning the out-fact, or `None` on
    /// a stack-height violation.
    fn transfer_block(&mut self, b: usize, mut fact: Fact) -> Option<Fact> {
        let block = &self.cfg.blocks[b];
        for at in block.start..block.end {
            if !self.step_op(at, &mut fact)? {
                break; // Ret: rest of block (if any) is dead
            }
        }
        Some(fact)
    }

    /// Executes one op; returns `Some(false)` when the op ends the function
    /// (return), `None` on stack underflow (malformed code).
    fn step_op(&mut self, at: usize, fact: &mut Fact) -> Option<bool> {
        use Op::*;
        let line = self.cfg.line_of(at);
        let pop = |fact: &mut Fact| fact.stack.pop();
        match self.program.code[at] {
            Line(_) | Nop => {}
            PushI(v) => fact.stack.push(AVal::Const(v)),
            PushF(_) | PushP(_) => fact.stack.push(AVal::Top),
            LocalAddr(off) => {
                let v = match self.by_offset.get(&off) {
                    Some(&i) => AVal::Slot(i),
                    // Interior of an aggregate (array/struct): untracked.
                    None => AVal::Top,
                };
                fact.stack.push(v);
            }
            Load(mt) => {
                let addr = pop(fact)?;
                let loaded = match addr {
                    AVal::Slot(i) => {
                        self.record_access(at, i, AccessKind::Read);
                        fact.vals[i]
                    }
                    _ => {
                        self.check_heap_access(fact, addr, mt.size(), line, "load");
                        AVal::Top
                    }
                };
                fact.stack.push(loaded);
            }
            Store(mt) => {
                let value = pop(fact)?;
                let addr = pop(fact)?;
                match addr {
                    AVal::Slot(i) => {
                        self.record_access(at, i, AccessKind::Write);
                        fact.vals[i] = value;
                        // Storing a local's address or a heap pointer into a
                        // *tracked* slot keeps it visible to the analysis —
                        // no escape.
                    }
                    _ => {
                        self.check_heap_access(fact, addr, mt.size(), line, "store");
                        // The stored value flows into memory the analysis
                        // does not model.
                        self.escape_value(value);
                    }
                }
                fact.stack.push(value);
            }
            MemCopy(size) => {
                let src = pop(fact)?;
                let dst = pop(fact)?;
                self.check_heap_access(fact, src, size, line, "copy-read");
                self.check_heap_access(fact, dst, size, line, "copy-write");
                self.escape_slot(src);
            }
            IArith(op) => {
                let b = pop(fact)?;
                let a = pop(fact)?;
                self.escape_value(a);
                self.escape_value(b);
                fact.stack.push(fold_iarith(op, a, b));
            }
            FArith(_) | ICmp(_) | FCmp(_) | PtrDiff(_) => {
                // Comparisons and float arithmetic neither move pointers nor
                // leak addresses into memory.
                pop(fact)?;
                pop(fact)?;
                fact.stack.push(AVal::Top);
            }
            Neg(_) | Not | BitNot | I2F | F2I | F2F32 => {
                pop(fact)?;
                fact.stack.push(AVal::Top);
            }
            TruncI(mt) => {
                let v = pop(fact)?;
                fact.stack.push(match v {
                    AVal::Const(c) => AVal::Const(match mt {
                        MemTy::I8 => c as i8 as i64,
                        MemTy::I32 => c as i32 as i64,
                        _ => c,
                    }),
                    _ => AVal::Top,
                });
            }
            I2P => {
                let v = pop(fact)?;
                fact.stack.push(match v {
                    AVal::Const(0) => AVal::Const(0),
                    _ => AVal::Top,
                });
            }
            P2I => {
                let v = pop(fact)?;
                self.escape_value(v);
                fact.stack.push(AVal::Top);
            }
            PtrAdd(elem) => {
                let idx = pop(fact)?;
                let p = pop(fact)?;
                fact.stack.push(self.ptr_step(p, idx, elem as i64));
            }
            PtrSub(elem) => {
                let idx = pop(fact)?;
                let p = pop(fact)?;
                fact.stack.push(self.ptr_step(p, idx, -(elem as i64)));
            }
            Jump(_) => {}
            JumpIfZero(_) | JumpIfNotZero(_) => {
                pop(fact)?;
            }
            Dup => {
                let v = *fact.stack.last()?;
                fact.stack.push(v);
            }
            Pop => {
                pop(fact)?;
            }
            Call(idx) => {
                let callee = &self.program.functions[idx];
                for _ in 0..callee.nparams {
                    let v = pop(fact)?;
                    // The callee may store, free or retain the pointer.
                    self.escape_value(v);
                    if let AVal::Heap { site, .. } = v {
                        fact.heap[site] |= H_FREED | H_ALLOC;
                    }
                }
                if callee.ret != Type::Void {
                    fact.stack.push(AVal::Top);
                }
            }
            Ret(has_value) => {
                if has_value {
                    let v = pop(fact)?;
                    self.escape_value(v);
                }
                // Leak check: any site still (possibly) live at this return
                // that never escaped is unreclaimable.
                for s in 0..fact.heap.len() {
                    if fact.heap[s] & H_ALLOC != 0 && !self.summary.sites[s].escaped {
                        let alloc_line = self.summary.sites[s].line;
                        self.report(
                            DiagnosticKind::Leak,
                            alloc_line,
                            format!("heap block allocated here is never freed (function returns at line {line})"),
                        );
                    }
                }
                return Some(false);
            }
            IncDec { memty, .. } => {
                let addr = pop(fact)?;
                match addr {
                    AVal::Slot(i) => {
                        self.record_access(at, i, AccessKind::ReadWrite);
                        fact.vals[i] = AVal::Top;
                    }
                    _ => {
                        self.check_heap_access(fact, addr, memty.size(), line, "update");
                    }
                }
                fact.stack.push(AVal::Top);
            }
            Intrinsic(intr, argc) => {
                self.step_intrinsic(at, intr, argc as usize, fact, line)?;
            }
            LoadLocal(_, off) => {
                // Fused LocalAddr+Load: same facts as the two-op sequence.
                let v = match self.by_offset.get(&off) {
                    Some(&i) => {
                        self.record_access(at, i, AccessKind::Read);
                        fact.vals[i]
                    }
                    None => AVal::Top,
                };
                fact.stack.push(v);
            }
            IArithImm(op, imm) => {
                let a = pop(fact)?;
                self.escape_value(a);
                fact.stack.push(fold_iarith(op, a, AVal::Const(imm)));
            }
            ICmpImm(..) => {
                pop(fact)?;
                fact.stack.push(AVal::Top);
            }
        }
        Some(true)
    }

    fn ptr_step(&mut self, p: AVal, idx: AVal, elem: i64) -> AVal {
        match (p, idx) {
            (AVal::Heap { site, off }, AVal::Const(i)) => AVal::Heap {
                site,
                off: off.map(|o| o + i.wrapping_mul(elem)),
            },
            (AVal::Heap { site, .. }, _) => AVal::Heap { site, off: None },
            _ => {
                // Arithmetic on a local's address (or an unknown pointer):
                // the result is untrackable and the slot must be treated as
                // exposed.
                self.escape_value(p);
                AVal::Top
            }
        }
    }

    fn step_intrinsic(
        &mut self,
        at: usize,
        intr: Intrinsic,
        argc: usize,
        fact: &mut Fact,
        line: u32,
    ) -> Option<()> {
        let mut args = Vec::with_capacity(argc);
        for _ in 0..argc {
            args.push(fact.stack.pop()?);
        }
        args.reverse();
        match intr {
            Intrinsic::Malloc | Intrinsic::Calloc | Intrinsic::Realloc => {
                let site = self.site_of_op[&at];
                let size = match intr {
                    Intrinsic::Malloc => match args[0] {
                        AVal::Const(n) if n >= 0 => Some(n as u64),
                        _ => None,
                    },
                    Intrinsic::Calloc => match (args[0], args[1]) {
                        (AVal::Const(n), AVal::Const(sz)) if n >= 0 && sz >= 0 => {
                            Some((n as u64).saturating_mul(sz as u64))
                        }
                        _ => None,
                    },
                    Intrinsic::Realloc => {
                        // The old block is released (its pointer dangles).
                        if let AVal::Heap { site: old, .. } = args[0] {
                            fact.heap[old] = (fact.heap[old] & !H_ALLOC) | H_FREED;
                        }
                        match args[1] {
                            AVal::Const(n) if n >= 0 => Some(n as u64),
                            _ => None,
                        }
                    }
                    _ => unreachable!(),
                };
                // The site's size is a per-site constant: conflicting sizes
                // collapse to unknown.
                let info = &mut self.summary.sites[site];
                info.size = match (info.size, size) {
                    (None, s) => s,
                    (Some(a), Some(b)) if a == b => Some(a),
                    _ => None,
                };
                fact.heap[site] = H_ALLOC;
                fact.stack.push(AVal::Heap { site, off: Some(0) });
            }
            Intrinsic::Free => {
                match args[0] {
                    AVal::Heap { site, .. } => {
                        if fact.heap[site] & H_FREED != 0 {
                            let alloc_line = self.summary.sites[site].line;
                            self.report(
                                DiagnosticKind::DoubleFree,
                                line,
                                format!("block allocated at line {alloc_line} may already be freed here"),
                            );
                        }
                        fact.heap[site] = H_FREED;
                    }
                    AVal::Const(0) => {} // free(NULL) is a no-op
                    other => self.escape_value(other),
                }
            }
            Intrinsic::Printf | Intrinsic::Puts | Intrinsic::Putchar => {
                // Output intrinsics read their arguments but neither retain
                // nor free them; a dangling pointer argument is still a use.
                for &a in &args {
                    if let AVal::Heap { site, .. } = a {
                        if fact.heap[site] & H_FREED != 0 {
                            let alloc_line = self.summary.sites[site].line;
                            self.report(
                                DiagnosticKind::UseAfterFree,
                                line,
                                format!(
                                    "freed block (allocated at line {alloc_line}) passed to output"
                                ),
                            );
                        }
                    }
                    self.escape_slot(a);
                }
                fact.stack.push(AVal::Top);
            }
        }
        Some(())
    }
}

fn fold_iarith(op: minic::ast::BinOp, a: AVal, b: AVal) -> AVal {
    use minic::ast::BinOp;
    let (AVal::Const(x), AVal::Const(y)) = (a, b) else {
        return AVal::Top;
    };
    match op {
        BinOp::Add => AVal::Const(x.wrapping_add(y)),
        BinOp::Sub => AVal::Const(x.wrapping_sub(y)),
        BinOp::Mul => AVal::Const(x.wrapping_mul(y)),
        BinOp::Div if y != 0 => AVal::Const(x.wrapping_div(y)),
        BinOp::Rem if y != 0 => AVal::Const(x.wrapping_rem(y)),
        _ => AVal::Top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfgs;

    fn summarize(src: &str) -> FuncSummary {
        let program = minic::compile("t.c", src).expect("fixture compiles");
        let cfgs = build_cfgs(&program);
        let main = cfgs.iter().find(|c| c.name == "main").unwrap();
        interpret(&program, main)
    }

    fn kinds(s: &FuncSummary) -> Vec<DiagnosticKind> {
        s.diagnostics.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_program_is_quiet() {
        let s = summarize(
            "int main() { long* p = malloc(16); p[0] = 4; long v = p[0]; free(p); return (int)v; }",
        );
        assert!(s.diagnostics.is_empty(), "got {:?}", s.diagnostics);
        assert!(!s.bailed);
    }

    #[test]
    fn use_after_free_via_alias() {
        let s = summarize(
            "int main() { long* p = malloc(16); long* q = p; free(q); return (int)p[0]; }",
        );
        assert!(
            kinds(&s).contains(&DiagnosticKind::UseAfterFree),
            "{:?}",
            s.diagnostics
        );
    }

    #[test]
    fn double_free_reported_once() {
        let s = summarize("int main() { long* p = malloc(16); free(p); free(p); return 0; }");
        let dfs: Vec<_> = s
            .diagnostics
            .iter()
            .filter(|d| d.kind == DiagnosticKind::DoubleFree)
            .collect();
        assert_eq!(dfs.len(), 1, "{:?}", s.diagnostics);
    }

    #[test]
    fn constant_out_of_bounds_index() {
        let s = summarize("int main() { long* p = malloc(16); p[3] = 1; free(p); return 0; }");
        assert!(
            kinds(&s).contains(&DiagnosticKind::OutOfBounds),
            "{:?}",
            s.diagnostics
        );
    }

    #[test]
    fn leaked_block_reported_at_alloc_line() {
        let s = summarize("int main() {\n  long* p = malloc(16);\n  return 0;\n}");
        let leak = s
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagnosticKind::Leak)
            .expect("leak diagnostic");
        assert_eq!(leak.span, 2);
    }

    #[test]
    fn conditional_free_is_may_double_free() {
        let s = summarize(
            "int main() { long c = 0; long* p = malloc(16); if (c) { free(p); } free(p); return 0; }",
        );
        let k = kinds(&s);
        assert!(
            k.contains(&DiagnosticKind::DoubleFree),
            "{:?}",
            s.diagnostics
        );
    }

    #[test]
    fn escaped_pointer_suppresses_leak() {
        let s = summarize(
            "int sink(long* p) { return (int)p[0]; }\nint main() { long* p = malloc(16); p[0] = 1; return sink(p); }",
        );
        assert!(
            !kinds(&s).contains(&DiagnosticKind::Leak),
            "{:?}",
            s.diagnostics
        );
    }

    #[test]
    fn address_taken_slot_escapes() {
        let s = summarize(
            "int use(long* p) { return (int)p[0]; }\nint main() { long x = 1; int r = use(&x); return r; }",
        );
        let xi = s.slots.iter().position(|sl| sl.name == "x").unwrap();
        assert!(s.escaped.contains(&xi));
    }

    #[test]
    fn access_table_resolves_slots() {
        let s = summarize("int main() { long a = 1; long b = a; return (int)b; }");
        let reads = s
            .accesses
            .values()
            .filter(|(_, k)| *k == AccessKind::Read)
            .count();
        let writes = s
            .accesses
            .values()
            .filter(|(_, k)| *k == AccessKind::Write)
            .count();
        assert!(reads >= 2 && writes >= 2, "reads={reads} writes={writes}");
    }
}
