//! Bytecode verifier: proves a [`Program`] cannot drive the VM into a
//! panic before running an op of it.
//!
//! The VM trusts codegen completely — its fast paths `expect` a non-empty
//! operand stack, `unreachable!` on tag confusion, and index the function
//! table unchecked. That trust is fine for code straight out of
//! [`minic::compile`], but the optimizer rewrites programs and the MI
//! surface can load them from untrusted sources, so this module re-proves
//! the invariants the VM assumes:
//!
//! 1. **Structure** — jump targets stay inside the containing function,
//!    `Call` indices are in bounds, intrinsic argument counts meet each
//!    intrinsic's minimum, operator payloads respect the VM's partial
//!    matches (no comparison `BinOp` inside `IArith`, only
//!    `Add/Sub/Mul/Div` inside `FArith`, integer widths in `TruncI`,
//!    `IncDec`'s `ptr_step` present exactly for pointer targets), and
//!    local-slot offsets stay inside the frame.
//! 2. **Stack discipline** — a worklist meet over each function's CFG
//!    computes the abstract operand stack (depth + tag per entry) at
//!    every reachable program point: no underflow, no tag the VM's
//!    `pop_int`/`pop_float`/`pop_ptr` would fault on, agreeing depths at
//!    every join, a correctly-tagged return value for the function's
//!    declared type, and no fall-through past the function's last op.
//! 3. **Debug metadata** — function entries and frame layouts, global
//!    addresses inside the globals image, and `Line` markers naming real
//!    source lines (the breakpoint surface must not advertise lines that
//!    do not exist).
//!
//! The tag lattice is deliberately the VM's, not C's: `pop_ptr` accepts
//! integers (NULL flows), stores into pointer slots accept integers, and
//! `ICmp` compares any two scalars — so the verifier tracks
//! `Int`/`Float`/`Ptr` plus the joins `IntPtr` (integer-or-pointer, fine
//! wherever a pointer is fine) and `Any`. Strict-integer and strict-float
//! contexts reject the joined tags: a value that *might* be a pointer at
//! run time must never reach `pop_int`.
//!
//! The pinned soundness direction (enforced by the mutation fuzz in
//! `tests/verifier_fuzz.rs`): **verifier-accepts ⊆ VM-safe**. A clean
//! verdict means the VM cannot panic on this code; runtime `Error`s
//! (division by zero, invalid memory access) remain legal outcomes.

use crate::cfg::{self, FuncCfg};
use minic::bytecode::{FuncMeta, Kind, MemTy, Op, Out, Program};
use minic::mem::GLOBAL_BASE;
use std::collections::VecDeque;
use std::fmt;

/// One verification failure, anchored to an op when the defect has a
/// program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Containing function, when the defect is inside one.
    pub function: Option<String>,
    /// Absolute code index, when the defect is a specific op.
    pub at: Option<usize>,
    /// Source line in effect at the defect, 0 when unknown.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, self.at) {
            (Some(func), Some(at)) => {
                write!(f, "[{func}@{at} line {}] {}", self.line, self.message)
            }
            (Some(func), None) => write!(f, "[{func}] {}", self.message),
            _ => write!(f, "[program] {}", self.message),
        }
    }
}

/// Abstract tag of one operand-stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag {
    Int,
    Float,
    Ptr,
    /// Integer on some paths, pointer on others (legal wherever the VM
    /// accepts a pointer — `pop_ptr` takes integer NULLs).
    IntPtr,
    /// Joined with a float somewhere: only `Scalar` contexts accept it.
    Any,
}

impl Tag {
    fn join(self, other: Tag) -> Tag {
        use Tag::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Int, Ptr) | (Ptr, Int) => IntPtr,
            (IntPtr, Int | Ptr) | (Int | Ptr, IntPtr) => IntPtr,
            _ => Any,
        }
    }

    fn satisfies(self, kind: Kind) -> bool {
        match kind {
            Kind::Int => self == Tag::Int,
            Kind::Float => self == Tag::Float,
            Kind::PtrOrInt => matches!(self, Tag::Int | Tag::Ptr | Tag::IntPtr),
            Kind::Scalar => true,
        }
    }

    fn of(out: Out) -> Tag {
        match out {
            Out::Int => Tag::Int,
            Out::Float => Tag::Float,
            Out::Ptr => Tag::Ptr,
            // Memory re-tags on the way out: integer widths load as Int,
            // float widths as Float, pointer cells always as Ptr.
            Out::Mem(MemTy::I8 | MemTy::I32 | MemTy::I64) => Tag::Int,
            Out::Mem(MemTy::F32 | MemTy::F64) => Tag::Float,
            Out::Mem(MemTy::P) => Tag::Ptr,
            Out::Operand(_) => unreachable!("operand-relative tags resolved by caller"),
        }
    }
}

/// Verifies `program` and returns every finding (empty = the VM cannot
/// panic executing it).
pub fn verify(program: &Program) -> Vec<Finding> {
    let mut v = Verifier {
        program,
        findings: Vec::new(),
    };
    v.check_metadata();
    let structurally_sound = v.findings.is_empty();
    for c in cfg::build_cfgs(program) {
        let before = v.findings.len();
        v.check_structure(&c);
        // The abstract run trusts structure (it indexes the function
        // table and walks jump edges); only run it on sound functions.
        if structurally_sound && v.findings.len() == before {
            v.check_stack(&c);
        }
    }
    v.findings
}

/// [`verify`] as a pass/fail gate: `Err` carries one line per finding.
pub fn check(program: &Program) -> Result<(), String> {
    let findings = verify(program);
    if findings.is_empty() {
        return Ok(());
    }
    let lines: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    Err(lines.join("\n"))
}

/// Debug-build verification gate: panics on any finding, no-op in release
/// builds. Engine constructors call this so every program entering a VM is
/// verified during development and testing without taxing release runs.
pub fn debug_verify(program: &Program) {
    if cfg!(debug_assertions) {
        if let Err(report) = check(program) {
            panic!(
                "bytecode verification failed for {}:\n{report}",
                program.file
            );
        }
    }
}

struct Verifier<'a> {
    program: &'a Program,
    findings: Vec<Finding>,
}

impl<'a> Verifier<'a> {
    fn program_finding(&mut self, message: String) {
        self.findings.push(Finding {
            function: None,
            at: None,
            line: 0,
            message,
        });
    }

    fn func_finding(&mut self, meta: &FuncMeta, message: String) {
        self.findings.push(Finding {
            function: Some(meta.name.clone()),
            at: None,
            line: meta.line,
            message,
        });
    }

    fn op_finding(&mut self, c: &FuncCfg, at: usize, message: String) {
        self.findings.push(Finding {
            function: Some(c.name.clone()),
            at: Some(at),
            line: c.line_of(at),
            message,
        });
    }

    /// Program-level debug-metadata well-formedness.
    fn check_metadata(&mut self) {
        let p = self.program;
        if p.functions.is_empty() {
            self.program_finding("empty function table".into());
            return;
        }
        if p.main_index >= p.functions.len() {
            self.program_finding(format!(
                "main_index {} out of bounds ({} functions)",
                p.main_index,
                p.functions.len()
            ));
        }
        for g in &p.globals {
            let size = p.structs.size_of(&g.ty);
            let end = g.addr.saturating_add(size);
            if g.addr < GLOBAL_BASE || end > GLOBAL_BASE + p.global_image.len() as u64 {
                self.program_finding(format!(
                    "global `{}` at {:#x}..{:#x} outside the globals image",
                    g.name, g.addr, end
                ));
            }
        }
        for f in &p.functions {
            if f.entry >= p.code.len() {
                self.func_finding(f, format!("entry {} out of bounds", f.entry));
            }
            if f.nparams > f.locals.len() {
                self.func_finding(
                    f,
                    format!("{} params but {} local slots", f.nparams, f.locals.len()),
                );
            }
            for slot in &f.locals {
                let end = slot.offset.saturating_add(p.structs.size_of(&slot.ty));
                if end > f.frame_size {
                    self.func_finding(
                        f,
                        format!(
                            "local `{}` at {}..{end} outside frame of {} bytes",
                            slot.name, slot.offset, f.frame_size
                        ),
                    );
                }
            }
        }
    }

    /// Per-op structural checks over every op of the function, reachable
    /// or not: operator payloads, jump targets, table indices, slot
    /// bounds, line-marker sanity.
    fn check_structure(&mut self, c: &FuncCfg) {
        let p = self.program;
        let (start, end) = c.range;
        let meta = &p.functions[c.func_index];
        let line_count = p.line_count();
        for at in start..end {
            let op = p.code[at];
            match op {
                Op::Line(n) => {
                    if n == 0 || n > line_count {
                        self.op_finding(
                            c,
                            at,
                            format!("line marker {n} outside source (1..={line_count})"),
                        );
                    }
                }
                Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
                    if !(start..end).contains(&t) {
                        self.op_finding(
                            c,
                            at,
                            format!("jump target {t} outside function range {start}..{end}"),
                        );
                    }
                }
                Op::Call(idx) => {
                    if idx >= p.functions.len() {
                        self.op_finding(
                            c,
                            at,
                            format!(
                                "call index {idx} out of bounds ({} functions)",
                                p.functions.len()
                            ),
                        );
                    }
                }
                Op::Intrinsic(intr, argc) => {
                    let min = Op::intrinsic_min_args(intr);
                    if argc < min {
                        self.op_finding(
                            c,
                            at,
                            format!("{intr:?} needs at least {min} arguments, has {argc}"),
                        );
                    }
                }
                Op::IArith(b) | Op::IArithImm(b, _) => {
                    if b.is_comparison() || b.is_logical() {
                        self.op_finding(
                            c,
                            at,
                            format!("{b:?} is not an integer-arithmetic operator"),
                        );
                    }
                }
                Op::FArith(b) => {
                    use minic::ast::BinOp::*;
                    if !matches!(b, Add | Sub | Mul | Div) {
                        self.op_finding(c, at, format!("{b:?} is not a float-arithmetic operator"));
                    }
                }
                Op::ICmp(b) | Op::ICmpImm(b, _) | Op::FCmp(b) => {
                    if !b.is_comparison() {
                        self.op_finding(c, at, format!("{b:?} is not a comparison operator"));
                    }
                }
                Op::TruncI(mt) => {
                    if !matches!(mt, MemTy::I8 | MemTy::I32 | MemTy::I64) {
                        self.op_finding(c, at, format!("truncation to non-integer width {mt:?}"));
                    }
                }
                Op::IncDec {
                    memty, ptr_step, ..
                } => {
                    // The VM scales by `ptr_step` exactly when the loaded
                    // value is a pointer; any other pairing is a panic.
                    if (memty == MemTy::P) != ptr_step.is_some() {
                        self.op_finding(
                            c,
                            at,
                            format!("inc/dec of {memty:?} with ptr_step {ptr_step:?}"),
                        );
                    }
                }
                Op::LocalAddr(off) => {
                    if off >= meta.frame_size.max(1) {
                        self.op_finding(
                            c,
                            at,
                            format!(
                                "local address {off} outside frame of {} bytes",
                                meta.frame_size
                            ),
                        );
                    }
                }
                Op::LoadLocal(mt, off) => {
                    if off.saturating_add(mt.size()) > meta.frame_size {
                        self.op_finding(
                            c,
                            at,
                            format!(
                                "local load {off}..{} outside frame of {} bytes",
                                off + mt.size(),
                                meta.frame_size
                            ),
                        );
                    }
                }
                Op::MemCopy(_)
                | Op::PushI(_)
                | Op::PushF(_)
                | Op::PushP(_)
                | Op::Load(_)
                | Op::Store(_)
                | Op::Neg(_)
                | Op::Not
                | Op::BitNot
                | Op::I2F
                | Op::F2I
                | Op::F2F32
                | Op::I2P
                | Op::P2I
                | Op::PtrAdd(_)
                | Op::PtrSub(_)
                | Op::PtrDiff(_)
                | Op::Dup
                | Op::Pop
                | Op::Ret(_)
                | Op::Nop => {}
            }
        }
    }

    /// Abstract stack-discipline verification: a worklist meet over the
    /// function's CFG, tracking depth and tags at every reachable point.
    fn check_stack(&mut self, c: &FuncCfg) {
        let p = self.program;
        let meta = &p.functions[c.func_index];
        let (_, end) = c.range;
        // In-state per block: `None` = not yet reached.
        let mut ins: Vec<Option<Vec<Tag>>> = vec![None; c.len()];
        ins[0] = Some(Vec::new());
        let mut work: VecDeque<usize> = VecDeque::from([0]);
        // Bound the number of reports so a deeply broken function does
        // not flood the output; the worklist still terminates because
        // joins only widen tags and reported blocks stop propagating.
        let budget = self.findings.len() + 32;

        while let Some(b) = work.pop_front() {
            if self.findings.len() >= budget {
                break;
            }
            let Some(mut stack) = ins[b].clone() else {
                continue;
            };
            let block = &c.blocks[b];
            if block.start == block.end {
                continue;
            }
            let mut poisoned = false;
            for at in block.start..block.end {
                let op = p.code[at];
                if !self.apply(c, meta, at, op, &mut stack) {
                    poisoned = true;
                    break;
                }
            }
            if poisoned {
                continue;
            }
            let last = p.code[block.end - 1];
            if last.can_fall_through() && block.end == end {
                self.op_finding(
                    c,
                    block.end - 1,
                    "control falls through past the end of the function".into(),
                );
                continue;
            }
            for &s in &block.succs {
                let changed = match &ins[s] {
                    None => {
                        ins[s] = Some(stack.clone());
                        true
                    }
                    Some(prev) if prev.len() != stack.len() => {
                        self.op_finding(
                            c,
                            c.blocks[s].start,
                            format!(
                                "stack depth mismatch at join: {} vs {}",
                                prev.len(),
                                stack.len()
                            ),
                        );
                        false
                    }
                    Some(prev) => {
                        let joined: Vec<Tag> =
                            prev.iter().zip(&stack).map(|(&a, &b)| a.join(b)).collect();
                        if joined != *prev {
                            ins[s] = Some(joined);
                            true
                        } else {
                            false
                        }
                    }
                };
                if changed {
                    work.push_back(s);
                }
            }
        }
    }

    /// Applies one op to the abstract stack; returns false (and reports)
    /// when the op would fault.
    fn apply(
        &mut self,
        c: &FuncCfg,
        meta: &FuncMeta,
        at: usize,
        op: Op,
        stack: &mut Vec<Tag>,
    ) -> bool {
        // `Ret` gets the refined check the generic table cannot express:
        // value presence and tag must agree with the declared return type.
        if let Op::Ret(has_value) = op {
            return self.apply_ret(c, meta, at, has_value, stack);
        }
        let fx = op.stack_effect_with(&self.program.functions);
        if stack.len() < fx.pops.len() {
            self.op_finding(
                c,
                at,
                format!(
                    "stack underflow: {op:?} pops {} of {}",
                    fx.pops.len(),
                    stack.len()
                ),
            );
            return false;
        }
        let mut popped = Vec::with_capacity(fx.pops.len());
        for (i, &kind) in fx.pops.iter().enumerate() {
            let tag = stack.pop().expect("depth checked above");
            if !tag.satisfies(kind) {
                self.op_finding(
                    c,
                    at,
                    format!("{op:?} operand {i} is {tag:?}, needs {kind:?}"),
                );
                return false;
            }
            popped.push(tag);
        }
        for &out in &fx.pushes {
            stack.push(match out {
                Out::Operand(i) => popped[i],
                other => Tag::of(other),
            });
        }
        true
    }

    fn apply_ret(
        &mut self,
        c: &FuncCfg,
        meta: &FuncMeta,
        at: usize,
        has_value: bool,
        stack: &mut [Tag],
    ) -> bool {
        use minic::types::Type;
        let wants_value = meta.ret != Type::Void;
        if has_value != wants_value {
            self.op_finding(
                c,
                at,
                format!(
                    "return {} a value from `{}` returning `{}`",
                    if has_value { "with" } else { "without" },
                    meta.name,
                    meta.ret
                ),
            );
            return false;
        }
        if !has_value {
            return true;
        }
        let Some(&top) = stack.last() else {
            self.op_finding(c, at, "return with an empty stack".into());
            return false;
        };
        let kind = match &meta.ret {
            Type::Float | Type::Double => Kind::Float,
            Type::Ptr(_) => Kind::PtrOrInt,
            _ => Kind::Int,
        };
        if !top.satisfies(kind) {
            self.op_finding(
                c,
                at,
                format!(
                    "return value is {top:?}, `{}` returns `{}`",
                    meta.name, meta.ret
                ),
            );
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::ast::BinOp;

    fn compiled(src: &str) -> Program {
        minic::compile("t.c", src).expect("fixture compiles")
    }

    #[test]
    fn compiled_programs_verify_clean() {
        let sources = [
            "int main() { return 0; }",
            "int main() { long i = 0; long acc = 0; while (i < 10) { acc = acc + i; i = i + 1; } return (int)acc; }",
            "double f(double x) { return x * 2.0; } int main() { return (int)f(21.0); }",
            "int main() { long* p = malloc(16); p[0] = 7; long v = p[0]; free(p); return (int)v; }",
            "int g; int main() { g = 3; return g; }",
        ];
        for src in sources {
            let findings = verify(&compiled(src));
            assert!(findings.is_empty(), "{src}: {findings:?}");
        }
    }

    #[test]
    fn stack_underflow_is_rejected() {
        let mut p = compiled("int main() { return 1 + 2; }");
        // Turn the PushI feeding the IArith into a Nop: underflow.
        let at = p
            .code
            .iter()
            .position(|op| matches!(op, Op::PushI(_)))
            .expect("a push");
        p.code[at] = Op::Nop;
        let findings = verify(&p);
        assert!(
            findings.iter().any(|f| f.message.contains("underflow")),
            "{findings:?}"
        );
    }

    #[test]
    fn tag_confusion_is_rejected() {
        let mut p = compiled("int main() { return 1 + 2; }");
        // A float where IArith needs an integer.
        let at = p
            .code
            .iter()
            .position(|op| matches!(op, Op::PushI(_)))
            .expect("a push");
        p.code[at] = Op::PushF(1.5);
        let findings = verify(&p);
        assert!(
            findings.iter().any(|f| f.message.contains("needs Int")),
            "{findings:?}"
        );
    }

    #[test]
    fn wild_jump_is_rejected() {
        let mut p = compiled("int main() { long i = 0; while (i < 3) { i = i + 1; } return 0; }");
        let at = p
            .code
            .iter()
            .position(|op| op.jump_target().is_some())
            .expect("a jump");
        *p.code[at].jump_target_mut().unwrap() = p.code.len() + 100;
        let findings = verify(&p);
        assert!(
            findings.iter().any(|f| f.message.contains("jump target")),
            "{findings:?}"
        );
    }

    #[test]
    fn bad_call_index_is_rejected() {
        let mut p = compiled("int f() { return 1; } int main() { return f(); }");
        let at = p
            .code
            .iter()
            .position(|op| matches!(op, Op::Call(_)))
            .expect("a call");
        p.code[at] = Op::Call(99);
        let findings = verify(&p);
        assert!(
            findings.iter().any(|f| f.message.contains("call index")),
            "{findings:?}"
        );
    }

    #[test]
    fn comparison_inside_iarith_is_rejected() {
        let mut p = compiled("int main() { return 1 + 2; }");
        let at = p
            .code
            .iter()
            .position(|op| matches!(op, Op::IArith(_)))
            .expect("an iarith");
        p.code[at] = Op::IArith(BinOp::Lt);
        let findings = verify(&p);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("not an integer-arithmetic")),
            "{findings:?}"
        );
    }

    #[test]
    fn fall_through_past_function_end_is_rejected() {
        let mut p = compiled("int main() { return 0; }");
        // Nop out every Ret: main now runs off its end.
        for op in &mut p.code {
            if matches!(op, Op::Ret(_)) {
                *op = Op::Nop;
            }
        }
        let findings = verify(&p);
        assert!(
            findings.iter().any(|f| f.message.contains("falls through")),
            "{findings:?}"
        );
    }

    #[test]
    fn bad_line_marker_is_rejected() {
        let mut p = compiled("int main() { return 0; }");
        let at = p
            .code
            .iter()
            .position(|op| matches!(op, Op::Line(_)))
            .expect("a line marker");
        p.code[at] = Op::Line(10_000);
        let findings = verify(&p);
        assert!(
            findings.iter().any(|f| f.message.contains("line marker")),
            "{findings:?}"
        );
    }

    #[test]
    fn null_pointer_flows_are_accepted() {
        // NULL casts and pointer truth tests exercise the joined
        // integer/pointer flows the VM accepts; the verifier must too.
        let findings = verify(&compiled(
            "int main() { long* p = (long*)0; if (p) { return 1; } return 0; }",
        ));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn findings_render_with_location() {
        let mut p = compiled("int main() { return 1 + 2; }");
        let at = p
            .code
            .iter()
            .position(|op| matches!(op, Op::IArith(_)))
            .expect("an iarith");
        p.code[at] = Op::IArith(BinOp::Lt);
        let f = &verify(&p)[0];
        let s = f.to_string();
        assert!(s.contains("main@"), "{s}");
        assert!(check(&p).is_err());
    }
}
