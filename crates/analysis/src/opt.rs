//! Observation-preserving bytecode optimizer.
//!
//! Rewrites a compiled [`Program`] into a faster one that is
//! *indistinguishable through the debugging surface*: the same `Line`
//! events in the same order, the same `Call`/`Return`/`Store`/`Output`
//! events, the same sanitizer traps, the same inspectable memory at every
//! pause, and the same breakable-line set. PR 2's conformance lockstep
//! oracle checks exactly this contract end to end; this module maintains
//! it by construction with two rules:
//!
//! - **Barriers.** Every op the tracker can observe — `Line` markers
//!   (step/breakpoint hooks), store-like ops (watchpoint hooks), calls,
//!   returns, intrinsics ([`Op::is_observation_barrier`]) — stays exactly
//!   where it is, and no value is folded across one. Rewrites happen only
//!   inside barrier-free windows of pure stack ops, where no pause can
//!   ever observe the intermediate stack.
//! - **Translation validation.** The [`verify`](crate::verify) checker
//!   runs on the input and after every pass; a pass that breaks the
//!   stack/tag/structure invariants aborts optimization with an error
//!   instead of producing a program the VM could panic on.
//!
//! Passes, in order (all index-stable until the final compaction — they
//! only rewrite ops in place, turning dead ones into `Nop`):
//!
//! 1. `const_fold` — constant folding and propagation through the operand
//!    stack, with branch simplification on constant conditions. Division
//!    and remainder by a constant zero are never folded: the runtime
//!    error is an observable outcome.
//! 2. `dce` — ops in blocks unreachable from the function entry become
//!    `Nop`s, *except* `Line` markers: the breakable-line set the tracker
//!    advertises is computed statically and must not change.
//! 3. `copy_prop` — an adjacent re-load of the local just loaded becomes
//!    a `Dup` of the copy already on the stack (the sanitizer dedups
//!    per-line traps and the shadow state is idempotent under the
//!    repeated read, so eliding it is invisible), and push-then-pop
//!    shuffles annihilate.
//! 4. `fuse` — superinstruction peephole: `LocalAddr`+`Load` →
//!    [`Op::LoadLocal`], `PushI`+`IArith` → [`Op::IArithImm`],
//!    `PushI`+`ICmp` → [`Op::ICmpImm`]. A pair is fused only when no jump
//!    lands between its two halves; the fused op takes the second slot so
//!    jumps to the pair's start still execute it.
//! 5. `compact` — `Nop`s are deleted and every jump target and function
//!    entry is remapped (targets that pointed at a deleted op move to the
//!    next surviving one, which is where fall-through would have gone).

use crate::cfg;
use crate::verify;
use minic::ast::BinOp;
use minic::bytecode::{MemTy, Op, Program};
use std::collections::BTreeSet;

/// What the optimizer did, for reports and benchmarks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Requested optimization level.
    pub level: u8,
    /// Op count before optimization.
    pub ops_before: usize,
    /// Op count after compaction.
    pub ops_after: usize,
    /// Constants folded (consumer ops rewritten to pushes).
    pub folded: usize,
    /// Conditional branches turned unconditional or deleted.
    pub branches: usize,
    /// Ops deleted as unreachable.
    pub unreachable: usize,
    /// Redundant loads forwarded and push/pop pairs annihilated.
    pub copies: usize,
    /// Op pairs fused into superinstructions.
    pub fused: usize,
}

/// Optimizes `program` at `level` (0 = identity). Verifies the input and
/// re-verifies after every pass; any verification failure aborts with a
/// report of the findings.
///
/// # Errors
///
/// Returns `Err` when the input program does not verify, or when a pass
/// produces a program that does not (translation validation).
pub fn optimize(program: &Program, level: u8) -> Result<(Program, OptReport), String> {
    let mut report = OptReport {
        level,
        ops_before: program.code.len(),
        ops_after: program.code.len(),
        ..OptReport::default()
    };
    if level == 0 {
        return Ok((program.clone(), report));
    }
    verify::check(program).map_err(|e| format!("input failed verification:\n{e}"))?;
    let mut p = program.clone();

    const_fold(&mut p, &mut report);
    validate(&p, "const_fold")?;
    dce(&mut p, &mut report);
    validate(&p, "dce")?;
    copy_prop(&mut p, &mut report);
    validate(&p, "copy_prop")?;
    fuse(&mut p, &mut report);
    validate(&p, "fuse")?;
    compact(&mut p);
    validate(&p, "compact")?;

    report.ops_after = p.code.len();
    Ok((p, report))
}

fn validate(p: &Program, pass: &str) -> Result<(), String> {
    verify::check(p).map_err(|e| format!("verification failed after `{pass}`:\n{e}"))
}

/// One abstract operand-stack entry during folding: the producing op's
/// index and its constant integer value, when both are known and the
/// producer may be deleted if its value is consumed by a fold.
type Sim = Vec<Option<(usize, i64)>>;

fn const_fold(p: &mut Program, report: &mut OptReport) {
    for c in cfg::build_cfgs(p) {
        for b in &c.blocks {
            let mut sim: Sim = Vec::new();
            for at in b.start..b.end {
                fold_op(p, at, &mut sim, report);
            }
        }
    }
}

/// Pops one sim entry; entries inherited from predecessors (below the
/// block-local stack) are unknown.
fn spop(sim: &mut Sim) -> Option<(usize, i64)> {
    sim.pop().flatten()
}

fn fold_op(p: &mut Program, at: usize, sim: &mut Sim, report: &mut OptReport) {
    let op = p.code[at];
    match op {
        Op::PushI(v) => sim.push(Some((at, v))),
        Op::IArith(b) => {
            let rhs = spop(sim);
            let lhs = spop(sim);
            match (lhs, rhs) {
                (Some((ja, va)), Some((jb, vb))) => {
                    if let Some(r) = eval_iarith(b, va, vb) {
                        p.code[ja] = Op::Nop;
                        p.code[jb] = Op::Nop;
                        p.code[at] = Op::PushI(r);
                        report.folded += 1;
                        sim.push(Some((at, r)));
                    } else {
                        sim.push(None);
                    }
                }
                _ => sim.push(None),
            }
        }
        Op::ICmp(b) => {
            let rhs = spop(sim);
            let lhs = spop(sim);
            match (lhs, rhs) {
                (Some((ja, va)), Some((jb, vb))) => {
                    let r = eval_cmp(b, va, vb) as i64;
                    p.code[ja] = Op::Nop;
                    p.code[jb] = Op::Nop;
                    p.code[at] = Op::PushI(r);
                    report.folded += 1;
                    sim.push(Some((at, r)));
                }
                _ => sim.push(None),
            }
        }
        Op::Neg(false) => fold_unary(p, at, sim, report, |v| v.wrapping_neg()),
        Op::Not => fold_unary(p, at, sim, report, |v| (v == 0) as i64),
        Op::BitNot => fold_unary(p, at, sim, report, |v| !v),
        Op::TruncI(mt) => fold_unary(p, at, sim, report, move |v| match mt {
            MemTy::I8 => v as i8 as i64,
            MemTy::I32 => v as i32 as i64,
            _ => v,
        }),
        Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
            if let Some((j, v)) = spop(sim) {
                let taken = (v == 0) == matches!(op, Op::JumpIfZero(_));
                p.code[j] = Op::Nop;
                p.code[at] = if taken { Op::Jump(t) } else { Op::Nop };
                report.branches += 1;
            }
        }
        Op::Dup => {
            // A folded copy must not delete the `Dup` that produced it
            // (the sibling copy still needs the original): both copies
            // are opaque to folding.
            sim.pop();
            sim.push(None);
            sim.push(None);
        }
        _ => {
            // Generic stack bookkeeping from the shared table; barriers
            // additionally forget every constant so no value is ever
            // folded across an observation point.
            let fx = op.stack_effect_with(&p.functions);
            for _ in &fx.pops {
                sim.pop();
            }
            for _ in &fx.pushes {
                sim.push(None);
            }
            if op.is_observation_barrier() {
                for e in sim.iter_mut() {
                    *e = None;
                }
            }
        }
    }
}

fn fold_unary(
    p: &mut Program,
    at: usize,
    sim: &mut Sim,
    report: &mut OptReport,
    f: impl Fn(i64) -> i64,
) {
    match spop(sim) {
        Some((j, v)) => {
            let r = f(v);
            p.code[j] = Op::Nop;
            p.code[at] = Op::PushI(r);
            report.folded += 1;
            sim.push(Some((at, r)));
        }
        None => sim.push(None),
    }
}

/// VM-identical integer arithmetic on constants; `None` when folding
/// would erase an observable runtime error (division/remainder by zero).
fn eval_iarith(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div if b != 0 => a.wrapping_div(b),
        BinOp::Rem if b != 0 => a.wrapping_rem(b),
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        _ => return None,
    })
}

fn eval_cmp(op: BinOp, a: i64, b: i64) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        _ => unreachable!("verified comparison"),
    }
}

/// Unreachable-op elimination. `Line` markers survive: the breakable-line
/// set is part of the observable surface even when the line never runs.
fn dce(p: &mut Program, report: &mut OptReport) {
    for c in cfg::build_cfgs(p) {
        let reachable: BTreeSet<usize> = c.reverse_post_order().into_iter().collect();
        for (id, b) in c.blocks.iter().enumerate() {
            if reachable.contains(&id) {
                continue;
            }
            for at in b.start..b.end {
                if !matches!(p.code[at], Op::Line(_) | Op::Nop) {
                    p.code[at] = Op::Nop;
                    report.unreachable += 1;
                }
            }
        }
    }
}

/// Every op index some jump targets, plus every function entry: rewrites
/// may not change what executes from these indices on.
fn leaders(p: &Program) -> BTreeSet<usize> {
    let mut l: BTreeSet<usize> = p.code.iter().filter_map(|op| op.jump_target()).collect();
    l.extend(p.functions.iter().map(|f| f.entry));
    l
}

fn copy_prop(p: &mut Program, report: &mut OptReport) {
    let leaders = leaders(p);
    // Adjacent redundant load: LocalAddr(o) Load(mt) LocalAddr(o) Load(mt)
    // with no jump into the window → forward the first copy with a Dup.
    let mut at = 0;
    while at + 4 <= p.code.len() {
        let w = &p.code[at..at + 4];
        let window_sealed = (at + 1..at + 4).all(|i| !leaders.contains(&i));
        if window_sealed
            && matches!((w[0], w[1], w[2], w[3]),
                (Op::LocalAddr(a), Op::Load(m), Op::LocalAddr(b), Op::Load(n))
                    if a == b && m == n)
        {
            p.code[at + 2] = Op::Nop;
            p.code[at + 3] = Op::Dup;
            report.copies += 1;
            at += 4;
            continue;
        }
        at += 1;
    }
    // Push-then-pop shuffles cancel.
    for at in 0..p.code.len().saturating_sub(1) {
        if leaders.contains(&(at + 1)) {
            continue;
        }
        let pure_push = matches!(
            p.code[at],
            Op::PushI(_) | Op::PushF(_) | Op::PushP(_) | Op::LocalAddr(_) | Op::Dup
        );
        if pure_push && p.code[at + 1] == Op::Pop {
            p.code[at] = Op::Nop;
            p.code[at + 1] = Op::Nop;
            report.copies += 1;
        }
    }
}

fn fuse(p: &mut Program, report: &mut OptReport) {
    let leaders = leaders(p);
    let mut at = 0;
    while at + 2 <= p.code.len() {
        if leaders.contains(&(at + 1)) {
            at += 1;
            continue;
        }
        let fused = match (p.code[at], p.code[at + 1]) {
            (Op::LocalAddr(off), Op::Load(mt)) => Some(Op::LoadLocal(mt, off)),
            (Op::PushI(imm), Op::IArith(b)) => Some(Op::IArithImm(b, imm)),
            (Op::PushI(imm), Op::ICmp(b)) => Some(Op::ICmpImm(b, imm)),
            _ => None,
        };
        if let Some(f) = fused {
            // The fused op takes the second slot: a jump to `at` still
            // executes the (now single) op, and nothing jumps to `at+1`.
            p.code[at] = Op::Nop;
            p.code[at + 1] = f;
            report.fused += 1;
            at += 2;
        } else {
            at += 1;
        }
    }
}

/// Deletes `Nop`s, remapping jump targets and function entries. A target
/// whose op was deleted moves to the next surviving op — exactly where
/// fall-through through the deleted `Nop`s would have arrived.
fn compact(p: &mut Program) {
    let n = p.code.len();
    let mut new_idx = vec![0usize; n + 1];
    let mut survivors = 0usize;
    for (slot, op) in new_idx.iter_mut().zip(&p.code) {
        *slot = survivors;
        if *op != Op::Nop {
            survivors += 1;
        }
    }
    new_idx[n] = survivors;
    let mut new_code = Vec::with_capacity(survivors);
    for i in 0..n {
        let mut op = p.code[i];
        if op == Op::Nop {
            continue;
        }
        if let Some(t) = op.jump_target_mut() {
            *t = new_idx[*t];
        }
        new_code.push(op);
    }
    p.code = new_code;
    for f in &mut p.functions {
        f.entry = new_idx[f.entry];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::vm::{Event, Vm};

    fn compiled(src: &str) -> Program {
        minic::compile("t.c", src).expect("fixture compiles")
    }

    /// Full observable transcript of one run: every event, in order.
    fn transcript(p: &Program, store_events: bool) -> Vec<String> {
        let mut vm = Vm::new(p);
        vm.set_store_events(store_events);
        let mut out = Vec::new();
        loop {
            let ev = vm.step().expect("fixtures run clean");
            let exit = matches!(ev, Event::Exited(_));
            out.push(format!("{ev:?}"));
            if exit {
                break;
            }
        }
        out
    }

    fn assert_observation_preserved(src: &str) {
        let p0 = compiled(src);
        let (p1, report) = optimize(&p0, 1).expect("optimizes clean");
        assert_eq!(
            transcript(&p0, true),
            transcript(&p1, true),
            "transcripts diverge for {src} ({report:?})"
        );
        assert_eq!(
            p0.breakable_lines(),
            p1.breakable_lines(),
            "breakable lines changed for {src}"
        );
    }

    #[test]
    fn folds_constant_arithmetic() {
        let (p, report) = optimize(&compiled("int main() { return 1 + 2 * 3; }"), 1).unwrap();
        assert!(report.folded >= 2, "{report:?}");
        assert!(
            !p.code.iter().any(|op| matches!(op, Op::IArith(_))),
            "{:?}",
            p.code
        );
        assert!(p.code.contains(&Op::PushI(7)));
    }

    #[test]
    fn division_by_constant_zero_survives() {
        let src = "int main() { return 1 / 0; }";
        let (p, _) = optimize(&compiled(src), 1).unwrap();
        assert!(
            p.code
                .iter()
                .any(|op| matches!(op, Op::IArith(BinOp::Div) | Op::IArithImm(BinOp::Div, 0))),
            "runtime error folded away: {:?}",
            p.code
        );
        let mut vm = Vm::new(&p);
        let err = loop {
            match vm.step() {
                Ok(Event::Exited(_)) => panic!("must fault"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.message().contains("division"), "{err}");
    }

    #[test]
    fn simplifies_constant_branches_and_removes_unreachable() {
        let (p, report) = optimize(
            &compiled("int main() {\n  if (0) { return 1; }\n  return 2;\n}"),
            1,
        )
        .unwrap();
        assert!(report.branches >= 1, "{report:?}");
        assert!(report.unreachable >= 1, "{report:?}");
        // The dead branch's Line marker must survive for the breakpoint
        // surface.
        assert!(
            p.breakable_lines().contains(&2),
            "{:?}",
            p.breakable_lines()
        );
    }

    #[test]
    fn fuses_superinstructions() {
        let (p, report) = optimize(
            &compiled("int main() { long x = 5; long y = x + 1; return (int)y; }"),
            1,
        )
        .unwrap();
        assert!(report.fused >= 1, "{report:?}");
        assert!(
            p.code
                .iter()
                .any(|op| matches!(op, Op::LoadLocal(_, _) | Op::IArithImm(_, _))),
            "{:?}",
            p.code
        );
    }

    #[test]
    fn level_zero_is_identity() {
        let p0 = compiled("int main() { return 1 + 2; }");
        let (p1, report) = optimize(&p0, 0).unwrap();
        assert_eq!(p0.code, p1.code);
        assert_eq!(report.folded, 0);
    }

    #[test]
    fn compaction_shrinks_code() {
        let p0 = compiled("int main() { return 1 + 2 * 3; }");
        let (p1, report) = optimize(&p0, 1).unwrap();
        assert!(p1.code.len() < p0.code.len());
        assert_eq!(report.ops_after, p1.code.len());
        assert!(!p1.code.contains(&Op::Nop));
    }

    #[test]
    fn transcripts_identical_across_programs() {
        let sources = [
            "int main() { return 1 + 2 * 3; }",
            "int main() { long i = 0; long acc = 0; while (i < 10) { acc = acc + i * 2; i = i + 1; } return (int)acc; }",
            "long fib(long n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } int main() { return (int)fib(10); }",
            "int main() { if (0) { return 1; } if (1) { return 2; } return 3; }",
            "int main() { long* p = malloc(24); long i = 0; while (i < 3) { p[i] = i * i; i = i + 1; } long s = p[0] + p[1] + p[2]; free(p); return (int)s; }",
            "int main() { long x = 7; long y = x + x; printf(\"%d\\n\", (int)y); return 0; }",
            "double scale(double v) { return v * 2.0; } int main() { double d = scale(1.5); return (int)d; }",
            "int g = 3; int main() { g = g + 1; return g; }",
        ];
        for src in sources {
            assert_observation_preserved(src);
        }
    }

    #[test]
    fn sanitizer_traps_preserved_under_optimization() {
        // Uninit read + dead store: the shadow-state hooks ride on loads
        // and stores, which the optimizer must keep.
        let src =
            "int main() {\n  long x;\n  long y = x + 1;\n  y = 2;\n  y = 3;\n  return (int)y;\n}";
        let p0 = compiled(src);
        let (p1, _) = optimize(&p0, 1).unwrap();
        let traps = |p: &Program| {
            let mut vm = Vm::new(p);
            vm.set_sanitizer(true);
            let mut traps = Vec::new();
            loop {
                match vm.step().expect("runs clean") {
                    Event::SanitizerTrap(d) => traps.push(format!("{:?}@{}", d.kind, d.span)),
                    Event::Exited(_) => break,
                    _ => {}
                }
            }
            traps
        };
        assert_eq!(traps(&p0), traps(&p1), "sanitizer transcript diverged");
    }
}
