//! Static dataflow analysis and memory-safety checking for MiniC bytecode.
//!
//! The crate layers a classic dataflow engine over compiled
//! [`minic::Program`]s:
//!
//! 1. [`cfg`] builds one control-flow graph per function, with per-op source
//!    lines recovered from the `Line` markers;
//! 2. [`interp`] runs a small abstract interpreter over the operand stack to
//!    resolve which scalar local slot every `Load`/`Store` touches, to track
//!    heap-pointer provenance per allocation site, and to find which slot
//!    addresses escape;
//! 3. [`dataflow`] provides the bit-set worklist solvers — dominators,
//!    reaching definitions, liveness, and a may-overwrite analysis — that
//!    [`analyze`] composes into the memory-safety checker.
//!
//! The checker reports six [`DiagnosticKind`]s: uninitialized reads (the
//! "uninit" pseudo-definition reaches a read), use-after-free, double-free,
//! out-of-bounds accesses at constant offsets, dead stores (a store that is
//! overwritten before any read on some path, or never read at all), and
//! leaked heap blocks. All findings are *may* findings: the MiniC VM's
//! sanitizer mode turns the subset that actually happens at run time into
//! precise [`state::PauseReason::Sanitizer`] traps, and the conformance
//! oracle checks that the static answer is a superset of the runtime traps
//! on every generated program.
//!
//! # Examples
//!
//! ```
//! let program = minic::compile(
//!     "t.c",
//!     "int main() { long* p = malloc(16); free(p); free(p); return 0; }",
//! )
//! .unwrap();
//! let diags = analysis::analyze(&program);
//! assert!(diags.iter().any(|d| d.kind == analysis::DiagnosticKind::DoubleFree));
//! ```

pub mod cfg;
pub mod dataflow;
pub mod interp;
pub mod opt;
pub mod verify;

pub use state::{Diagnostic, DiagnosticKind, Severity};

use crate::cfg::FuncCfg;
use crate::dataflow::BitSet;
use crate::interp::{AccessKind, FuncSummary};
use minic::Program;
use std::collections::BTreeSet;
use std::time::Instant;

/// Runs every analysis pass over `program` and returns the findings,
/// sorted by (line, kind, function) and deduplicated per defect site.
///
/// Timing of the individual passes is recorded into the global
/// [`obs::Registry`] as `analysis.pass_ns.*` histograms; use
/// [`analyze_with_registry`] to direct them elsewhere.
pub fn analyze(program: &Program) -> Vec<Diagnostic> {
    analyze_with_registry(program, &obs::Registry::global())
}

/// [`analyze`] with an explicit metrics registry.
pub fn analyze_with_registry(program: &Program, registry: &obs::Registry) -> Vec<Diagnostic> {
    let t = Instant::now();
    let cfgs = cfg::build_cfgs(program);
    registry.record_duration("analysis.pass_ns.cfg", t.elapsed());

    let t = Instant::now();
    let summaries: Vec<FuncSummary> = cfgs.iter().map(|c| interp::interpret(program, c)).collect();
    registry.record_duration("analysis.pass_ns.interp", t.elapsed());

    let t = Instant::now();
    for c in &cfgs {
        let idom = dataflow::dominators(c);
        // The dominator tree doubles as a CFG sanity check: every reachable
        // block must be dominated by the entry.
        debug_assert!(c
            .reverse_post_order()
            .iter()
            .all(|&b| dataflow::dominates(&idom, 0, b)));
    }
    registry.record_duration("analysis.pass_ns.dominators", t.elapsed());

    let mut diags: Vec<Diagnostic> = Vec::new();
    for s in &summaries {
        diags.extend(s.diagnostics.iter().cloned());
    }

    let t = Instant::now();
    for (c, s) in cfgs.iter().zip(&summaries) {
        check_uninit_reads(c, s, &mut diags);
    }
    registry.record_duration("analysis.pass_ns.reaching", t.elapsed());

    let t = Instant::now();
    for (c, s) in cfgs.iter().zip(&summaries) {
        check_dead_stores(c, s, &mut diags);
    }
    registry.record_duration("analysis.pass_ns.liveness", t.elapsed());

    // Stable order and one finding per defect site.
    diags.sort_by(|a, b| {
        (a.span, a.kind, &a.function, &a.message).cmp(&(b.span, b.kind, &b.function, &b.message))
    });
    let mut seen = BTreeSet::new();
    diags.retain(|d| seen.insert((d.kind, d.function.clone(), d.span)));
    diags
}

/// Uninitialized-read detection: seed reaching definitions with one
/// "uninitialized" pseudo-definition per non-parameter scalar slot; a read
/// the pseudo-def still reaches may observe the slot before any store.
fn check_uninit_reads(cfg: &FuncCfg, summary: &FuncSummary, diags: &mut Vec<Diagnostic>) {
    if summary.bailed || summary.slots.is_empty() {
        return;
    }
    let nslots = summary.slots.len();

    // Definition universe: every store op, plus one pseudo-def per slot.
    let real_defs: Vec<(usize, usize)> = summary
        .accesses
        .iter()
        .filter(|(_, (_, k))| matches!(k, AccessKind::Write | AccessKind::ReadWrite))
        .map(|(&op, &(slot, _))| (op, slot))
        .collect();
    let ndefs = real_defs.len() + nslots;
    let pseudo = |slot: usize| real_defs.len() + slot;
    let mut defs_of_slot: Vec<Vec<usize>> = vec![Vec::new(); nslots];
    for (id, &(_, slot)) in real_defs.iter().enumerate() {
        defs_of_slot[slot].push(id);
    }
    let def_id_of_op: std::collections::BTreeMap<usize, usize> = real_defs
        .iter()
        .enumerate()
        .map(|(id, &(op, _))| (op, id))
        .collect();

    // Per-block gen/kill.
    let mut gen = vec![BitSet::empty(ndefs); cfg.len()];
    let mut kill = vec![BitSet::empty(ndefs); cfg.len()];
    for (b, block) in cfg.blocks.iter().enumerate() {
        for op in block.start..block.end {
            if let Some(&id) = def_id_of_op.get(&op) {
                let slot = real_defs[id].1;
                for &d in &defs_of_slot[slot] {
                    kill[b].insert(d);
                    gen[b].remove(d);
                }
                kill[b].insert(pseudo(slot));
                gen[b].insert(id);
            }
        }
    }

    // Entry: all non-parameter slots start uninitialized.
    let mut entry = BitSet::empty(ndefs);
    for (i, s) in summary.slots.iter().enumerate() {
        if !s.is_param {
            entry.insert(pseudo(i));
        }
    }

    let ins = dataflow::reaching_definitions(cfg, ndefs, &gen, &kill, &entry);

    // Walk each block with its in-set, flagging reads the pseudo-def reaches.
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut cur = ins[b].clone();
        for op in block.start..block.end {
            if let Some(&(slot, kind)) = summary.accesses.get(&op) {
                let watched = !summary.escaped.contains(&slot) && !summary.slots[slot].is_param;
                if matches!(kind, AccessKind::Read | AccessKind::ReadWrite)
                    && watched
                    && cur.contains(pseudo(slot))
                {
                    let every_path = defs_of_slot[slot].iter().all(|&d| !cur.contains(d));
                    diags.push(Diagnostic::new(
                        DiagnosticKind::UninitRead,
                        cfg.line_of(op),
                        cfg.name.clone(),
                        format!(
                            "`{}` is read before initialization{}",
                            summary.slots[slot].name,
                            if every_path { "" } else { " on some path" }
                        ),
                    ));
                }
                if matches!(kind, AccessKind::Write | AccessKind::ReadWrite) {
                    for &d in &defs_of_slot[slot] {
                        cur.remove(d);
                    }
                    cur.remove(pseudo(slot));
                    if let Some(&id) = def_id_of_op.get(&op) {
                        cur.insert(id);
                    }
                }
            }
        }
    }
}

/// Dead-store detection: a store is dead when the slot is not live
/// afterwards (no path reads it again) or when some path overwrites it
/// before reading (the case the runtime sanitizer traps on).
fn check_dead_stores(cfg: &FuncCfg, summary: &FuncSummary, diags: &mut Vec<Diagnostic>) {
    if summary.bailed || summary.slots.is_empty() {
        return;
    }
    let n = summary.slots.len();

    let mut use_ = vec![BitSet::empty(n); cfg.len()];
    let mut def = vec![BitSet::empty(n); cfg.len()];
    let mut first_read = vec![BitSet::empty(n); cfg.len()];
    let mut first_write = vec![BitSet::empty(n); cfg.len()];
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut touched = BitSet::empty(n);
        for op in block.start..block.end {
            if let Some(&(slot, kind)) = summary.accesses.get(&op) {
                if !touched.contains(slot) {
                    touched.insert(slot);
                    match kind {
                        AccessKind::Read | AccessKind::ReadWrite => {
                            use_[b].insert(slot);
                            first_read[b].insert(slot);
                        }
                        AccessKind::Write => {
                            def[b].insert(slot);
                            first_write[b].insert(slot);
                        }
                    }
                }
            }
        }
    }

    let live_out = dataflow::liveness(cfg, n, &use_, &def);
    let ow_out = dataflow::may_overwrite(cfg, n, &first_write, &first_read);

    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut live = live_out[b].clone();
        let mut ow = ow_out[b].clone();
        for op in (block.start..block.end).rev() {
            let Some(&(slot, kind)) = summary.accesses.get(&op) else {
                continue;
            };
            // `live`/`ow` currently describe the point *after* this op.
            if matches!(kind, AccessKind::Write | AccessKind::ReadWrite)
                && !summary.escaped.contains(&slot)
            {
                let name = &summary.slots[slot].name;
                if ow.contains(slot) {
                    diags.push(Diagnostic::new(
                        DiagnosticKind::DeadStore,
                        cfg.line_of(op),
                        cfg.name.clone(),
                        format!("value stored to `{name}` may be overwritten before it is read"),
                    ));
                } else if !live.contains(slot) {
                    diags.push(Diagnostic::new(
                        DiagnosticKind::DeadStore,
                        cfg.line_of(op),
                        cfg.name.clone(),
                        format!("value stored to `{name}` is never read"),
                    ));
                }
            }
            // Update to the point before the op.
            match kind {
                AccessKind::Read | AccessKind::ReadWrite => {
                    live.insert(slot);
                    ow.remove(slot);
                }
                AccessKind::Write => {
                    live.remove(slot);
                    ow.insert(slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let program = minic::compile("t.c", src).expect("fixture compiles");
        analyze(&program)
    }

    fn kinds(diags: &[Diagnostic]) -> Vec<DiagnosticKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let diags = run(
            "int main() { long x = 3; long* p = malloc(16); p[0] = x; long y = p[0]; free(p); return (int)y; }",
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn uninit_read_is_flagged_with_line() {
        let diags = run("int main() {\n  long x;\n  long y = x + 1;\n  return (int)y;\n}");
        let d = diags
            .iter()
            .find(|d| d.kind == DiagnosticKind::UninitRead)
            .expect("uninit read finding");
        assert_eq!(d.span, 3);
        assert_eq!(d.function, "main");
        assert!(d.message.contains("`x`"), "{}", d.message);
    }

    #[test]
    fn uninit_read_on_one_path_only() {
        let diags = run(
            "int main() {\n  long c = 1;\n  long x;\n  if (c) { x = 5; }\n  long y = x;\n  return (int)y;\n}",
        );
        let d = diags
            .iter()
            .find(|d| d.kind == DiagnosticKind::UninitRead)
            .expect("may-uninit finding");
        assert!(d.message.contains("some path"), "{}", d.message);
    }

    #[test]
    fn initialized_before_loop_is_clean() {
        let diags = run(
            "int main() { long i = 0; long acc = 0; while (i < 4) { acc = acc + i; i = i + 1; } return (int)acc; }",
        );
        assert!(
            !kinds(&diags).contains(&DiagnosticKind::UninitRead),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_store_overwrite_flags_first_store() {
        let diags = run("int main() {\n  long x = 1;\n  x = 2;\n  return (int)x;\n}");
        let d = diags
            .iter()
            .find(|d| d.kind == DiagnosticKind::DeadStore)
            .expect("dead store finding");
        assert_eq!(d.span, 2, "span must be the overwritten store: {diags:?}");
    }

    #[test]
    fn loop_counter_is_not_a_dead_store() {
        let diags = run("int main() { long i = 0; while (i < 3) { i = i + 1; } return 0; }");
        // The final `i = i + 1` is never read again, but every store is
        // read by the loop condition first — only the may-overwrite rule
        // must stay quiet; the never-read rule does not apply since the
        // condition reads i after each store.
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::DeadStore)
            .collect();
        assert!(dead.is_empty(), "{dead:?}");
    }

    #[test]
    fn all_six_kinds_are_reachable() {
        let sources = [
            "int main() {\n  long x;\n  return (int)x;\n}",
            "int main() { long* p = malloc(16); free(p); return (int)p[0]; }",
            "int main() { long* p = malloc(16); free(p); free(p); return 0; }",
            "int main() { long* p = malloc(16); p[2] = 1; free(p); return 0; }",
            "int main() { long x = 1; x = 2; return (int)x; }",
            "int main() { long* p = malloc(16); return 0; }",
        ];
        let expected = [
            DiagnosticKind::UninitRead,
            DiagnosticKind::UseAfterFree,
            DiagnosticKind::DoubleFree,
            DiagnosticKind::OutOfBounds,
            DiagnosticKind::DeadStore,
            DiagnosticKind::Leak,
        ];
        for (src, want) in sources.iter().zip(expected) {
            let diags = run(src);
            assert!(
                kinds(&diags).contains(&want),
                "{want:?} not found in {diags:?} for {src}"
            );
        }
    }

    #[test]
    fn diagnostics_are_sorted_and_deduped() {
        let diags = run(
            "int main() {\n  long* p = malloc(16);\n  free(p);\n  free(p);\n  free(p);\n  return 0;\n}",
        );
        let mut sorted = diags.clone();
        sorted.sort_by_key(|d| (d.span, d.kind, d.function.clone()));
        assert_eq!(diags, sorted);
        let dfs: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == DiagnosticKind::DoubleFree)
            .collect();
        assert_eq!(dfs.len(), 2, "one per offending line: {diags:?}");
    }

    #[test]
    fn pass_timings_are_recorded() {
        let registry = obs::Registry::new();
        let program = minic::compile("t.c", "int main() { return 0; }").unwrap();
        let _ = analyze_with_registry(&program, &registry);
        let snap = registry.snapshot();
        for pass in ["cfg", "interp", "dominators", "reaching", "liveness"] {
            assert!(
                snap.histogram(&format!("analysis.pass_ns.{pass}"))
                    .is_some(),
                "missing histogram for pass {pass}"
            );
        }
    }
}
