//! A self-contained HTML viewer for Python-Tutor traces.
//!
//! The paper's Fig. 10 artifact ships a `demo.html` the reader opens in a
//! browser, stepping through the trace with a Forward button. This module
//! generates the same kind of artifact: one HTML file embedding the trace
//! JSON and a small vanilla-JS walker that renders the source with the
//! current line highlighted, the stack frames with their variables, the
//! heap objects, and the program output — no server, no dependencies.

use serde_json::Value as Json;

/// Renders a trace (as produced by [`crate::trace_from_recording`]) into a
/// single self-contained HTML page with Forward/Back controls and a
/// timeline scrub slider for jumping straight to any pause.
pub fn render_html(trace: &Json, title: &str) -> String {
    let json = serde_json::to_string(trace).unwrap_or_else(|_| "{}".into());
    // Guard the inline <script> against `</script>` inside string values.
    let json = json.replace("</", "<\\/");
    let title = title
        .replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;");
    format!(
        r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: monospace; display: flex; gap: 24px; margin: 20px; }}
#code {{ white-space: pre; border: 1px solid #aaa; padding: 8px; min-width: 320px; }}
#code .cur {{ background: #fff3c4; display: inline-block; width: 100%; }}
#panel {{ max-width: 560px; }}
.frame {{ border: 1px solid #334; background: #f4f6fb; margin: 6px 0; padding: 6px; }}
.frame h4 {{ margin: 0 0 4px 0; }}
.heapobj {{ border: 1px solid #252; background: #eef8ef; margin: 6px 0; padding: 6px; }}
#out {{ white-space: pre; background: #111; color: #ddd; padding: 6px; min-height: 2em; }}
button {{ font-size: 14px; margin-right: 6px; }}
</style>
</head>
<body>
<div id="code"></div>
<div id="panel">
  <div>
    <button id="back">&#9664; Back</button>
    <button id="fwd">Forward &#9654;</button>
    <span id="pos"></span>
  </div>
  <div>
    <input type="range" id="scrub" min="0" value="0" style="width: 100%">
  </div>
  <h3>Frames</h3><div id="frames"></div>
  <h3>Heap</h3><div id="heap"></div>
  <h3>Output</h3><div id="out"></div>
</div>
<script>
const data = {json};
let i = 0;
function enc(v) {{
  if (Array.isArray(v)) {{
    const t = v[0];
    if (t === "REF") return "&rarr;@" + v[1];
    if (t === "FUNCTION") return "fn " + v[1];
    if (t === "LIST" || t === "TUPLE") {{
      const inner = v.slice(1).map(enc).join(", ");
      return t === "LIST" ? "[" + inner + "]" : "(" + inner + ")";
    }}
    if (t === "DICT") return "{{" + v.slice(1).map(p => enc(p[0]) + ": " + enc(p[1])).join(", ") + "}}";
    if (t === "INSTANCE") return v[1] + "{{" + v.slice(2).map(p => p[0] + ": " + enc(p[1])).join(", ") + "}}";
    return JSON.stringify(v);
  }}
  if (v === null) return "None";
  if (typeof v === "string") return JSON.stringify(v);
  return String(v);
}}
function esc(s) {{
  return s.replace(/&/g, "&amp;").replace(/</g, "&lt;").replace(/>/g, "&gt;");
}}
function show() {{
  const steps = data.trace || [];
  const step = steps[i] || {{}};
  const scrub = document.getElementById("scrub");
  scrub.max = Math.max(steps.length - 1, 0);
  scrub.value = i;
  const lines = (data.code || "").split("\n");
  document.getElementById("code").innerHTML = lines
    .map((l, k) => (k + 1 === step.line ? '<span class="cur">' : "<span>") + esc(l) + " </span>")
    .join("\n");
  document.getElementById("pos").textContent =
    "step " + (steps.length ? i + 1 : 0) + " / " + steps.length +
    (step.event ? " (" + step.event + ")" : "");
  const frames = (step.stack_to_render || []).slice().reverse();
  document.getElementById("frames").innerHTML = frames
    .map(f => '<div class="frame"><h4>' + esc(f.func_name) + "</h4>" +
      (f.ordered_varnames || [])
        .map(n => esc(n) + " = " + esc(enc(f.encoded_locals[n])))
        .join("<br>") + "</div>")
    .join("") +
    '<div class="frame"><h4>globals</h4>' +
    (step.ordered_globals || [])
      .map(n => esc(n) + " = " + esc(enc((step.globals || {{}})[n])))
      .join("<br>") + "</div>";
  const heap = step.heap || {{}};
  document.getElementById("heap").innerHTML = Object.keys(heap)
    .map(id => '<div class="heapobj">@' + id + ": " + esc(enc(heap[id])) + "</div>")
    .join("");
  document.getElementById("out").textContent = step.stdout || "";
}}
document.getElementById("fwd").onclick = () => {{
  if (i + 1 < (data.trace || []).length) {{ i++; show(); }}
}};
document.getElementById("back").onclick = () => {{
  if (i > 0) {{ i--; show(); }}
}};
document.getElementById("scrub").oninput = e => {{
  i = Math.min(Math.max(+e.target.value, 0), Math.max((data.trace || []).length - 1, 0));
  show();
}};
show();
</script>
</body>
</html>
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample_trace() -> Json {
        json!({
            "code": "x = [1]\ny = x\n",
            "trace": [
                {
                    "event": "step_line",
                    "line": 1,
                    "func_name": "<module>",
                    "stack_to_render": [],
                    "globals": {},
                    "ordered_globals": [],
                    "heap": {},
                    "stdout": ""
                },
                {
                    "event": "step_line",
                    "line": 2,
                    "func_name": "<module>",
                    "stack_to_render": [],
                    "globals": {"x": ["REF", 7]},
                    "ordered_globals": ["x"],
                    "heap": {"7": ["LIST", 1]},
                    "stdout": "hi\n"
                }
            ]
        })
    }

    #[test]
    fn html_embeds_trace_and_controls() {
        let html = render_html(&sample_trace(), "demo");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<title>demo</title>"));
        assert!(html.contains("id=\"fwd\""));
        assert!(html.contains("id=\"back\""));
        assert!(html.contains("id=\"scrub\""));
        assert!(html.contains("type=\"range\""));
        assert!(html.contains("\"trace\":"));
        assert!(html.contains("REF"));
    }

    #[test]
    fn script_breaking_content_is_escaped() {
        let tricky = json!({
            "code": "s = '</script><script>alert(1)'",
            "trace": []
        });
        let html = render_html(&tricky, "t < & >");
        assert!(!html.contains("</script><script>alert"));
        assert!(html.contains("t &lt; &amp; &gt;"));
    }

    #[test]
    fn roundtrip_from_real_recording() {
        use easytracker::{PyTracker, Recording, Tracker};
        let mut t = PyTracker::load("h.py", "a = [1, 2]\nprint(a)\n").unwrap();
        let rec = Recording::capture(&mut t).unwrap();
        t.terminate();
        let trace = crate::trace_from_recording(&rec);
        let html = render_html(&trace, "h.py");
        assert!(html.contains("a = [1, 2]"));
        assert!(html.len() > 2000);
    }
}
