//! Python-Tutor-compatible execution traces (paper §III-E, Fig. 10).
//!
//! Python Tutor's front end walks a JSON trace with one entry per executed
//! line: each entry carries the event kind, the stack frames with encoded
//! locals, a heap dictionary keyed by object id, and the accumulated
//! stdout. This crate converts EasyTracker [`Recording`]s into that format
//! ([`trace_from_recording`]) and back ([`recording_from_trace`]), so:
//!
//! * any tracker run can drive the PT front end (export direction), and
//! * a PT trace can drive the full EasyTracker control API through
//!   [`easytracker::ReplayTracker`] (import direction).
//!
//! The export can be *partial* — restricted to chosen functions and
//! variables, like the paper's example that shrinks the trace by ~10× —
//! via [`ExportOptions`].
//!
//! # Value encoding
//!
//! Primitives are encoded directly (numbers, strings, booleans, `null`);
//! compound values live in the `heap` map keyed by their address and are
//! referenced as `["REF", id]`; invalid C pointers encode as the string
//! `"<invalid>"`, matching the cross the diagrams draw.

pub mod html;

use easytracker::{RecordedStep, Recording};
use serde_json::{json, Map, Value as Json};
use state::{
    AbstractType, Content, Frame, PauseReason, Prim, ProgramState, Scope, SourceLocation, Value,
    Variable,
};
use std::collections::BTreeMap;

/// Controls which parts of the execution are exported.
#[derive(Debug, Clone, Default)]
pub struct ExportOptions {
    /// Keep only steps whose innermost frame is one of these functions.
    pub only_functions: Option<Vec<String>>,
    /// Keep only these variables in every frame.
    pub only_variables: Option<Vec<String>>,
    /// Keep only steps within this inclusive line range.
    pub line_range: Option<(u32, u32)>,
}

impl ExportOptions {
    fn keep_step(&self, step: &RecordedStep) -> bool {
        if let Some(funcs) = &self.only_functions {
            if !funcs.iter().any(|f| f == step.state.frame.name()) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.line_range {
            let line = step.state.frame.location().line();
            if line < lo || line > hi {
                return false;
            }
        }
        true
    }

    fn keep_var(&self, name: &str) -> bool {
        match &self.only_variables {
            Some(vars) => vars.iter().any(|v| v == name),
            None => true,
        }
    }
}

/// Exports a recording as a full Python-Tutor trace.
pub fn trace_from_recording(rec: &Recording) -> Json {
    trace_with_options(rec, &ExportOptions::default())
}

/// Exports a recording with filtering (the paper's partial traces).
pub fn trace_with_options(rec: &Recording, opts: &ExportOptions) -> Json {
    let mut stdout = String::new();
    let mut trace = Vec::new();
    for step in &rec.steps {
        stdout.push_str(&step.output_delta);
        if !opts.keep_step(step) {
            continue;
        }
        trace.push(encode_step(step, &stdout, opts));
    }
    json!({
        "code": rec.source,
        "trace": trace,
    })
}

fn event_name(reason: &PauseReason) -> &'static str {
    match reason {
        PauseReason::FunctionCall { .. } => "call",
        PauseReason::FunctionReturn { .. } => "return",
        PauseReason::Exited(_) => "return",
        _ => "step_line",
    }
}

fn encode_step(step: &RecordedStep, stdout: &str, opts: &ExportOptions) -> Json {
    let state = &step.state;
    let mut heap = BTreeMap::new();
    let mut frames_json = Vec::new();
    let frames: Vec<&Frame> = state.frame.chain().collect();
    let innermost = frames.first().map(|f| f.name().to_owned());
    for (i, f) in frames.iter().rev().enumerate() {
        let mut locals = Map::new();
        let mut order = Vec::new();
        for var in f.variables() {
            if !opts.keep_var(var.name()) {
                continue;
            }
            order.push(Json::String(var.name().to_owned()));
            locals.insert(var.name().to_owned(), encode_value(var.value(), &mut heap));
        }
        frames_json.push(json!({
            "func_name": f.name(),
            "frame_id": i,
            "unique_hash": format!("{}_{}", f.name(), i),
            "encoded_locals": locals,
            "ordered_varnames": order,
            "is_highlighted": Some(f.name().to_owned()) == innermost,
            "is_parent": false,
            "is_zombie": false,
            "parent_frame_id_list": Json::Array(Vec::new()),
        }));
    }
    let mut globals = Map::new();
    let mut ordered_globals = Vec::new();
    for g in &state.globals {
        if !opts.keep_var(g.name()) {
            continue;
        }
        ordered_globals.push(Json::String(g.name().to_owned()));
        globals.insert(g.name().to_owned(), encode_value(g.value(), &mut heap));
    }
    let heap_json: Map<String, Json> = heap
        .into_iter()
        .map(|(id, v)| (id.to_string(), v))
        .collect();
    json!({
        "event": event_name(&state.reason),
        "line": state.frame.location().line(),
        "func_name": state.frame.name(),
        "stack_to_render": frames_json,
        "globals": globals,
        "ordered_globals": ordered_globals,
        "heap": heap_json,
        "stdout": stdout,
    })
}

/// Encodes one value; compound values are interned into `heap`.
fn encode_value(value: &Value, heap: &mut BTreeMap<u64, Json>) -> Json {
    match value.content() {
        Content::Primitive(p) => match p {
            Prim::Int(v) => json!(v),
            Prim::Float(v) => json!(v),
            Prim::Str(s) => json!(s),
            Prim::Bool(b) => json!(b),
            Prim::Char(c) => json!(c.to_string()),
        },
        Content::Nothing => {
            if value.abstract_type() == AbstractType::Invalid {
                // Keep the dangling/invalid distinction `state::render` draws.
                if value.location() == state::Location::Heap {
                    json!("<dangling>")
                } else {
                    json!("<invalid>")
                }
            } else {
                Json::Null
            }
        }
        Content::Function(name) => json!(["FUNCTION", name]),
        Content::Ref(target) => {
            let Some(id) = target.address() else {
                return encode_value(target, heap);
            };
            if !heap.contains_key(&id) {
                // Reserve the slot first so cycles terminate.
                heap.insert(id, Json::Null);
                let encoded = encode_compound(target, heap);
                heap.insert(id, encoded);
            }
            json!(["REF", id])
        }
        // Bare compound (C arrays/structs held by value on the stack):
        // intern under their own address when known.
        _ => match value.address() {
            Some(id) => {
                if !heap.contains_key(&id) {
                    heap.insert(id, Json::Null);
                    let encoded = encode_compound(value, heap);
                    heap.insert(id, encoded);
                }
                json!(["REF", id])
            }
            None => encode_compound(value, heap),
        },
    }
}

fn encode_compound(value: &Value, heap: &mut BTreeMap<u64, Json>) -> Json {
    match value.content() {
        Content::List(items) => {
            let tag = if value.language_type() == "tuple" {
                "TUPLE"
            } else {
                "LIST"
            };
            let mut arr = vec![json!(tag)];
            arr.extend(items.iter().map(|i| encode_value(i, heap)));
            Json::Array(arr)
        }
        Content::Dict(entries) => {
            let mut arr = vec![json!("DICT")];
            arr.extend(
                entries
                    .iter()
                    .map(|(k, v)| json!([encode_value(k, heap), encode_value(v, heap)])),
            );
            Json::Array(arr)
        }
        Content::Struct(fields) => {
            let mut arr = vec![json!("INSTANCE"), json!(value.language_type())];
            arr.extend(
                fields
                    .iter()
                    .map(|(n, v)| json!([n, encode_value(v, heap)])),
            );
            Json::Array(arr)
        }
        _ => encode_value(value, heap),
    }
}

// ---------------------------------------------------------------------------
// Import
// ---------------------------------------------------------------------------

/// Decodes a Python-Tutor trace (as produced by [`trace_from_recording`])
/// back into an EasyTracker [`Recording`], enabling the full control API
/// on the trace through [`easytracker::ReplayTracker`].
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn recording_from_trace(trace: &Json, file: &str) -> Result<Recording, String> {
    let code = trace
        .get("code")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_owned();
    let entries = trace
        .get("trace")
        .and_then(Json::as_array)
        .ok_or("missing trace array")?;
    let mut steps = Vec::new();
    let mut prev_stdout = String::new();
    for entry in entries {
        let line = entry.get("line").and_then(Json::as_u64).unwrap_or(0) as u32;
        let heap = entry
            .get("heap")
            .and_then(Json::as_object)
            .cloned()
            .unwrap_or_default();
        let empty = Vec::new();
        let stack = entry
            .get("stack_to_render")
            .and_then(Json::as_array)
            .unwrap_or(&empty);
        // Frames come outermost-first in PT traces.
        let mut frame_acc: Option<Frame> = None;
        for (depth, fj) in stack.iter().enumerate() {
            let name = fj
                .get("func_name")
                .and_then(Json::as_str)
                .unwrap_or("<module>");
            let mut frame = Frame::new(
                name,
                depth as u32,
                SourceLocation::new(file.to_owned(), line),
            );
            decode_bindings(fj, &heap, Scope::Local, |var| frame.insert_variable(var))?;
            if let Some(parent) = frame_acc.take() {
                frame.set_parent(parent);
            }
            frame_acc = Some(frame);
        }
        let mut frame = frame_acc.unwrap_or_else(|| {
            Frame::new("<module>", 0, SourceLocation::new(file.to_owned(), line))
        });
        // PT reports the执行 position only on the innermost frame; ours
        // stores it per frame, which the loop above already set.
        let _ = &mut frame;
        let mut globals = Vec::new();
        if let (Some(gmap), Some(gorder)) = (
            entry.get("globals").and_then(Json::as_object),
            entry.get("ordered_globals").and_then(Json::as_array),
        ) {
            for name in gorder.iter().filter_map(Json::as_str) {
                if let Some(v) = gmap.get(name) {
                    globals.push(Variable::new(
                        name,
                        Scope::Global,
                        decode_value(v, &heap, &mut Vec::new()),
                    ));
                }
            }
        }
        let event = entry
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or("step_line");
        let reason = match event {
            "call" => PauseReason::FunctionCall {
                function: frame.name().to_owned(),
                depth: frame.depth(),
            },
            "return" => PauseReason::FunctionReturn {
                function: frame.name().to_owned(),
                depth: frame.depth(),
                return_value: None,
            },
            _ => PauseReason::Step,
        };
        let stdout = entry
            .get("stdout")
            .and_then(Json::as_str)
            .unwrap_or_default();
        let delta = stdout
            .strip_prefix(prev_stdout.as_str())
            .unwrap_or(stdout)
            .to_owned();
        prev_stdout = stdout.to_owned();
        steps.push(RecordedStep {
            state: ProgramState::new(frame, globals, reason),
            output_delta: delta,
        });
    }
    Ok(Recording {
        file: file.to_owned(),
        source: code,
        steps,
        exit_code: 0,
    })
}

fn decode_bindings(
    frame_json: &Json,
    heap: &Map<String, Json>,
    scope: Scope,
    mut sink: impl FnMut(Variable),
) -> Result<(), String> {
    let Some(order) = frame_json.get("ordered_varnames").and_then(Json::as_array) else {
        return Ok(());
    };
    let locals = frame_json
        .get("encoded_locals")
        .and_then(Json::as_object)
        .ok_or("frame without encoded_locals")?;
    for name in order.iter().filter_map(Json::as_str) {
        if let Some(v) = locals.get(name) {
            sink(Variable::new(
                name,
                scope,
                decode_value(v, heap, &mut Vec::new()),
            ));
        }
    }
    Ok(())
}

fn decode_value(v: &Json, heap: &Map<String, Json>, visiting: &mut Vec<u64>) -> Value {
    match v {
        Json::Null => Value::none("NoneType"),
        Json::Bool(b) => Value::primitive(Prim::Bool(*b), "bool"),
        Json::Number(n) => {
            if let Some(i) = n.as_i64() {
                Value::primitive(Prim::Int(i), "int")
            } else {
                Value::primitive(Prim::Float(n.as_f64().unwrap_or(0.0)), "float")
            }
        }
        Json::String(s) if s == "<invalid>" => Value::invalid("pointer"),
        Json::String(s) if s == "<dangling>" => {
            Value::invalid("pointer").with_location(state::Location::Heap)
        }
        Json::String(s) => Value::primitive(Prim::Str(s.clone()), "str"),
        Json::Array(arr) => decode_tagged(arr, heap, visiting),
        Json::Object(_) => Value::none("unknown"),
    }
}

fn decode_tagged(arr: &[Json], heap: &Map<String, Json>, visiting: &mut Vec<u64>) -> Value {
    let Some(tag) = arr.first().and_then(Json::as_str) else {
        return Value::none("unknown");
    };
    match tag {
        "REF" => {
            let Some(id) = arr.get(1).and_then(Json::as_u64) else {
                return Value::invalid("ref");
            };
            if visiting.contains(&id) {
                return Value::reference(
                    Value::none("object")
                        .with_location(state::Location::Heap)
                        .with_address(id),
                    "ref",
                );
            }
            visiting.push(id);
            let target = heap
                .get(&id.to_string())
                .map(|t| decode_value(t, heap, visiting))
                .unwrap_or_else(|| Value::none("object"))
                .with_location(state::Location::Heap)
                .with_address(id);
            visiting.pop();
            let lt = format!("ref[{}]", target.language_type());
            Value::reference(target, lt)
        }
        "FUNCTION" => {
            let name = arr.get(1).and_then(Json::as_str).unwrap_or("?");
            Value::function(name, "function")
        }
        "LIST" | "TUPLE" => {
            let items = arr[1..]
                .iter()
                .map(|i| decode_value(i, heap, visiting))
                .collect();
            Value::list(items, if tag == "TUPLE" { "tuple" } else { "list" })
        }
        "DICT" => {
            let entries = arr[1..]
                .iter()
                .filter_map(Json::as_array)
                .filter(|pair| pair.len() == 2)
                .map(|pair| {
                    (
                        decode_value(&pair[0], heap, visiting),
                        decode_value(&pair[1], heap, visiting),
                    )
                })
                .collect();
            Value::dict(entries, "dict")
        }
        "INSTANCE" => {
            let class = arr.get(1).and_then(Json::as_str).unwrap_or("object");
            let fields = arr[2..]
                .iter()
                .filter_map(Json::as_array)
                .filter(|pair| pair.len() == 2)
                .filter_map(|pair| {
                    pair[0]
                        .as_str()
                        .map(|n| (n.to_owned(), decode_value(&pair[1], heap, visiting)))
                })
                .collect();
            Value::structure(fields, class)
        }
        _ => Value::none("unknown"),
    }
}

/// Size of a trace in serialized bytes (the Fig. 10 reduction metric).
pub fn trace_size(trace: &Json) -> usize {
    serde_json::to_string(trace).map(|s| s.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytracker::{PyTracker, ReplayTracker, Tracker};

    fn record_py(src: &str) -> Recording {
        let mut t = PyTracker::load("p.py", src).unwrap();
        let rec = Recording::capture(&mut t).unwrap();
        t.terminate();
        rec
    }

    #[test]
    fn export_basic_shape() {
        let rec = record_py("x = [1, 2]\ny = x\nprint(len(x))\n");
        let trace = trace_from_recording(&rec);
        let entries = trace["trace"].as_array().unwrap();
        assert_eq!(entries.len(), rec.len());
        assert_eq!(trace["code"].as_str().unwrap(), rec.source);
        let last = entries.last().unwrap();
        assert_eq!(last["stdout"].as_str().unwrap(), "2\n");
        // The list lives in the heap, referenced from the globals.
        let heap = last["heap"].as_object().unwrap();
        assert!(!heap.is_empty());
        let globals = last["globals"].as_object().unwrap();
        let x = globals["x"].as_array().unwrap();
        assert_eq!(x[0], "REF");
    }

    #[test]
    fn aliases_share_heap_ids() {
        let rec = record_py("a = [1]\nb = a\nc = [1]\nz = 0\n");
        let trace = trace_from_recording(&rec);
        let last = trace["trace"].as_array().unwrap().last().unwrap().clone();
        let g = last["globals"].as_object().unwrap();
        assert_eq!(g["a"][1], g["b"][1], "aliased lists share an id");
        assert_ne!(g["a"][1], g["c"][1]);
    }

    #[test]
    fn call_events_marked() {
        let rec = record_py("def f(x):\n    return x\nf(1)\n");
        let trace = trace_from_recording(&rec);
        let events: Vec<&str> = trace["trace"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e["event"].as_str().unwrap())
            .collect();
        // Step recordings contain a step inside f (depth change shows in
        // stack_to_render length).
        let max_stack = trace["trace"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e["stack_to_render"].as_array().unwrap().len())
            .max()
            .unwrap();
        assert_eq!(max_stack, 2);
        assert!(events.iter().all(|e| *e == "step_line" || *e == "return"));
    }

    #[test]
    fn partial_export_shrinks_trace() {
        let src = "def work(n):\n    t = 0\n    for i in range(20):\n        t = t + i\n    return t\nr = work(3)\nprint(r)\n";
        let rec = record_py(src);
        let full = trace_from_recording(&rec);
        let partial = trace_with_options(
            &rec,
            &ExportOptions {
                only_functions: Some(vec!["<module>".into()]),
                ..Default::default()
            },
        );
        let full_size = trace_size(&full);
        let partial_size = trace_size(&partial);
        assert!(
            partial_size * 5 < full_size,
            "partial trace should be much smaller ({partial_size} vs {full_size})"
        );
    }

    #[test]
    fn variable_filter() {
        let rec = record_py("a = 1\nsecret = 2\nb = 3\n");
        let trace = trace_with_options(
            &rec,
            &ExportOptions {
                only_variables: Some(vec!["a".into(), "b".into()]),
                ..Default::default()
            },
        );
        let last = trace["trace"].as_array().unwrap().last().unwrap();
        let g = last["globals"].as_object().unwrap();
        assert!(g.contains_key("a"));
        assert!(!g.contains_key("secret"));
    }

    #[test]
    fn roundtrip_through_pt_format() {
        let rec = record_py("def f(x):\n    return x * 2\ny = f(21)\n");
        let trace = trace_from_recording(&rec);
        let back = recording_from_trace(&trace, "p.py").unwrap();
        assert_eq!(back.len(), rec.len());
        assert_eq!(back.source, rec.source);
        // The replay tracker drives the decoded trace.
        let mut t = ReplayTracker::new(back);
        t.start().unwrap();
        let mut saw_f = false;
        while t.get_exit_code().is_none() {
            if t.get_current_frame().unwrap().name() == "f" {
                saw_f = true;
                let x = t.get_variable("x").unwrap().unwrap();
                assert_eq!(state::render_value(x.value().deref_fully()), "21");
            }
            t.step().unwrap();
        }
        assert!(saw_f);
    }

    #[test]
    fn c_recording_exports_with_invalid_pointers() {
        use easytracker::MiTracker;
        let mut t = MiTracker::load_c(
            "p.c",
            "int main() {\nint* p = malloc(8);\nfree(p);\nreturn 0;\n}",
        )
        .unwrap();
        let rec = Recording::capture(&mut t).unwrap();
        t.terminate();
        let trace = trace_from_recording(&rec);
        let text = serde_json::to_string(&trace).unwrap();
        assert!(text.contains("<invalid>"));
    }

    #[test]
    fn malformed_trace_rejected() {
        assert!(recording_from_trace(&serde_json::json!({}), "x.py").is_err());
    }
}
