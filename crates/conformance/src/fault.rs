//! Deterministic MI fault injection.
//!
//! [`FaultTransport`] wraps any [`Transport`] and mangles selected
//! received frames: truncation, byte corruption, duplication, or a
//! mid-command EOF. The conformance contract it checks (see
//! `tests/fault_injection.rs`) is that every injected fault surfaces as a
//! *typed* error — [`MiError`] on the client side, a typed
//! `Response::Error` on the server side — never a panic, a hang, or a
//! silently desynchronized session, and that re-issuing the failed
//! command succeeds.

use mi::transport::{Transport, TransportCounters};
use mi::MiError;

/// What to do to a received frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the frame's payload in half.
    Truncate,
    /// Flip the bits of the payload's middle byte.
    Corrupt,
    /// Deliver the frame, then deliver it again on the next receive.
    Duplicate,
    /// Report EOF for this receive; the frame is delivered (stale) on the
    /// next receive, as if the peer resent its buffer on reconnect.
    Eof,
}

impl FaultKind {
    /// Every kind, for exhaustive test loops.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Truncate,
        FaultKind::Corrupt,
        FaultKind::Duplicate,
        FaultKind::Eof,
    ];

    /// Stable lowercase name, used in obs counter keys.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Truncate => "truncate",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Eof => "eof",
        }
    }
}

/// A transport proxy injecting a deterministic fault plan.
///
/// The plan is a list of `(receive_index, kind)` pairs; receive indices
/// are 1-based and count calls to [`Transport::recv`]. Each injection
/// increments `conformance.fault.injected.<kind>` in the registry.
pub struct FaultTransport<T> {
    inner: T,
    plan: Vec<(usize, FaultKind)>,
    recv_count: usize,
    queued: Option<Vec<u8>>,
    registry: obs::Registry,
}

impl<T> FaultTransport<T> {
    /// Wraps `inner` with the given fault plan, counting into `registry`.
    pub fn new(inner: T, plan: Vec<(usize, FaultKind)>, registry: obs::Registry) -> Self {
        FaultTransport {
            inner,
            plan,
            recv_count: 0,
            queued: None,
            registry,
        }
    }

    /// Convenience: a single fault at receive number `at`.
    pub fn single(inner: T, at: usize, kind: FaultKind, registry: obs::Registry) -> Self {
        Self::new(inner, vec![(at, kind)], registry)
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError> {
        self.inner.send(frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, MiError> {
        if let Some(frame) = self.queued.take() {
            return Ok(frame);
        }
        self.recv_count += 1;
        let fault = self
            .plan
            .iter()
            .find(|(at, _)| *at == self.recv_count)
            .map(|(_, k)| *k);
        let Some(kind) = fault else {
            return self.inner.recv();
        };
        self.registry
            .inc(&format!("conformance.fault.injected.{}", kind.name()));
        match kind {
            FaultKind::Truncate => {
                let mut frame = self.inner.recv()?;
                frame.truncate(frame.len() / 2);
                Ok(frame)
            }
            FaultKind::Corrupt => {
                let mut frame = self.inner.recv()?;
                let mid = frame.len() / 2;
                if let Some(b) = frame.get_mut(mid) {
                    *b ^= 0xFF;
                }
                Ok(frame)
            }
            FaultKind::Duplicate => {
                let frame = self.inner.recv()?;
                self.queued = Some(frame.clone());
                Ok(frame)
            }
            FaultKind::Eof => {
                let frame = self.inner.recv()?;
                self.queued = Some(frame);
                Err(MiError::Disconnected)
            }
        }
    }

    fn counters(&self) -> TransportCounters {
        self.inner.counters()
    }
}
