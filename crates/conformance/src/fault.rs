//! Deterministic MI fault injection.
//!
//! Two layers of chaos, both deterministic:
//!
//! * [`FaultTransport`] wraps any [`Transport`] and mangles selected
//!   received frames: truncation, byte corruption, duplication, a
//!   mid-command EOF, plus the *liveness* faults — a hang that eats the
//!   caller's deadline, a stall that delays delivery, and a crash that
//!   kills the link permanently.
//! * [`ChaosPort`] wraps a [`CommandPort`] (via
//!   [`chaos_wrapper`], an [`easytracker::PortWrapper`]) and wedges or
//!   kills the boundary at a chosen *call* index. Its trigger state is
//!   shared across engine respawns, so a one-shot schedule fires exactly
//!   once per supervised session no matter how often the supervisor
//!   rebuilds the port.
//!
//! The conformance contract (see `tests/fault_injection.rs` and
//! `tests/chaos.rs`): every injected fault surfaces as a *typed* error —
//! [`MiError`] on the client side, a typed `Response::Error` on the
//! server side — never a panic, a hang past the deadline, or a silently
//! desynchronized session; and a supervised session either recovers to
//! the exact fault-free behaviour or reports `SessionDegraded`.

use easytracker::PortWrapper;
use mi::protocol::{Command, Response};
use mi::transport::{Transport, TransportCounters};
use mi::{CommandPort, MiError};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to do to a received frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the frame's payload in half.
    Truncate,
    /// Flip the bits of the payload's middle byte.
    Corrupt,
    /// Deliver the frame, then deliver it again on the next receive.
    Duplicate,
    /// Report EOF for this receive; the frame is delivered (stale) on the
    /// next receive, as if the peer resent its buffer on reconnect.
    Eof,
    /// Wedge: sleep the caller's full deadline out, then report
    /// [`MiError::Timeout`]. The frame is *not* consumed — it arrives as
    /// a stale frame on a later receive. Without a deadline the hang is
    /// bounded at one second (a test harness must never truly hang).
    Hang,
    /// Delay delivery by 50 ms, then deliver normally — exercises
    /// deadline slack without changing observable behaviour.
    Stall,
    /// Kill the link: this receive and every receive/send after it report
    /// [`MiError::Disconnected`].
    Crash,
}

impl FaultKind {
    /// The frame-mangling kinds: faults that damage bytes on the wire
    /// but leave the link itself alive. Recovery from these never needs
    /// a respawn — re-issuing the failed command suffices.
    pub const WIRE: [FaultKind; 4] = [
        FaultKind::Truncate,
        FaultKind::Corrupt,
        FaultKind::Duplicate,
        FaultKind::Eof,
    ];

    /// Every kind, liveness faults included, for exhaustive test loops.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::Truncate,
        FaultKind::Corrupt,
        FaultKind::Duplicate,
        FaultKind::Eof,
        FaultKind::Hang,
        FaultKind::Stall,
        FaultKind::Crash,
    ];

    /// Stable lowercase name, used in obs counter keys.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Truncate => "truncate",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Eof => "eof",
            FaultKind::Hang => "hang",
            FaultKind::Stall => "stall",
            FaultKind::Crash => "crash",
        }
    }
}

/// A transport proxy injecting a deterministic fault plan.
///
/// The plan is a list of `(receive_index, kind)` pairs; receive indices
/// are 1-based and count calls to [`Transport::recv`]. Each injection
/// increments `conformance.fault.injected.<kind>` in the registry.
pub struct FaultTransport<T> {
    inner: T,
    plan: Vec<(usize, FaultKind)>,
    recv_count: usize,
    queued: Option<Vec<u8>>,
    crashed: bool,
    registry: obs::Registry,
}

impl<T> FaultTransport<T> {
    /// Wraps `inner` with the given fault plan, counting into `registry`.
    pub fn new(inner: T, plan: Vec<(usize, FaultKind)>, registry: obs::Registry) -> Self {
        FaultTransport {
            inner,
            plan,
            recv_count: 0,
            queued: None,
            crashed: false,
            registry,
        }
    }

    /// Convenience: a single fault at receive number `at`.
    pub fn single(inner: T, at: usize, kind: FaultKind, registry: obs::Registry) -> Self {
        Self::new(inner, vec![(at, kind)], registry)
    }
}

impl<T: Transport> FaultTransport<T> {
    fn inner_recv(&mut self, deadline: Option<Duration>) -> Result<Vec<u8>, MiError> {
        match deadline {
            None => self.inner.recv(),
            Some(d) => self.inner.recv_deadline(d),
        }
    }

    fn recv_impl(&mut self, deadline: Option<Duration>) -> Result<Vec<u8>, MiError> {
        if self.crashed {
            return Err(MiError::Disconnected);
        }
        if let Some(frame) = self.queued.take() {
            return Ok(frame);
        }
        self.recv_count += 1;
        let fault = self
            .plan
            .iter()
            .find(|(at, _)| *at == self.recv_count)
            .map(|(_, k)| *k);
        let Some(kind) = fault else {
            return self.inner_recv(deadline);
        };
        self.registry
            .inc(&format!("conformance.fault.injected.{}", kind.name()));
        match kind {
            FaultKind::Truncate => {
                let mut frame = self.inner_recv(deadline)?;
                frame.truncate(frame.len() / 2);
                Ok(frame)
            }
            FaultKind::Corrupt => {
                let mut frame = self.inner_recv(deadline)?;
                let mid = frame.len() / 2;
                if let Some(b) = frame.get_mut(mid) {
                    *b ^= 0xFF;
                }
                Ok(frame)
            }
            FaultKind::Duplicate => {
                let frame = self.inner_recv(deadline)?;
                self.queued = Some(frame.clone());
                Ok(frame)
            }
            FaultKind::Eof => {
                let frame = self.inner_recv(deadline)?;
                self.queued = Some(frame);
                Err(MiError::Disconnected)
            }
            FaultKind::Hang => {
                // The pending response is never read here; it surfaces
                // as a stale frame on a later receive, exactly like a
                // wedged peer waking back up.
                std::thread::sleep(deadline.unwrap_or(Duration::from_secs(1)));
                Err(MiError::Timeout)
            }
            FaultKind::Stall => {
                let delay = Duration::from_millis(50);
                std::thread::sleep(delay);
                self.inner_recv(deadline.map(|d| d.saturating_sub(delay)))
            }
            FaultKind::Crash => {
                self.crashed = true;
                Err(MiError::Disconnected)
            }
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), MiError> {
        if self.crashed {
            return Err(MiError::Disconnected);
        }
        self.inner.send(frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, MiError> {
        self.recv_impl(None)
    }

    fn recv_deadline(&mut self, deadline: Duration) -> Result<Vec<u8>, MiError> {
        self.recv_impl(Some(deadline))
    }

    fn counters(&self) -> TransportCounters {
        self.inner.counters()
    }
}

// ---- port-level chaos for supervised sessions ----------------------------

/// How a [`ChaosPort`] misbehaves when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// The boundary wedges for one call: the full deadline is slept out
    /// and [`MiError::Timeout`] is reported (bounded at one second when
    /// no deadline is set). Later calls behave normally.
    Hang,
    /// The engine dies: this and every later call on this port
    /// incarnation report [`MiError::Disconnected`]. Only a respawned
    /// port (a fresh incarnation from the wrapper) works again.
    Crash,
}

impl ChaosFault {
    /// Stable lowercase name, used in obs counter keys.
    pub fn name(self) -> &'static str {
        match self {
            ChaosFault::Hang => "hang",
            ChaosFault::Crash => "crash",
        }
    }
}

/// A one-shot chaos schedule: fire `fault` at the `at_call`-th
/// [`CommandPort`] call (1-based) of the supervised session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// 1-based call index at which the fault fires.
    pub at_call: usize,
    /// What happens there.
    pub fault: ChaosFault,
}

/// Trigger state shared by every incarnation of a chaos-wrapped port, so
/// the schedule is counted across respawns and fires exactly once.
#[derive(Debug, Default)]
pub struct ChaosState {
    calls: AtomicUsize,
    fired: AtomicBool,
}

impl ChaosState {
    /// Fresh, nothing fired.
    pub fn new() -> Arc<Self> {
        Arc::new(ChaosState::default())
    }

    /// Whether the scheduled fault has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Total port calls observed across all incarnations.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

/// A [`CommandPort`] proxy that wedges or kills the boundary per a
/// [`ChaosPlan`]. Built via [`chaos_wrapper`] so the supervisor re-wraps
/// every respawned port with the same shared [`ChaosState`].
pub struct ChaosPort {
    inner: Box<dyn CommandPort>,
    plan: ChaosPlan,
    state: Arc<ChaosState>,
    registry: obs::Registry,
    /// Crash fired on *this* incarnation: the engine behind it is gone.
    dead: bool,
}

impl ChaosPort {
    fn trigger(&mut self) -> Option<ChaosFault> {
        let n = self.state.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.plan.at_call && !self.state.fired.swap(true, Ordering::SeqCst) {
            self.registry.inc(&format!(
                "conformance.chaos.injected.{}",
                self.plan.fault.name()
            ));
            Some(self.plan.fault)
        } else {
            None
        }
    }

    fn fault_result(
        &mut self,
        fault: ChaosFault,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        match fault {
            ChaosFault::Hang => {
                std::thread::sleep(deadline.unwrap_or(Duration::from_secs(1)));
                Err(MiError::Timeout)
            }
            ChaosFault::Crash => {
                self.dead = true;
                Err(MiError::Disconnected)
            }
        }
    }

    fn call_impl(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        if self.dead {
            return Err(MiError::Disconnected);
        }
        if let Some(fault) = self.trigger() {
            return self.fault_result(fault, deadline);
        }
        match deadline {
            None => self.inner.call(command),
            Some(_) => self.inner.call_deadline(command, deadline),
        }
    }
}

impl CommandPort for ChaosPort {
    fn call(&mut self, command: Command) -> Result<Response, MiError> {
        self.call_impl(command, None)
    }

    fn call_deadline(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        self.call_impl(command, deadline)
    }

    fn counters(&self) -> TransportCounters {
        self.inner.counters()
    }
}

/// An [`easytracker::PortWrapper`] injecting `plan` with trigger state in
/// `state`; wraps the initial port and every respawned one.
pub fn chaos_wrapper(
    plan: ChaosPlan,
    state: Arc<ChaosState>,
    registry: obs::Registry,
) -> PortWrapper {
    Box::new(move |inner| {
        Box::new(ChaosPort {
            inner,
            plan,
            state: Arc::clone(&state),
            registry: registry.clone(),
            dead: false,
        })
    })
}

/// A counting passthrough port; [`counting_wrapper`] builds it. Used to
/// measure how many port calls a reference run makes, so a chaos schedule
/// can pick a seeded call index that is guaranteed to fire.
struct CountingPort {
    inner: Box<dyn CommandPort>,
    calls: Arc<AtomicUsize>,
}

impl CommandPort for CountingPort {
    fn call(&mut self, command: Command) -> Result<Response, MiError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.call(command)
    }

    fn call_deadline(
        &mut self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Response, MiError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.call_deadline(command, deadline)
    }

    fn counters(&self) -> TransportCounters {
        self.inner.counters()
    }
}

/// Wrapper counting every port call into `calls` (shared, survives
/// respawns).
pub fn counting_wrapper(calls: Arc<AtomicUsize>) -> PortWrapper {
    Box::new(move |inner| {
        Box::new(CountingPort {
            inner,
            calls: Arc::clone(&calls),
        })
    })
}

/// A port with nobody behind it: every call reports
/// [`MiError::Disconnected`]. [`dead_wrapper`] interposes it to simulate
/// an engine that can never be respawned (for respawn-storm tests).
pub struct DeadPort;

impl CommandPort for DeadPort {
    fn call(&mut self, _: Command) -> Result<Response, MiError> {
        Err(MiError::Disconnected)
    }

    fn counters(&self) -> TransportCounters {
        TransportCounters::default()
    }
}

/// Wrapper discarding the real port and substituting a [`DeadPort`], so
/// every (re)spawn comes up dead.
pub fn dead_wrapper() -> PortWrapper {
    Box::new(|inner| {
        drop(inner);
        Box::new(DeadPort)
    })
}
