//! The lockstep differential driver.
//!
//! Runs one generated program under multiple tracker deployments and
//! compares what the paper's API contract says must be equal:
//!
//! * same source, different deployments (MiTracker over an in-process
//!   channel, MiTracker over a real `mi-server` child process, live
//!   PyTracker vs [`ReplayTracker`] over its own recording): the *full
//!   serialized [`state::ProgramState`]* at every pause point, plus
//!   pause-reason sequence, output, and exit code;
//! * cross-language (MiniC vs MiniPy renderings of one AST): the printed
//!   output lines and the final residue, which the C side also returns
//!   as its exit code.
//!
//! All comparisons return [`Divergence`] values instead of panicking so
//! the shrinker (see [`crate::shrink`]) can re-run them on reduced
//! candidates.

use crate::fault::{chaos_wrapper, counting_wrapper, ChaosFault, ChaosPlan, ChaosState};
use crate::{gen, rng::Rng};
use easytracker::{
    MiTracker, ProgramSpec, PyTracker, Recording, ReplayTracker, Supervision, Tracker, TrackerError,
};
use state::PauseReason;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One observed disagreement between two legs of a differential run.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which comparison pair diverged (e.g. `c_channel_vs_replay`).
    pub pair: String,
    /// Seed of the generated program, for reproduction.
    pub seed: u64,
    /// Human-readable description of the first disagreement.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} seed={}] {}", self.pair, self.seed, self.detail)
    }
}

/// A step-granular trace of one run: per-pause reason + serialized state,
/// accumulated output, and the exit code.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// `(pause-reason debug, serialized ProgramState)` per pause point.
    pub steps: Vec<(String, String)>,
    /// Everything the program printed.
    pub output: String,
    /// Exit code, if the tracker reports one.
    pub exit: Option<i64>,
}

/// Drives differential runs and reports into an obs registry:
/// `conformance.programs_generated`, `conformance.divergences`, and
/// `conformance.pair.<name>` counters.
pub struct Driver {
    registry: obs::Registry,
    /// Tracker-side trace ring so a failing chaos check can write the
    /// two-lane merged trace next to its flight dump.
    trace: Arc<obs::ExportSink>,
    max_steps: usize,
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

impl Driver {
    /// A driver with a private registry.
    pub fn new() -> Self {
        Self::with_registry(obs::Registry::new())
    }

    /// A driver reporting into `registry`.
    pub fn with_registry(registry: obs::Registry) -> Self {
        let trace = Arc::new(obs::ExportSink::new(8192));
        registry.add_sink(trace.clone());
        Driver {
            registry,
            trace,
            max_steps: 20_000,
        }
    }

    /// The registry the driver counts into.
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }

    /// Generates the shared-AST program for `seed` and runs every cheap
    /// in-process pair over it (C channel-vs-replay, Py live-vs-replay,
    /// C-vs-Py output, asm channel-vs-replay). Empty result = conformant.
    pub fn check_seed(&self, seed: u64) -> Vec<Divergence> {
        let program = gen::gen_program(seed);
        let c = gen::render_c(&program);
        let py = gen::render_py(&program);
        self.registry.inc("conformance.programs_generated");
        let mut div = Vec::new();
        div.extend(self.diff_c_vs_replay(seed, &c));
        div.extend(self.diff_c_opt_vs_unopt(seed, &c));
        div.extend(self.diff_py_vs_replay(seed, &py));
        div.extend(self.diff_c_vs_py(seed, &c, &py));
        let asm = gen::render_asm(&gen::gen_asm(seed));
        self.registry.inc("conformance.programs_generated");
        div.extend(self.diff_asm_vs_replay(seed, &asm));
        self.count_divergences(&div);
        div
    }

    /// Best-effort companion to a flight dump: drain whatever telemetry
    /// the session can still produce and write the two-lane merged
    /// trace next to the dump, so the CI artifact trail carries the
    /// timeline as well as the post-mortem.
    fn write_merged_next_to(
        &self,
        chaos: &mut MiTracker,
        dump: Option<&std::path::Path>,
    ) -> Option<std::path::PathBuf> {
        let dump = dump?;
        // A degraded session refuses the drain; merge what was already
        // collected in that case.
        let _ = chaos.drain_telemetry();
        let (tracker_events, _, _) = self.trace.since(0);
        let path = dump.with_extension("trace.json");
        chaos.write_merged_trace(&path, &tracker_events).ok()?;
        Some(path)
    }

    fn count_divergences(&self, div: &[Divergence]) {
        if !div.is_empty() {
            self.registry
                .add("conformance.divergences", div.len() as u64);
        }
    }

    fn pair(&self, name: &str) {
        self.registry.inc(&format!("conformance.pair.{name}"));
    }

    /// Single-steps `t` from fresh to exit, recording every pause.
    pub fn step_trace(&self, t: &mut dyn Tracker) -> Result<Trace, TrackerError> {
        let mut steps = Vec::new();
        let mut output = String::new();
        let mut reason = t.start()?;
        let mut budget = self.max_steps;
        while reason.is_alive() {
            let state = t.get_state()?;
            let json =
                serde_json::to_string(&state).map_err(|e| TrackerError::Engine(e.to_string()))?;
            output.push_str(&t.get_output()?);
            steps.push((format!("{reason:?}"), json));
            reason = t.step()?;
            budget = budget.checked_sub(1).ok_or_else(|| {
                TrackerError::Engine(format!("step budget ({}) exhausted", self.max_steps))
            })?;
        }
        output.push_str(&t.get_output()?);
        Ok(Trace {
            steps,
            output,
            exit: t.get_exit_code(),
        })
    }

    fn compare(&self, pair: &str, seed: u64, a: &Trace, b: &Trace) -> Vec<Divergence> {
        let mut div = Vec::new();
        let mut push = |detail: String| {
            div.push(Divergence {
                pair: pair.to_owned(),
                seed,
                detail,
            });
        };
        for (i, (x, y)) in a.steps.iter().zip(&b.steps).enumerate() {
            if x != y {
                push(format!(
                    "step {i}: left ({} / {}) != right ({} / {})",
                    x.0, x.1, y.0, y.1
                ));
                break;
            }
        }
        if a.steps.len() != b.steps.len() {
            push(format!(
                "step counts differ: {} vs {}",
                a.steps.len(),
                b.steps.len()
            ));
        }
        if a.output != b.output {
            push(format!("output differs: {:?} vs {:?}", a.output, b.output));
        }
        if a.exit != b.exit {
            push(format!("exit codes differ: {:?} vs {:?}", a.exit, b.exit));
        }
        div
    }

    fn error(
        &self,
        pair: &str,
        seed: u64,
        what: &str,
        e: &dyn std::fmt::Display,
    ) -> Vec<Divergence> {
        vec![Divergence {
            pair: pair.to_owned(),
            seed,
            detail: format!("{what}: {e}"),
        }]
    }

    /// MiniC under the channel-backed MiTracker vs a replay of its own
    /// recording: serialized states must agree at every step.
    pub fn diff_c_vs_replay(&self, seed: u64, c_src: &str) -> Vec<Divergence> {
        const PAIR: &str = "c_channel_vs_replay";
        self.pair(PAIR);
        let live = || MiTracker::load_c("gen.c", c_src);
        self.live_vs_replay(PAIR, seed, &|| {
            live().map(|t| Box::new(t) as Box<dyn Tracker>)
        })
    }

    /// MiniC at -O0 vs the same source optimized at -O1: the bytecode
    /// optimizer is observation-preserving, so the serialized
    /// [`state::ProgramState`] at every pause, the pause-reason sequence,
    /// the output, and the exit code must all be byte-identical.
    pub fn diff_c_opt_vs_unopt(&self, seed: u64, c_src: &str) -> Vec<Divergence> {
        const PAIR: &str = "c_unopt_vs_opt";
        self.pair(PAIR);
        let mut plain = match MiTracker::load_c("gen.c", c_src) {
            Ok(t) => t,
            Err(e) => return self.error(PAIR, seed, "unoptimized load failed", &e),
        };
        let mut opt = match MiTracker::load_spec(
            ProgramSpec::c("gen.c", c_src).opt_level(1),
            obs::Registry::new(),
            Supervision::default(),
            None,
        ) {
            Ok(t) => t,
            Err(e) => return self.error(PAIR, seed, "optimized load failed", &e),
        };
        let a = match self.step_trace(&mut plain) {
            Ok(t) => t,
            Err(e) => return self.error(PAIR, seed, "unoptimized run failed", &e),
        };
        let b = match self.step_trace(&mut opt) {
            Ok(t) => t,
            Err(e) => return self.error(PAIR, seed, "optimized run failed", &e),
        };
        plain.terminate();
        opt.terminate();
        self.compare(PAIR, seed, &a, &b)
    }

    /// Live PyTracker vs a replay of its own recording.
    pub fn diff_py_vs_replay(&self, seed: u64, py_src: &str) -> Vec<Divergence> {
        const PAIR: &str = "py_live_vs_replay";
        self.pair(PAIR);
        self.live_vs_replay(PAIR, seed, &|| {
            PyTracker::load("gen.py", py_src).map(|t| Box::new(t) as Box<dyn Tracker>)
        })
    }

    /// RISC-V under the channel-backed MiTracker vs a replay.
    pub fn diff_asm_vs_replay(&self, seed: u64, asm_src: &str) -> Vec<Divergence> {
        const PAIR: &str = "asm_channel_vs_replay";
        self.pair(PAIR);
        self.live_vs_replay(PAIR, seed, &|| {
            MiTracker::load_asm("gen.s", asm_src).map(|t| Box::new(t) as Box<dyn Tracker>)
        })
    }

    fn live_vs_replay(
        &self,
        pair: &str,
        seed: u64,
        make: &dyn Fn() -> Result<Box<dyn Tracker>, TrackerError>,
    ) -> Vec<Divergence> {
        let mut live = match make() {
            Ok(t) => t,
            Err(e) => return self.error(pair, seed, "live load failed", &e),
        };
        let live_trace = match self.step_trace(live.as_mut()) {
            Ok(t) => t,
            Err(e) => return self.error(pair, seed, "live run failed", &e),
        };
        live.terminate();
        let mut rec_source = match make() {
            Ok(t) => t,
            Err(e) => return self.error(pair, seed, "recording load failed", &e),
        };
        let rec = match Recording::capture(rec_source.as_mut()) {
            Ok(r) => r,
            Err(e) => return self.error(pair, seed, "recording capture failed", &e),
        };
        rec_source.terminate();
        let mut replay = ReplayTracker::new(rec);
        let replay_trace = match self.step_trace(&mut replay) {
            Ok(t) => t,
            Err(e) => return self.error(pair, seed, "replay run failed", &e),
        };
        let mut div = self.compare(pair, seed, &live_trace, &replay_trace);
        if div.is_empty() {
            // The forward lockstep held; now the store-backed extras
            // must too: a disk round-trip of the trace store stays
            // byte-identical, random seeks land on the recorded states,
            // and reverse-stepping walks the exact forward sequence
            // backwards.
            div.extend(self.store_roundtrip(pair, seed, &replay, &live_trace));
            div.extend(self.reverse_walk(pair, seed, &mut replay, &live_trace));
        }
        div
    }

    /// Serializes the replay tracker's store to its on-disk form, loads
    /// it back, and spot-checks seeks at the ends and middle against the
    /// live run's serialized states.
    fn store_roundtrip(
        &self,
        pair: &str,
        seed: u64,
        replay: &ReplayTracker,
        fwd: &Trace,
    ) -> Vec<Divergence> {
        let store = replay.store();
        let bytes = store.to_bytes();
        let back = match trace::Store::from_bytes(&bytes) {
            Ok(s) => s,
            Err(e) => return self.error(pair, seed, "trace-store round-trip failed", &e),
        };
        let mut div = Vec::new();
        if back.len() != fwd.steps.len() as u64 {
            div.push(Divergence {
                pair: pair.to_owned(),
                seed,
                detail: format!(
                    "reloaded store holds {} pauses, live run had {}",
                    back.len(),
                    fwd.steps.len()
                ),
            });
            return div;
        }
        let n = back.len();
        for probe in [0, n / 2, n.saturating_sub(1)] {
            if probe >= n {
                continue;
            }
            match back.state_bytes_at(probe) {
                Ok(state_bytes) => {
                    if state_bytes != fwd.steps[probe as usize].1.as_bytes() {
                        div.push(Divergence {
                            pair: pair.to_owned(),
                            seed,
                            detail: format!(
                                "reloaded store state at pause {probe} differs from live"
                            ),
                        });
                    }
                }
                Err(e) => {
                    return self.error(pair, seed, "reloaded store seek failed", &e);
                }
            }
        }
        div
    }

    /// Reverse-steps the replay tracker from the last pause to the
    /// first, requiring the exact forward state sequence backwards
    /// (pause reasons normalized: walking backwards reports `Step`).
    fn reverse_walk(
        &self,
        pair: &str,
        seed: u64,
        replay: &mut ReplayTracker,
        fwd: &Trace,
    ) -> Vec<Divergence> {
        let n = fwd.steps.len();
        if n == 0 {
            return Vec::new();
        }
        if let Err(e) = replay.seek(n as u64 - 1) {
            return self.error(pair, seed, "seek to last pause failed", &e);
        }
        let normalize = |mut st: state::ProgramState| {
            st.reason = PauseReason::Step;
            serde_json::to_string(&st).unwrap_or_default()
        };
        for i in (0..n - 1).rev() {
            if let Err(e) = replay.step_back() {
                return self.error(pair, seed, "reverse step failed", &e);
            }
            let got = match replay.get_state() {
                Ok(st) => normalize(st),
                Err(e) => return self.error(pair, seed, "reverse-state inspection failed", &e),
            };
            let want = match serde_json::from_str::<state::ProgramState>(&fwd.steps[i].1) {
                Ok(st) => normalize(st),
                Err(e) => return self.error(pair, seed, "forward state re-decode failed", &e),
            };
            if got != want {
                return vec![Divergence {
                    pair: pair.to_owned(),
                    seed,
                    detail: format!("reverse walk diverges at pause {i}"),
                }];
            }
        }
        Vec::new()
    }

    /// MiTracker over the in-process channel vs MiTracker over a real
    /// `mi-server` child process speaking newline-framed JSON on pipes.
    pub fn diff_c_channel_vs_process(
        &self,
        seed: u64,
        c_src: &str,
        server_bin: &Path,
    ) -> Vec<Divergence> {
        const PAIR: &str = "c_channel_vs_process";
        self.pair(PAIR);
        let div = self.channel_vs_process(PAIR, seed, c_src, server_bin, false);
        self.count_divergences(&div);
        div
    }

    /// Like [`Driver::diff_c_channel_vs_process`], for assembly.
    pub fn diff_asm_channel_vs_process(
        &self,
        seed: u64,
        asm_src: &str,
        server_bin: &Path,
    ) -> Vec<Divergence> {
        const PAIR: &str = "asm_channel_vs_process";
        self.pair(PAIR);
        let div = self.channel_vs_process(PAIR, seed, asm_src, server_bin, true);
        self.count_divergences(&div);
        div
    }

    fn channel_vs_process(
        &self,
        pair: &str,
        seed: u64,
        src: &str,
        server_bin: &Path,
        asm: bool,
    ) -> Vec<Divergence> {
        let (file, chan, proc_t) = if asm {
            (
                "gen.s",
                MiTracker::load_asm("gen.s", src),
                MiTracker::load_asm_process(server_bin, "gen.s", src),
            )
        } else {
            (
                "gen.c",
                MiTracker::load_c("gen.c", src),
                MiTracker::load_c_process(server_bin, "gen.c", src),
            )
        };
        let _ = file;
        let mut chan = match chan {
            Ok(t) => t,
            Err(e) => return self.error(pair, seed, "channel load failed", &e),
        };
        let mut proc_t = match proc_t {
            Ok(t) => t,
            Err(e) => return self.error(pair, seed, "process load failed", &e),
        };
        let a = match self.step_trace(&mut chan) {
            Ok(t) => t,
            Err(e) => return self.error(pair, seed, "channel run failed", &e),
        };
        let b = match self.step_trace(&mut proc_t) {
            Ok(t) => t,
            Err(e) => return self.error(pair, seed, "process run failed", &e),
        };
        chan.terminate();
        proc_t.terminate();
        self.compare(pair, seed, &a, &b)
    }

    /// MiniC vs MiniPy renderings of the same AST: identical printed
    /// lines, and the C exit code equals the final printed residue.
    pub fn diff_c_vs_py(&self, seed: u64, c_src: &str, py_src: &str) -> Vec<Divergence> {
        const PAIR: &str = "c_vs_py_output";
        self.pair(PAIR);
        let program = match minic::compile("gen.c", c_src) {
            Ok(p) => p,
            Err(e) => return self.error(PAIR, seed, "C compile failed", &e),
        };
        let mut vm = minic::vm::Vm::new(&program);
        let c_exit = match vm.run_to_completion() {
            Ok(c) => c,
            Err(e) => return self.error(PAIR, seed, "C run failed", &e),
        };
        let c_out = vm.output().to_owned();
        let module = match minipy::parser::parse(py_src) {
            Ok(m) => m,
            Err(e) => return self.error(PAIR, seed, "Py parse failed", &e),
        };
        let mut interp = minipy::Interp::new(module);
        interp.set_max_steps(Some(2_000_000));
        let py_out = match interp.run(&mut minipy::NullTracer) {
            Ok(o) => o.output,
            Err(e) => return self.error(PAIR, seed, "Py run failed", &e),
        };
        let mut div = Vec::new();
        if c_out != py_out {
            div.push(Divergence {
                pair: PAIR.into(),
                seed,
                detail: format!("outputs differ: C {c_out:?} vs Py {py_out:?}"),
            });
        }
        let last = c_out.lines().last().and_then(|l| l.parse::<i64>().ok());
        if last != Some(c_exit) {
            div.push(Divergence {
                pair: PAIR.into(),
                seed,
                detail: format!("C exit {c_exit} != final residue line {last:?}"),
            });
        }
        div
    }

    /// Reason-sequence conformance with live control points: breakpoint,
    /// watchpoint, tracked function with `finish`, `next`, and exit. Both
    /// legs are driven by the same reason-directed procedure; returns the
    /// divergences plus the live leg's observed tag sequence (used by the
    /// property tests to assert variant coverage).
    pub fn check_control_points_c(&self, seed: u64) -> (Vec<Divergence>, Vec<String>) {
        const PAIR: &str = "c_control_points_vs_replay";
        self.pair(PAIR);
        let program = gen::gen_program(seed);
        let c_src = gen::render_c(&program);
        self.registry.inc("conformance.programs_generated");
        let (div, tags) = self.control_points(PAIR, seed, &|| {
            MiTracker::load_c("gen.c", &c_src).map(|t| Box::new(t) as Box<dyn Tracker>)
        });
        self.count_divergences(&div);
        (div, tags)
    }

    /// Like [`Driver::check_control_points_c`] for the Python tracker.
    pub fn check_control_points_py(&self, seed: u64) -> (Vec<Divergence>, Vec<String>) {
        const PAIR: &str = "py_control_points_vs_replay";
        self.pair(PAIR);
        let program = gen::gen_program(seed);
        let py_src = gen::render_py(&program);
        self.registry.inc("conformance.programs_generated");
        let (div, tags) = self.control_points(PAIR, seed, &|| {
            PyTracker::load("gen.py", &py_src).map(|t| Box::new(t) as Box<dyn Tracker>)
        });
        self.count_divergences(&div);
        (div, tags)
    }

    fn control_points(
        &self,
        pair: &str,
        seed: u64,
        make: &dyn Fn() -> Result<Box<dyn Tracker>, TrackerError>,
    ) -> (Vec<Divergence>, Vec<String>) {
        // Capture first: the recording tells us which lines actually
        // execute, so the breakpoint line is valid on both legs.
        let rec = {
            let mut t = match make() {
                Ok(t) => t,
                Err(e) => return (self.error(pair, seed, "load failed", &e), Vec::new()),
            };
            match Recording::capture(t.as_mut()) {
                Ok(r) => r,
                Err(e) => return (self.error(pair, seed, "capture failed", &e), Vec::new()),
            }
        };
        let lines: Vec<u32> = rec
            .steps
            .iter()
            .map(|s| s.state.frame.location().line())
            .collect();
        if lines.is_empty() {
            return (
                self.error(pair, seed, "empty recording", &"no steps"),
                Vec::new(),
            );
        }
        let bp_line = lines[lines.len() / 2];
        let mut live = match make() {
            Ok(t) => t,
            Err(e) => return (self.error(pair, seed, "live load failed", &e), Vec::new()),
        };
        let live_tags = match drive_with_control_points(live.as_mut(), bp_line) {
            Ok(tags) => tags,
            Err(e) => return (self.error(pair, seed, "live drive failed", &e), Vec::new()),
        };
        live.terminate();
        let mut replay = ReplayTracker::new(rec);
        let replay_tags = match drive_with_control_points(&mut replay, bp_line) {
            Ok(tags) => tags,
            Err(e) => return (self.error(pair, seed, "replay drive failed", &e), live_tags),
        };
        let mut div = Vec::new();
        if live_tags != replay_tags {
            div.push(Divergence {
                pair: pair.to_owned(),
                seed,
                detail: format!(
                    "reason sequences differ:\nlive:   {live_tags:?}\nreplay: {replay_tags:?}"
                ),
            });
        }
        (div, live_tags)
    }

    /// The chaos differential: one seeded liveness fault (a boundary
    /// hang or an engine crash) is injected at a seeded call index into a
    /// supervised control-point session, and the session must either
    /// recover to the *exact* fault-free behaviour — same pause-reason
    /// sequence, same output, same exit code — or degrade explicitly.
    /// Silent divergence is the only failure.
    pub fn check_chaos_c(&self, seed: u64) -> (Vec<Divergence>, ChaosOutcome) {
        const PAIR: &str = "c_chaos_vs_reference";
        self.pair(PAIR);
        let program = gen::gen_program(seed);
        let c_src = gen::render_c(&program);
        self.registry.inc("conformance.programs_generated");

        // Which lines actually execute, for a valid breakpoint.
        let rec = {
            let mut t = match MiTracker::load_c("gen.c", &c_src) {
                Ok(t) => t,
                Err(e) => {
                    return (
                        self.error(PAIR, seed, "load failed", &e),
                        ChaosOutcome::Clean,
                    )
                }
            };
            match Recording::capture(&mut t) {
                Ok(r) => r,
                Err(e) => {
                    return (
                        self.error(PAIR, seed, "capture failed", &e),
                        ChaosOutcome::Clean,
                    )
                }
            }
        };
        let lines: Vec<u32> = rec
            .steps
            .iter()
            .map(|s| s.state.frame.location().line())
            .collect();
        if lines.is_empty() {
            return (
                self.error(PAIR, seed, "empty recording", &"no steps"),
                ChaosOutcome::Clean,
            );
        }
        let bp_line = lines[lines.len() / 2];

        // Reference leg: the fault-free behaviour, counting port calls so
        // the schedule below is guaranteed to land inside the run.
        let calls = Arc::new(AtomicUsize::new(0));
        let mut reference = match MiTracker::load_spec(
            ProgramSpec::c("gen.c", &c_src),
            obs::Registry::new(),
            Supervision::default(),
            Some(counting_wrapper(Arc::clone(&calls))),
        ) {
            Ok(t) => t,
            Err(e) => {
                return (
                    self.error(PAIR, seed, "reference load failed", &e),
                    ChaosOutcome::Clean,
                )
            }
        };
        let reference_run = run_chaos_scenario(&mut reference, bp_line);
        reference.terminate();
        let reference_run = match reference_run {
            Ok(r) => r,
            Err(e) => {
                return (
                    self.error(PAIR, seed, "reference run failed", &e),
                    ChaosOutcome::Clean,
                )
            }
        };
        let total = calls.load(Ordering::SeqCst).max(1);

        // Seeded schedule: where the session is killed, and how.
        let mut rng = Rng::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let at_call = 1 + rng.below(total as u64) as usize;
        let fault = if rng.chance(50) {
            ChaosFault::Crash
        } else {
            ChaosFault::Hang
        };

        let state = ChaosState::new();
        let mut chaos = match MiTracker::load_spec(
            ProgramSpec::c("gen.c", &c_src),
            self.registry.clone(),
            chaos_supervision(),
            Some(chaos_wrapper(
                ChaosPlan { at_call, fault },
                Arc::clone(&state),
                self.registry.clone(),
            )),
        ) {
            Ok(t) => t,
            Err(e) => {
                return (
                    self.error(PAIR, seed, "chaos load failed", &e),
                    ChaosOutcome::Clean,
                )
            }
        };
        let chaos_run = run_chaos_scenario(&mut chaos, bp_line);
        // A failed check is a post-mortem moment even though the session
        // object is still alive: attach the flight dump *before*
        // terminate discards the child and its stderr tail.
        let result = match chaos_run {
            Ok(run) => {
                let mut div = Vec::new();
                if run.tags != reference_run.tags {
                    div.push(Divergence {
                        pair: PAIR.to_owned(),
                        seed,
                        detail: format!(
                            "reason sequences differ after {fault:?}@{at_call}:\nreference: {:?}\nchaos:     {:?}",
                            reference_run.tags, run.tags
                        ),
                    });
                }
                if run.output != reference_run.output {
                    div.push(Divergence {
                        pair: PAIR.to_owned(),
                        seed,
                        detail: format!(
                            "output differs after {fault:?}@{at_call}: {:?} vs {:?}",
                            reference_run.output, run.output
                        ),
                    });
                }
                if run.exit != reference_run.exit {
                    div.push(Divergence {
                        pair: PAIR.to_owned(),
                        seed,
                        detail: format!(
                            "exit codes differ after {fault:?}@{at_call}: {:?} vs {:?}",
                            reference_run.exit, run.exit
                        ),
                    });
                }
                self.count_divergences(&div);
                if !div.is_empty() {
                    let dump = chaos.dump_flight(&format!("chaos divergence: {fault:?}@{at_call}"));
                    attach_artifact(&mut div, "flight dump", dump.as_deref());
                    let trace = self.write_merged_next_to(&mut chaos, dump.as_deref());
                    attach_artifact(&mut div, "merged trace", trace.as_deref());
                }
                let outcome = if state.fired() {
                    ChaosOutcome::Recovered
                } else {
                    ChaosOutcome::Clean
                };
                (div, outcome)
            }
            Err(TrackerError::SessionDegraded(_)) => {
                // An explicit refusal is a legal outcome; a wrong answer
                // is not. Degrading already wrote its own post-mortem
                // (see `MiTracker`), so nothing extra to attach here.
                self.registry.inc("conformance.chaos.degraded");
                (Vec::new(), ChaosOutcome::Degraded)
            }
            Err(e) => {
                let mut div = self.error(
                    PAIR,
                    seed,
                    &format!("chaos run failed untyped after {fault:?}@{at_call}"),
                    &e,
                );
                let dump = chaos.dump_flight(&format!("chaos run failed: {fault:?}@{at_call}"));
                attach_artifact(&mut div, "flight dump", dump.as_deref());
                let trace = self.write_merged_next_to(&mut chaos, dump.as_deref());
                attach_artifact(&mut div, "merged trace", trace.as_deref());
                (div, ChaosOutcome::Degraded)
            }
        };
        chaos.terminate();
        result
    }
}

/// How the chaos leg of [`Driver::check_chaos_c`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The scheduled fault never fired (or a leg failed before it could).
    Clean,
    /// The fault fired and the session recovered to the reference
    /// behaviour.
    Recovered,
    /// The fault fired and the session degraded explicitly.
    Degraded,
}

/// Points every divergence at a post-mortem artifact written for it
/// (the flight dump, the merged trace), so a failing chaos report names
/// the files to pull.
fn attach_artifact(div: &mut [Divergence], label: &str, path: Option<&std::path::Path>) {
    let Some(path) = path else { return };
    for d in div {
        d.detail.push_str(&format!("\n{label}: {}", path.display()));
    }
}

/// What one chaos leg observed.
struct ScenarioRun {
    tags: Vec<String>,
    output: String,
    exit: Option<i64>,
}

/// Supervision tuned for chaos sweeps: deadlines short enough that a
/// hang costs milliseconds, budgets small enough that a storm degrades
/// fast — the sweep stays bounded.
fn chaos_supervision() -> Supervision {
    Supervision {
        deadline: Some(Duration::from_millis(150)),
        ping_deadline: Duration::from_millis(50),
        max_retries: 1,
        max_respawns: 3,
        backoff_base: Duration::from_micros(50),
        backoff_cap: Duration::from_millis(2),
        jitter_seed: 0x0c4a_05ca_0501,
    }
}

fn run_chaos_scenario(t: &mut MiTracker, bp_line: u32) -> Result<ScenarioRun, TrackerError> {
    let tags = drive_with_control_points(t, bp_line)?;
    let output = t.get_output()?;
    let exit = t.get_exit_code();
    Ok(ScenarioRun { tags, output, exit })
}

/// Drives a tracker through a fixed reason-directed scenario and returns
/// the observed pause-reason tag sequence: set a line breakpoint, watch
/// `v0`, track `f0`; `finish` out of the first tracked call, `next` at
/// the first breakpoint, `resume` otherwise.
pub fn drive_with_control_points(
    t: &mut dyn Tracker,
    bp_line: u32,
) -> Result<Vec<String>, TrackerError> {
    let mut tags = Vec::new();
    let r = t.start()?;
    tags.push(r.tag().to_string());
    t.break_before_line(bp_line)?;
    t.watch("v0")?;
    t.track_function("f0", None)?;
    let mut finished = false;
    let mut stepped = false;
    let mut r = t.resume()?;
    for _ in 0..2000 {
        tags.push(r.tag().to_string());
        match &r {
            PauseReason::Exited(_) => return Ok(tags),
            PauseReason::FunctionCall { .. } if !finished => {
                finished = true;
                r = t.finish()?;
            }
            PauseReason::Breakpoint { .. } if !stepped => {
                stepped = true;
                r = t.next()?;
            }
            _ => r = t.resume()?,
        }
    }
    Err(TrackerError::Engine(
        "control-point scenario exceeded 2000 pauses".into(),
    ))
}
