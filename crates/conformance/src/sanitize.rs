//! Unsafe-program generation and the static ⊇ runtime superset oracle.
//!
//! The analysis crate promises a containment relation: on any program,
//! every trap the runtime sanitizer raises must correspond to a finding
//! the static checker already reported at the same `(kind, function,
//! line)`. Static findings with no runtime counterpart are fine (the
//! abstract interpretation explores paths the concrete run skips); a
//! runtime trap with no static counterpart is a soundness bug in the
//! checker. [`superset_oracle`] turns that relation into an executable
//! check, and [`gen_unsafe_c`] feeds it seed-driven MiniC programs that
//! deliberately violate memory safety in statically-catchable ways.
//!
//! The generator stays inside the static checker's visibility on
//! purpose:
//!
//! * every defect gadget is straight-line and lives in `main`, so the
//!   concrete path is one of the paths the abstract interpreter covers;
//! * no gadget passes the address of an uninitialized or dead-store
//!   candidate slot to a call — the static checker exempts a slot from
//!   uninit/dead-store checking if its address escapes *anywhere* in the
//!   function (flow-insensitive), while the runtime sanitizer only
//!   exempts it once the escape has happened, so a pre-escape misuse
//!   traps at runtime with no static finding (the asymmetry documented
//!   in `minic::sanitizer`; the targeted tests below pin both sides of
//!   the line);
//! * heap indices and allocation sizes are literal constants, within the
//!   redzone distance the sanitized allocator can classify.

use crate::rng::Rng;
use state::{Diagnostic, DiagnosticKind};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Defect and filler gadget kinds the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gadget {
    UninitRead,
    UseAfterFree,
    DoubleFree,
    OutOfBounds,
    DeadStore,
    Leak,
    FillerArith,
    FillerLoop,
    FillerIf,
}

const GADGETS: [Gadget; 9] = [
    Gadget::UninitRead,
    Gadget::UseAfterFree,
    Gadget::DoubleFree,
    Gadget::OutOfBounds,
    Gadget::DeadStore,
    Gadget::Leak,
    Gadget::FillerArith,
    Gadget::FillerLoop,
    Gadget::FillerIf,
];

/// Generates a deterministic memory-unsafe MiniC program for `seed`:
/// `main` is a sequence of independent gadgets (each with its own
/// variables), a mix of defects and benign filler. Every generated
/// program compiles, and under the sanitizer runs to a normal exit —
/// traps are observations, not faults.
pub fn gen_unsafe_c(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let mut out = String::from("int main() {\n");
    let n = rng.range(3, 7);
    for id in 0..n as usize {
        let g = GADGETS[rng.below(GADGETS.len() as u64) as usize];
        emit_gadget(&mut out, g, id, &mut rng);
    }
    out.push_str("return 0;\n}\n");
    out
}

fn emit_gadget(out: &mut String, g: Gadget, id: usize, rng: &mut Rng) {
    match g {
        Gadget::UninitRead => {
            // The slot's address is never taken, so the static escape
            // exemption cannot hide the read.
            let _ = writeln!(out, "int u{id};");
            let _ = writeln!(out, "int r{id} = u{id} + {};", rng.range(1, 9));
            let _ = writeln!(out, "printf(\"%d\\n\", r{id});");
        }
        Gadget::UseAfterFree => {
            let len = rng.range(1, 4);
            let _ = writeln!(out, "int* p{id} = malloc({});", 4 * len);
            let _ = writeln!(out, "p{id}[0] = {};", rng.range(1, 9));
            let _ = writeln!(out, "free(p{id});");
            if rng.chance(50) {
                let _ = writeln!(out, "int r{id} = p{id}[0];");
                let _ = writeln!(out, "printf(\"%d\\n\", r{id});");
            } else {
                let _ = writeln!(out, "p{id}[0] = {};", rng.range(1, 9));
            }
        }
        Gadget::DoubleFree => {
            let _ = writeln!(out, "int* p{id} = malloc({});", 4 * rng.range(1, 4));
            let _ = writeln!(out, "free(p{id});");
            let _ = writeln!(out, "free(p{id});");
        }
        Gadget::OutOfBounds => {
            // One or two elements past the end: inside the redzone, so
            // the sanitized allocator can still attribute the access.
            let len = rng.range(1, 4);
            let idx = len + rng.range(0, 2);
            let _ = writeln!(out, "int* p{id} = malloc({});", 4 * len);
            let _ = writeln!(out, "p{id}[0] = 1;");
            if rng.chance(50) {
                let _ = writeln!(out, "p{id}[{idx}] = {};", rng.range(1, 9));
            } else {
                let _ = writeln!(out, "int r{id} = p{id}[{idx}];");
                let _ = writeln!(out, "printf(\"%d\\n\", r{id});");
            }
            let _ = writeln!(out, "free(p{id});");
        }
        Gadget::DeadStore => {
            let _ = writeln!(out, "int d{id} = {};", rng.range(1, 9));
            let _ = writeln!(out, "d{id} = {};", rng.range(1, 9));
            let _ = writeln!(out, "printf(\"%d\\n\", d{id});");
        }
        Gadget::Leak => {
            let _ = writeln!(out, "long* q{id} = malloc({});", 8 * rng.range(1, 4));
            let _ = writeln!(out, "q{id}[0] = {};", rng.range(1, 9));
            let _ = writeln!(out, "printf(\"%ld\\n\", q{id}[0]);");
        }
        Gadget::FillerArith => {
            let _ = writeln!(out, "int a{id} = {};", rng.range(1, 9));
            let _ = writeln!(out, "a{id} = a{id} * 2 + {};", rng.range(0, 5));
            let _ = writeln!(out, "printf(\"%d\\n\", a{id});");
        }
        Gadget::FillerLoop => {
            let bound = rng.range(1, 4);
            let _ = writeln!(out, "int i{id} = 0;");
            let _ = writeln!(out, "int s{id} = 0;");
            let _ = writeln!(out, "while (i{id} < {bound}) {{");
            let _ = writeln!(out, "s{id} = s{id} + i{id};");
            let _ = writeln!(out, "i{id} = i{id} + 1;");
            let _ = writeln!(out, "}}");
            let _ = writeln!(out, "printf(\"%d\\n\", s{id});");
        }
        Gadget::FillerIf => {
            let _ = writeln!(out, "int c{id} = {};", rng.range(0, 9));
            let _ = writeln!(out, "if (c{id} < {}) {{", rng.range(1, 9));
            let _ = writeln!(out, "c{id} = c{id} + 1;");
            let _ = writeln!(out, "}} else {{");
            let _ = writeln!(out, "c{id} = c{id} + 2;");
            let _ = writeln!(out, "}}");
            let _ = writeln!(out, "printf(\"%d\\n\", c{id});");
        }
    }
}

/// What [`superset_oracle`] observed on one program.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Findings of the compile-time analysis.
    pub static_findings: Vec<Diagnostic>,
    /// Traps the sanitized execution raised.
    pub runtime_traps: Vec<Diagnostic>,
    /// Runtime traps with no static finding at the same
    /// `(kind, function, line)` — each one is a containment violation.
    pub violations: Vec<Diagnostic>,
    /// The sanitized run's exit code.
    pub exit_code: i64,
}

impl OracleReport {
    /// Whether the containment relation held.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// The distinct kinds among the runtime traps.
    pub fn trapped_kinds(&self) -> HashSet<DiagnosticKind> {
        self.runtime_traps.iter().map(|d| d.kind).collect()
    }
}

/// Compiles `source`, runs the static analysis, executes the program
/// under the runtime sanitizer, and checks that every runtime trap has a
/// static finding at the same `(kind, function, line)`.
///
/// # Errors
///
/// Compilation failures and VM runtime errors (a sanitized run must
/// never fault) are reported as strings carrying the source.
pub fn superset_oracle(file: &str, source: &str) -> Result<OracleReport, String> {
    let program =
        minic::compile(file, source).map_err(|e| format!("compile: {e}\n---\n{source}"))?;
    let static_findings = analysis::analyze(&program);
    let mut vm = minic::Vm::new(&program);
    vm.set_sanitizer(true);
    let mut runtime_traps = Vec::new();
    let exit_code = loop {
        match vm.step() {
            Ok(minic::Event::SanitizerTrap(d)) => runtime_traps.push(d),
            Ok(minic::Event::Exited(code)) => break code,
            Ok(_) => {}
            Err(e) => return Err(format!("sanitized run faulted: {e}\n---\n{source}")),
        }
    };
    let violations = uncovered(&static_findings, &runtime_traps);
    Ok(OracleReport {
        static_findings,
        runtime_traps,
        violations,
        exit_code,
    })
}

/// The runtime traps without a static finding at the same
/// `(kind, function, line)` — the containment check itself.
fn uncovered(static_findings: &[Diagnostic], runtime_traps: &[Diagnostic]) -> Vec<Diagnostic> {
    let covered: HashSet<(DiagnosticKind, &str, u32)> = static_findings
        .iter()
        .map(|d| (d.kind, d.function.as_str(), d.span))
        .collect();
    runtime_traps
        .iter()
        .filter(|d| !covered.contains(&(d.kind, d.function.as_str(), d.span)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(gen_unsafe_c(seed), gen_unsafe_c(seed));
        }
        assert_ne!(gen_unsafe_c(1), gen_unsafe_c(2));
    }

    #[test]
    fn generated_programs_compile() {
        for seed in 0..40 {
            let src = gen_unsafe_c(seed);
            minic::compile("unsafe.c", &src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn escaped_slot_misuse_is_still_contained() {
        // Taking `&u` into a tracked local is *not* an escape for either
        // analysis: the static interpreter tracks the pointer's
        // provenance and resolves `*e = 2` back to slot `u`, mirroring
        // what the runtime does concretely. Both sides report the
        // pre-assignment uninitialized read, so containment holds.
        let src = "int main() {\nint u;\nint r = u + 1;\nint* e = &u;\n*e = 2;\nprintf(\"%d\\n\", r);\nreturn 0;\n}";
        let report = superset_oracle("tracked.c", src).unwrap();
        assert!(report.holds(), "{report:?}");
        assert!(report
            .runtime_traps
            .iter()
            .any(|d| d.kind == DiagnosticKind::UninitRead));
    }

    #[test]
    fn call_escape_asymmetry_is_the_documented_hole() {
        // Passing `&u` to a call escapes the slot. The static checker is
        // flow-insensitive about escapes and drops `u` from uninit
        // checking outright; the runtime only exempts the slot once the
        // escape has executed, so the *pre-escape* read still traps.
        // This is the one place runtime traps are allowed to escape the
        // static findings (see `minic::sanitizer`) — and exactly why
        // `gen_unsafe_c` never addresses a misused slot into a call.
        let src = "int sink(int* p) { return p[0]; }\nint main() {\nint u;\nint r = u + 1;\nint s = sink(&u);\nprintf(\"%d\\n\", r + s);\nreturn 0;\n}";
        let report = superset_oracle("hole.c", src).unwrap();
        assert!(!report.holds(), "{report:?}");
        assert_eq!(report.violations.len(), 1, "{report:?}");
        let v = &report.violations[0];
        assert_eq!(v.kind, DiagnosticKind::UninitRead);
        assert_eq!(v.span, 4);
        assert!(!report
            .static_findings
            .iter()
            .any(|d| d.kind == DiagnosticKind::UninitRead));
    }

    #[test]
    fn uncovered_detects_a_missing_static_finding() {
        let mk = |kind, span| Diagnostic::new(kind, span, "main", "synthetic");
        let statics = vec![
            mk(DiagnosticKind::UseAfterFree, 5),
            mk(DiagnosticKind::Leak, 2),
        ];
        // Same kind at the wrong line, and a kind the statics lack.
        let traps = vec![
            mk(DiagnosticKind::UseAfterFree, 5),
            mk(DiagnosticKind::UseAfterFree, 6),
            mk(DiagnosticKind::DoubleFree, 9),
        ];
        let missing = uncovered(&statics, &traps);
        assert_eq!(missing.len(), 2);
        assert!(missing.iter().any(|d| d.span == 6));
        assert!(missing.iter().any(|d| d.kind == DiagnosticKind::DoubleFree));
        assert!(uncovered(&statics, &traps[..1]).is_empty());
    }
}
