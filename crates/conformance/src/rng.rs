//! Deterministic pseudo-randomness for the program generators.
//!
//! SplitMix64 — tiny, fast, and statistically ample for generating test
//! programs. No external RNG crate: reproducibility from a bare `u64`
//! seed is the whole point, since every corpus entry and every CI failure
//! message records the seed that produced it.

/// A deterministic SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream; equal seeds yield equal streams forever.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant at these tiny ranges.
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as i64
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = Rng::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn ranges_hold() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range(-9, 10);
            assert!((-9..10).contains(&v));
            assert!(r.below(3) < 3);
        }
    }
}
