//! Seed-driven program generators.
//!
//! One shared AST renders to *semantically equivalent* MiniC and MiniPy
//! sources: the same nested calls, bounded loops, heap allocation and
//! pointer writes, frees, and prints. Identical-source runs (one program
//! under two tracker deployments) compare full serialized state; the
//! cross-language pair compares printed output plus the final residue.
//!
//! Semantics notes that make the equivalence sound:
//!
//! * all arithmetic is `long` on the C side — both VMs then wrap at
//!   64 bits, so overflow agrees;
//! * generated expressions use only `+ - *` (C's `%` truncates, Python's
//!   floors — the epilogue spells the truncating normalization out on the
//!   Python side, mirroring `tests/properties.rs`);
//! * every loop has a dedicated counter with a literal bound, so every
//!   program terminates;
//! * `free` is generated at most once, at the top level, and no heap
//!   access is generated after it.
//!
//! MiniAsm gets its own generator ([`gen_asm`]): the shared AST's heap
//! and value-passing conventions have no direct register-level analogue.

use crate::rng::Rng;

/// Scalar variables `v0..v3`, initialized to `i + 1`.
pub const NVARS: usize = 4;
/// Heap slots `h0[0]..h0[3]`, zero-initialized.
pub const HEAP_LEN: usize = 4;

/// Binary operators shared by every target language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

impl Op {
    fn text(self) -> &'static str {
        match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
        }
    }
}

/// Expressions. `Param` appears only in function bodies; `Load` only in
/// the main body while the heap block is live.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Lit(i64),
    /// `v{i}`.
    Var(usize),
    /// The enclosing function's parameter `p`.
    Param,
    /// `h0[{slot}]`.
    Load(usize),
    /// Binary operation.
    Bin(Op, Box<Expr>, Box<Expr>),
}

/// Comparison in `if`/loop guards.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `a < b`
    Lt(Expr, Expr),
    /// `a == b`
    Eq(Expr, Expr),
    /// `a != b`
    Ne(Expr, Expr),
}

/// Statements of the main body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `v{i} = e`
    Assign(usize, Expr),
    /// `h0[{slot}] = e` — a pointer write on the C side.
    Store(usize, Expr),
    /// Release the heap block. Top level only; never followed by heap
    /// access. C renders `free(h0)`, Python drops the binding.
    Free,
    /// `v{target} = f{func}(arg)`
    Call {
        /// Variable receiving the result.
        target: usize,
        /// Callee index into [`Program::funcs`].
        func: usize,
        /// Argument expression.
        arg: Expr,
    },
    /// Print the value followed by a newline (`printf("%ld\n", e)` /
    /// `print(e)`).
    Print(Expr),
    /// Two-armed conditional.
    If(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `k{id} = 0; while (k{id} < bound) { body; k{id} += 1 }`.
    Loop {
        /// Unique counter id; the renderers declare `k{id}`.
        id: usize,
        /// Literal iteration count, `1..=3`.
        bound: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// A generated function `f{id}(p)`. When `callee` is set the body is
/// `return f{callee}(inner) + expr;` — that is how call nesting arises.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function index; the rendered name is `f{id}`.
    pub id: usize,
    /// Nested callee, always a higher index (no recursion).
    pub callee: Option<usize>,
    /// Expression over `Param` and literals.
    pub expr: Expr,
    /// Argument forwarded to `callee` (unused without one).
    pub inner: Expr,
}

/// A whole generated program, renderable to MiniC and MiniPy.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Function definitions, `f0` first.
    pub funcs: Vec<FuncDef>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

struct Ctx {
    heap_live: bool,
    nfuncs: usize,
    next_loop: usize,
}

/// Generates the shared-AST program for `seed`, deterministically.
pub fn gen_program(seed: u64) -> Program {
    let mut rng = Rng::new(seed);
    let nfuncs = rng.range(1, 4) as usize;
    let funcs = (0..nfuncs)
        .map(|id| FuncDef {
            id,
            callee: (id + 1 < nfuncs && rng.chance(70)).then_some(id + 1),
            expr: gen_fn_expr(&mut rng, 2),
            inner: gen_fn_expr(&mut rng, 1),
        })
        .collect();
    let mut ctx = Ctx {
        heap_live: true,
        nfuncs,
        next_loop: 0,
    };
    let mut body = gen_stmts(&mut rng, &mut ctx, 2, true);
    // Guarantee at least one call and one observable print per program.
    body.push(Stmt::Call {
        target: rng.below(NVARS as u64) as usize,
        func: 0,
        arg: gen_expr(&mut rng, &ctx, 1),
    });
    body.push(Stmt::Print(Expr::Var(rng.below(NVARS as u64) as usize)));
    Program { funcs, body }
}

/// Expression over `Param` and literals only (function bodies).
fn gen_fn_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.chance(40) {
        return if rng.chance(50) {
            Expr::Param
        } else {
            Expr::Lit(rng.range(-9, 10))
        };
    }
    let op = *pick_op(rng);
    Expr::Bin(
        op,
        Box::new(gen_fn_expr(rng, depth - 1)),
        Box::new(gen_fn_expr(rng, depth - 1)),
    )
}

fn pick_op(rng: &mut Rng) -> &'static Op {
    match rng.below(3) {
        0 => &Op::Add,
        1 => &Op::Sub,
        _ => &Op::Mul,
    }
}

fn gen_expr(rng: &mut Rng, ctx: &Ctx, depth: u32) -> Expr {
    if depth == 0 || rng.chance(35) {
        return match rng.below(if ctx.heap_live { 3 } else { 2 }) {
            0 => Expr::Lit(rng.range(-9, 10)),
            1 => Expr::Var(rng.below(NVARS as u64) as usize),
            _ => Expr::Load(rng.below(HEAP_LEN as u64) as usize),
        };
    }
    let op = *pick_op(rng);
    Expr::Bin(
        op,
        Box::new(gen_expr(rng, ctx, depth - 1)),
        Box::new(gen_expr(rng, ctx, depth - 1)),
    )
}

fn gen_cond(rng: &mut Rng, ctx: &Ctx) -> Cond {
    let a = gen_expr(rng, ctx, 1);
    let b = gen_expr(rng, ctx, 1);
    match rng.below(3) {
        0 => Cond::Lt(a, b),
        1 => Cond::Eq(a, b),
        _ => Cond::Ne(a, b),
    }
}

fn gen_stmts(rng: &mut Rng, ctx: &mut Ctx, depth: u32, top: bool) -> Vec<Stmt> {
    let n = rng.range(2, 5);
    (0..n).map(|_| gen_stmt(rng, ctx, depth, top)).collect()
}

fn gen_stmt(rng: &mut Rng, ctx: &mut Ctx, depth: u32, top: bool) -> Stmt {
    loop {
        match rng.below(12) {
            0..=3 => {
                return Stmt::Assign(rng.below(NVARS as u64) as usize, gen_expr(rng, ctx, 2));
            }
            4..=5 if ctx.heap_live => {
                return Stmt::Store(rng.below(HEAP_LEN as u64) as usize, gen_expr(rng, ctx, 2));
            }
            6 => {
                return Stmt::Call {
                    target: rng.below(NVARS as u64) as usize,
                    func: rng.below(ctx.nfuncs as u64) as usize,
                    arg: gen_expr(rng, ctx, 1),
                };
            }
            7 => return Stmt::Print(gen_expr(rng, ctx, 1)),
            8 if top && ctx.heap_live && rng.chance(30) => {
                ctx.heap_live = false;
                return Stmt::Free;
            }
            9 if depth > 0 => {
                let c = gen_cond(rng, ctx);
                let a = gen_stmts(rng, ctx, depth - 1, false);
                let b = gen_stmts(rng, ctx, depth - 1, false);
                return Stmt::If(c, a, b);
            }
            10..=11 if depth > 0 => {
                let id = ctx.next_loop;
                ctx.next_loop += 1;
                let bound = rng.range(1, 4);
                let body = gen_stmts(rng, ctx, depth - 1, false);
                return Stmt::Loop { id, bound, body };
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// AST walks shared by the renderers.
// ---------------------------------------------------------------------------

/// Every loop-counter id in the program, for prologue declarations.
pub fn loop_ids(body: &[Stmt]) -> Vec<usize> {
    let mut out = Vec::new();
    collect_loop_ids(body, &mut out);
    out.sort_unstable();
    out
}

fn collect_loop_ids(body: &[Stmt], out: &mut Vec<usize>) {
    for s in body {
        match s {
            Stmt::Loop { id, body, .. } => {
                out.push(*id);
                collect_loop_ids(body, out);
            }
            Stmt::If(_, a, b) => {
                collect_loop_ids(a, out);
                collect_loop_ids(b, out);
            }
            _ => {}
        }
    }
}

/// Whether the program releases its heap block (top level by invariant).
pub fn frees_heap(body: &[Stmt]) -> bool {
    body.iter().any(|s| matches!(s, Stmt::Free))
}

// ---------------------------------------------------------------------------
// MiniC rendering.
// ---------------------------------------------------------------------------

fn c_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => format!("({v})"),
        Expr::Var(i) => format!("v{i}"),
        Expr::Param => "p".into(),
        Expr::Load(s) => format!("h0[{s}]"),
        Expr::Bin(op, a, b) => format!("({} {} {})", c_expr(a), op.text(), c_expr(b)),
    }
}

fn c_cond(c: &Cond) -> String {
    match c {
        Cond::Lt(a, b) => format!("{} < {}", c_expr(a), c_expr(b)),
        Cond::Eq(a, b) => format!("{} == {}", c_expr(a), c_expr(b)),
        Cond::Ne(a, b) => format!("{} != {}", c_expr(a), c_expr(b)),
    }
}

fn c_stmts(body: &[Stmt], out: &mut String, pad: usize) {
    let p = "    ".repeat(pad);
    for s in body {
        match s {
            Stmt::Assign(v, e) => out.push_str(&format!("{p}v{v} = {};\n", c_expr(e))),
            Stmt::Store(slot, e) => out.push_str(&format!("{p}h0[{slot}] = {};\n", c_expr(e))),
            Stmt::Free => out.push_str(&format!("{p}free(h0);\n")),
            Stmt::Call { target, func, arg } => {
                out.push_str(&format!("{p}v{target} = f{func}({});\n", c_expr(arg)));
            }
            Stmt::Print(e) => {
                out.push_str(&format!("{p}printf(\"%ld\\n\", {});\n", c_expr(e)));
            }
            Stmt::If(c, a, b) => {
                out.push_str(&format!("{p}if ({}) {{\n", c_cond(c)));
                c_stmts(a, out, pad + 1);
                out.push_str(&format!("{p}}} else {{\n"));
                c_stmts(b, out, pad + 1);
                out.push_str(&format!("{p}}}\n"));
            }
            Stmt::Loop { id, bound, body } => {
                out.push_str(&format!("{p}k{id} = 0;\n"));
                out.push_str(&format!("{p}while (k{id} < {bound}) {{\n"));
                c_stmts(body, out, pad + 1);
                out.push_str(&format!("{p}    k{id} = k{id} + 1;\n"));
                out.push_str(&format!("{p}}}\n"));
            }
        }
    }
}

/// Renders the program as MiniC. The exit code equals the final residue,
/// which is also the last printed line.
pub fn render_c(program: &Program) -> String {
    let mut out = String::new();
    for f in program.funcs.iter().rev() {
        out.push_str(&format!("long f{}(long p) {{\n", f.id));
        match f.callee {
            Some(j) => out.push_str(&format!(
                "return f{j}({}) + {};\n",
                c_expr(&f.inner),
                c_expr(&f.expr)
            )),
            None => out.push_str(&format!("return {};\n", c_expr(&f.expr))),
        }
        out.push_str("}\n");
    }
    out.push_str("int main() {\n");
    for v in 0..NVARS {
        out.push_str(&format!("long v{v} = {};\n", v + 1));
    }
    for k in loop_ids(&program.body) {
        out.push_str(&format!("long k{k} = 0;\n"));
    }
    out.push_str(&format!("long* h0 = malloc({});\n", HEAP_LEN * 8));
    for s in 0..HEAP_LEN {
        out.push_str(&format!("h0[{s}] = 0;\n"));
    }
    c_stmts(&program.body, &mut out, 0);
    let freed = frees_heap(&program.body);
    out.push_str("long hh = 0;\n");
    for v in 0..NVARS {
        out.push_str(&format!("hh = hh * 31 + (v{v} % 1000);\n"));
    }
    if !freed {
        for s in 0..HEAP_LEN {
            out.push_str(&format!("hh = hh * 31 + (h0[{s}] % 1000);\n"));
        }
        out.push_str("free(h0);\n");
    }
    out.push_str("long res = ((hh % 1000) + 1000) % 1000;\n");
    out.push_str("printf(\"%ld\\n\", res);\n");
    out.push_str("return (int)res;\n}\n");
    out
}

// ---------------------------------------------------------------------------
// MiniPy rendering.
// ---------------------------------------------------------------------------

fn py_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => format!("({v})"),
        Expr::Var(i) => format!("v{i}"),
        Expr::Param => "p".into(),
        Expr::Load(s) => format!("h0[{s}]"),
        Expr::Bin(op, a, b) => format!("({} {} {})", py_expr(a), op.text(), py_expr(b)),
    }
}

fn py_cond(c: &Cond) -> String {
    match c {
        Cond::Lt(a, b) => format!("{} < {}", py_expr(a), py_expr(b)),
        Cond::Eq(a, b) => format!("{} == {}", py_expr(a), py_expr(b)),
        Cond::Ne(a, b) => format!("{} != {}", py_expr(a), py_expr(b)),
    }
}

fn py_stmts(body: &[Stmt], out: &mut String, pad: usize) {
    let p = "    ".repeat(pad);
    for s in body {
        match s {
            Stmt::Assign(v, e) => out.push_str(&format!("{p}v{v} = {}\n", py_expr(e))),
            Stmt::Store(slot, e) => out.push_str(&format!("{p}h0[{slot}] = {}\n", py_expr(e))),
            // Python has no free; rebinding mirrors "the block is gone"
            // closely enough (no later statement touches h0 by invariant).
            Stmt::Free => out.push_str(&format!("{p}h0 = 0\n")),
            Stmt::Call { target, func, arg } => {
                out.push_str(&format!("{p}v{target} = f{func}({})\n", py_expr(arg)));
            }
            Stmt::Print(e) => out.push_str(&format!("{p}print({})\n", py_expr(e))),
            Stmt::If(c, a, b) => {
                out.push_str(&format!("{p}if {}:\n", py_cond(c)));
                py_stmts(a, out, pad + 1);
                out.push_str(&format!("{p}else:\n"));
                py_stmts(b, out, pad + 1);
            }
            Stmt::Loop { id, bound, body } => {
                out.push_str(&format!("{p}k{id} = 0\n"));
                out.push_str(&format!("{p}while k{id} < {bound}:\n"));
                py_stmts(body, out, pad + 1);
                out.push_str(&format!("{p}    k{id} = k{id} + 1\n"));
            }
        }
    }
}

/// Renders the program as MiniPy; prints the same lines as the C
/// rendering, ending with the same residue.
pub fn render_py(program: &Program) -> String {
    let mut out = String::new();
    for f in program.funcs.iter().rev() {
        out.push_str(&format!("def f{}(p):\n", f.id));
        match f.callee {
            Some(j) => out.push_str(&format!(
                "    return f{j}({}) + {}\n",
                py_expr(&f.inner),
                py_expr(&f.expr)
            )),
            None => out.push_str(&format!("    return {}\n", py_expr(&f.expr))),
        }
    }
    for v in 0..NVARS {
        out.push_str(&format!("v{v} = {}\n", v + 1));
    }
    for k in loop_ids(&program.body) {
        out.push_str(&format!("k{k} = 0\n"));
    }
    out.push_str(&format!("h0 = [{}]\n", ["0"; HEAP_LEN].join(", ")));
    py_stmts(&program.body, &mut out, 0);
    let freed = frees_heap(&program.body);
    out.push_str("hh = 0\n");
    let term = |t: String, out: &mut String| {
        // Match C's truncating `%` on possibly-negative values (Python's
        // `%` floors).
        out.push_str(&format!("if {t} >= 0:\n    mm = {t} % 1000\n"));
        out.push_str(&format!("else:\n    mm = 0 - ((0 - {t}) % 1000)\n"));
        out.push_str("hh = hh * 31 + mm\n");
    };
    for v in 0..NVARS {
        term(format!("v{v}"), &mut out);
    }
    if !freed {
        for s in 0..HEAP_LEN {
            term(format!("h0[{s}]"), &mut out);
        }
    }
    out.push_str("res = (hh % 1000 + 1000) % 1000\n");
    out.push_str("print(res)\n");
    out
}

// ---------------------------------------------------------------------------
// MiniAsm generation and rendering.
// ---------------------------------------------------------------------------

/// One instruction-level item of a generated assembly program.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmItem {
    /// `s{d} = s{a} op s{b}`
    Op3 {
        /// Operator.
        op: Op,
        /// Destination saved register index.
        d: usize,
        /// Left operand register index.
        a: usize,
        /// Right operand register index.
        b: usize,
    },
    /// `addi s{d}, s{d}, imm`
    AddI {
        /// Register index.
        d: usize,
        /// Immediate, kept within ±63.
        imm: i64,
    },
    /// `li s{d}, imm`
    Li {
        /// Register index.
        d: usize,
        /// Immediate.
        imm: i64,
    },
    /// A counted loop over straight-line items (never nested; uses
    /// `t0`/`t1`).
    Loop {
        /// Literal iteration count, `1..=3`; the body runs at least once.
        bound: i64,
        /// Straight-line body ([`AsmItem::Op3`]/[`AsmItem::AddI`]/
        /// [`AsmItem::Li`] only).
        body: Vec<AsmItem>,
    },
    /// `s{d} = fn{func}(s{d})` via the a0 calling convention.
    Call {
        /// Function index.
        func: usize,
        /// Register passed and overwritten.
        d: usize,
    },
}

/// A generated assembly program: leaf functions plus a main item list.
/// Exits with code `s0 & 63`.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmSpec {
    /// Leaf functions as `(op, imm)` applied to `a0`.
    pub funcs: Vec<(Op, i64)>,
    /// Main body.
    pub items: Vec<AsmItem>,
}

/// Number of saved registers the generator uses (`s0..s3`).
pub const NSREGS: usize = 4;

/// Generates a RISC-V program for `seed`, deterministically.
pub fn gen_asm(seed: u64) -> AsmSpec {
    // Offset the stream so the asm program is not correlated with the
    // shared-AST program for the same seed.
    let mut rng = Rng::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let nfuncs = rng.range(1, 3) as usize;
    let funcs = (0..nfuncs)
        .map(|_| (*pick_op(&mut rng), rng.range(1, 8)))
        .collect();
    let n = rng.range(3, 7);
    let mut items = Vec::new();
    for _ in 0..n {
        items.push(gen_asm_item(&mut rng, nfuncs, true));
    }
    // Guarantee at least one call so function tracking has a target.
    items.push(AsmItem::Call {
        func: 0,
        d: rng.below(NSREGS as u64) as usize,
    });
    AsmSpec { funcs, items }
}

fn gen_asm_item(rng: &mut Rng, nfuncs: usize, allow_struct: bool) -> AsmItem {
    match rng.below(if allow_struct { 6 } else { 4 }) {
        0 => AsmItem::Li {
            d: rng.below(NSREGS as u64) as usize,
            imm: rng.range(-9, 10),
        },
        1 => AsmItem::AddI {
            d: rng.below(NSREGS as u64) as usize,
            imm: rng.range(-9, 10),
        },
        2 | 3 => AsmItem::Op3 {
            op: *pick_op(rng),
            d: rng.below(NSREGS as u64) as usize,
            a: rng.below(NSREGS as u64) as usize,
            b: rng.below(NSREGS as u64) as usize,
        },
        4 => AsmItem::Call {
            func: rng.below(nfuncs as u64) as usize,
            d: rng.below(NSREGS as u64) as usize,
        },
        _ => {
            let bound = rng.range(1, 4);
            let n = rng.range(1, 4);
            let body = (0..n).map(|_| gen_asm_item(rng, nfuncs, false)).collect();
            AsmItem::Loop { bound, body }
        }
    }
}

fn asm_items(items: &[AsmItem], out: &mut String, next_label: &mut usize) {
    for item in items {
        match item {
            AsmItem::Li { d, imm } => out.push_str(&format!("    li s{d}, {imm}\n")),
            AsmItem::AddI { d, imm } => out.push_str(&format!("    addi s{d}, s{d}, {imm}\n")),
            AsmItem::Op3 { op, d, a, b } => {
                let m = match op {
                    Op::Add => "add",
                    Op::Sub => "sub",
                    Op::Mul => "mul",
                };
                out.push_str(&format!("    {m} s{d}, s{a}, s{b}\n"));
            }
            AsmItem::Loop { bound, body } => {
                let l = *next_label;
                *next_label += 1;
                out.push_str("    li t0, 0\n");
                out.push_str(&format!("    li t1, {bound}\n"));
                out.push_str(&format!("loop{l}:\n"));
                asm_items(body, out, next_label);
                out.push_str("    addi t0, t0, 1\n");
                out.push_str(&format!("    blt t0, t1, loop{l}\n"));
            }
            AsmItem::Call { func, d } => {
                out.push_str(&format!("    mv a0, s{d}\n"));
                out.push_str(&format!("    call fn{func}\n"));
                out.push_str(&format!("    mv s{d}, a0\n"));
            }
        }
    }
}

/// Renders the spec as RISC-V assembly accepted by `miniasm`.
pub fn render_asm(spec: &AsmSpec) -> String {
    let mut out = String::from("main:\n");
    for d in 0..NSREGS {
        out.push_str(&format!("    li s{d}, {}\n", d + 1));
    }
    let mut next_label = 0usize;
    asm_items(&spec.items, &mut out, &mut next_label);
    out.push_str("    andi a0, s0, 63\n");
    out.push_str("    li a7, 93\n");
    out.push_str("    ecall\n");
    for (i, (op, imm)) in spec.funcs.iter().enumerate() {
        out.push_str(&format!("fn{i}:\n"));
        match op {
            Op::Add => out.push_str(&format!("    addi a0, a0, {imm}\n")),
            Op::Sub => out.push_str(&format!("    addi a0, a0, {}\n", -imm)),
            Op::Mul => {
                out.push_str(&format!("    li t2, {imm}\n"));
                out.push_str("    mul a0, a0, t2\n");
            }
        }
        out.push_str("    ret\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(gen_program(seed), gen_program(seed));
            assert_eq!(gen_asm(seed), gen_asm(seed));
            assert_eq!(render_c(&gen_program(seed)), render_c(&gen_program(seed)));
        }
        assert_ne!(gen_program(1), gen_program(2));
    }

    #[test]
    fn generated_c_compiles_and_runs() {
        for seed in 0..40 {
            let src = render_c(&gen_program(seed));
            let program =
                minic::compile("gen.c", &src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let code = minic::vm::Vm::new(&program)
                .run_to_completion()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert!((0..1000).contains(&code), "seed {seed}: exit {code}");
        }
    }

    #[test]
    fn generated_py_parses_and_runs() {
        for seed in 0..40 {
            let src = render_py(&gen_program(seed));
            let module =
                minipy::parser::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let mut interp = minipy::Interp::new(module);
            interp.set_max_steps(Some(2_000_000));
            interp
                .run(&mut minipy::NullTracer)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generated_asm_assembles() {
        for seed in 0..40 {
            let src = render_asm(&gen_asm(seed));
            miniasm::asm::assemble("gen.s", &src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn free_is_top_level_and_final_for_the_heap() {
        fn heap_used(body: &[Stmt]) -> bool {
            fn expr_uses(e: &Expr) -> bool {
                match e {
                    Expr::Load(_) => true,
                    Expr::Bin(_, a, b) => expr_uses(a) || expr_uses(b),
                    _ => false,
                }
            }
            body.iter().any(|s| match s {
                Stmt::Store(..) => true,
                Stmt::Assign(_, e) | Stmt::Print(e) => expr_uses(e),
                Stmt::Call { arg, .. } => expr_uses(arg),
                Stmt::If(c, a, b) => {
                    let cond_uses = match c {
                        Cond::Lt(x, y) | Cond::Eq(x, y) | Cond::Ne(x, y) => {
                            expr_uses(x) || expr_uses(y)
                        }
                    };
                    cond_uses || heap_used(a) || heap_used(b)
                }
                Stmt::Loop { body, .. } => heap_used(body),
                Stmt::Free => false,
            })
        }
        for seed in 0..200 {
            let p = gen_program(seed);
            if let Some(pos) = p.body.iter().position(|s| matches!(s, Stmt::Free)) {
                assert!(
                    !heap_used(&p.body[pos + 1..]),
                    "seed {seed}: heap access after free"
                );
                assert_eq!(
                    p.body.iter().filter(|s| matches!(s, Stmt::Free)).count(),
                    1,
                    "seed {seed}: double free"
                );
            }
        }
    }
}
