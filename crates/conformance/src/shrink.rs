//! Reproducer shrinking and the committed corpus.
//!
//! When a differential check or fault scenario fails, [`shrink`] reduces
//! the generated program to a local minimum that still fails, delta-
//! debugging style: drop statements, hoist block bodies, collapse
//! conditionals, clamp loop bounds, and simplify expressions, to a
//! fixpoint. Minimized reproducers are written as [`CorpusEntry`] JSON
//! files under `tests/corpus/` (repo root) and re-run on every CI build
//! by `tests/corpus_replay.rs`.

use crate::diff::Driver;
use crate::fault::{
    chaos_wrapper, dead_wrapper, ChaosFault, ChaosPlan, ChaosState, FaultKind, FaultTransport,
};
use crate::gen::{self, Expr, Program, Stmt};
use easytracker::{MiTracker, ProgramSpec, Supervision, Tracker, TrackerError};
use mi::protocol::{Command, Response};
use mi::transport::{duplex, ChannelTransport};
use mi::{minic_engine::MinicEngine, Client, MiError, Server};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// The reducer.
// ---------------------------------------------------------------------------

/// Shrinks `program` to a local minimum for which `fails` still returns
/// true. If `fails(program)` is false the program is returned unchanged.
pub fn shrink(program: &Program, fails: &mut dyn FnMut(&Program) -> bool) -> Program {
    if !fails(program) {
        return program.clone();
    }
    let mut current = program.clone();
    loop {
        let mut reduced = false;
        for candidate in candidates(&current) {
            if measure(&candidate) < measure(&current) && fails(&candidate) {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

/// Node count, the primary measure the reducer drives down.
pub fn size(p: &Program) -> usize {
    p.funcs
        .iter()
        .map(|f| 1 + expr_size(&f.expr) + expr_size(&f.inner))
        .sum::<usize>()
        + stmts_size(&p.body)
}

/// Lexicographic reduction measure: node count first, then leaf weight so
/// same-size simplifications (variable → literal, literal halving) still
/// make progress without cycling.
fn measure(p: &Program) -> (usize, u64) {
    let mut w = 0u64;
    let mut expr_w = |e: &Expr| w += expr_weight(e);
    for f in &p.funcs {
        expr_w(&f.expr);
        expr_w(&f.inner);
    }
    fn walk(body: &[Stmt], w: &mut u64) {
        for s in body {
            match s {
                Stmt::Assign(_, e) | Stmt::Store(_, e) | Stmt::Print(e) => *w += expr_weight(e),
                Stmt::Call { arg, .. } => *w += expr_weight(arg),
                Stmt::If(_, a, b) => {
                    walk(a, w);
                    walk(b, w);
                }
                Stmt::Loop { body, .. } => walk(body, w),
                Stmt::Free => {}
            }
        }
    }
    walk(&p.body, &mut w);
    (size(p), w)
}

fn expr_weight(e: &Expr) -> u64 {
    match e {
        Expr::Lit(v) => v.unsigned_abs(),
        // Heavier than any literal the generator emits, so leaf → Lit(0)
        // always reduces.
        Expr::Var(_) | Expr::Load(_) | Expr::Param => 1_000,
        Expr::Bin(_, a, b) => expr_weight(a) + expr_weight(b),
    }
}

fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Bin(_, a, b) => 1 + expr_size(a) + expr_size(b),
        _ => 1,
    }
}

fn stmts_size(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            Stmt::If(_, a, b) => 1 + stmts_size(a) + stmts_size(b),
            Stmt::Loop { body, .. } => 1 + stmts_size(body),
            _ => 1,
        })
        .sum()
}

/// All single-edit reductions of `p`.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // Drop the highest function if nothing references it.
    if p.funcs.len() > 1 {
        let last = p.funcs.len() - 1;
        let called = calls_func(&p.body, last) || p.funcs.iter().any(|f| f.callee == Some(last));
        if !called {
            let mut q = p.clone();
            q.funcs.pop();
            out.push(q);
        }
    }
    // Cut call chains.
    for (i, f) in p.funcs.iter().enumerate() {
        if f.callee.is_some() {
            let mut q = p.clone();
            q.funcs[i].callee = None;
            out.push(q);
        }
    }
    // Structural reductions of the body.
    let variants = reduce_stmts(&p.body);
    out.extend(variants.into_iter().map(|body| Program {
        funcs: p.funcs.clone(),
        body,
    }));
    out
}

fn calls_func(body: &[Stmt], id: usize) -> bool {
    body.iter().any(|s| match s {
        Stmt::Call { func, .. } => *func == id,
        Stmt::If(_, a, b) => calls_func(a, id) || calls_func(b, id),
        Stmt::Loop { body, .. } => calls_func(body, id),
        _ => false,
    })
}

/// Every one-edit variant of a statement list: remove one statement,
/// replace a compound by (part of) its body, clamp a loop bound, shrink
/// one embedded expression, or recurse into a nested block.
fn reduce_stmts(body: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        // Removal.
        let mut v = body.to_vec();
        v.remove(i);
        out.push(v);
        match &body[i] {
            Stmt::If(_, a, b) => {
                for arm in [a, b] {
                    let mut v = body.to_vec();
                    v.splice(i..=i, arm.iter().cloned());
                    out.push(v);
                }
                for (branch, variants) in [(0, reduce_stmts(a)), (1, reduce_stmts(b))] {
                    for nested in variants {
                        let mut v = body.to_vec();
                        if let Stmt::If(_, a2, b2) = &mut v[i] {
                            if branch == 0 {
                                *a2 = nested;
                            } else {
                                *b2 = nested;
                            }
                        }
                        out.push(v);
                    }
                }
            }
            Stmt::Loop {
                id,
                bound,
                body: inner,
            } => {
                // Hoist the body out of the loop (runs once).
                let mut v = body.to_vec();
                v.splice(i..=i, inner.iter().cloned());
                out.push(v);
                if *bound > 1 {
                    let mut v = body.to_vec();
                    v[i] = Stmt::Loop {
                        id: *id,
                        bound: 1,
                        body: inner.clone(),
                    };
                    out.push(v);
                }
                for nested in reduce_stmts(inner) {
                    let mut v = body.to_vec();
                    if let Stmt::Loop { body: b2, .. } = &mut v[i] {
                        *b2 = nested;
                    }
                    out.push(v);
                }
            }
            Stmt::Assign(var, e) => {
                for e2 in reduce_expr(e) {
                    let mut v = body.to_vec();
                    v[i] = Stmt::Assign(*var, e2);
                    out.push(v);
                }
            }
            Stmt::Store(slot, e) => {
                for e2 in reduce_expr(e) {
                    let mut v = body.to_vec();
                    v[i] = Stmt::Store(*slot, e2);
                    out.push(v);
                }
            }
            Stmt::Print(e) => {
                for e2 in reduce_expr(e) {
                    let mut v = body.to_vec();
                    v[i] = Stmt::Print(e2);
                    out.push(v);
                }
            }
            Stmt::Call { target, func, arg } => {
                for e2 in reduce_expr(arg) {
                    let mut v = body.to_vec();
                    v[i] = Stmt::Call {
                        target: *target,
                        func: *func,
                        arg: e2,
                    };
                    out.push(v);
                }
            }
            Stmt::Free => {}
        }
    }
    out
}

fn reduce_expr(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Bin(_, a, b) => vec![(**a).clone(), (**b).clone()],
        Expr::Lit(v) if *v != 0 => vec![Expr::Lit(v / 2)],
        Expr::Var(_) | Expr::Load(_) | Expr::Param => vec![Expr::Lit(0)],
        _ => Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// The corpus.
// ---------------------------------------------------------------------------

/// What a corpus entry asserts when replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckKind {
    /// `diff_c_vs_replay` on `c` reports no divergence.
    CAgainstReplay,
    /// `diff_py_vs_replay` on `py` reports no divergence.
    PyAgainstReplay,
    /// `diff_asm_vs_replay` on `asm` reports no divergence.
    AsmAgainstReplay,
    /// `diff_c_vs_py` on `c`/`py` reports no divergence.
    CrossLanguageOutput,
    /// A duplicated MI response frame desyncs a legacy bare-wire client
    /// on `c` but is discarded by the sequence-numbered envelope.
    DuplicateFaultRecovery,
    /// A truncated MI response frame yields a typed codec error on `c`
    /// and the re-issued command succeeds.
    TruncateFaultRecovery,
    /// An engine crash mid-session on `c` is survived transparently: the
    /// supervised tracker respawns, re-establishes state, and produces a
    /// trace identical to the fault-free run.
    ChaosCrashRecovery,
    /// An engine that dies on every incarnation exhausts the respawn
    /// budget on `c` and degrades explicitly instead of looping forever.
    RespawnStormDegraded,
    /// On a generated memory-unsafe `c` program, the static analysis
    /// covers every runtime sanitizer trap at the same
    /// `(kind, function, line)`, and at least one trap actually fires.
    StaticCoversSanitizer,
    /// On a generated memory-safe `c` program, running under the
    /// sanitizer is behaviour-neutral: identical output and exit code to
    /// the plain VM.
    SanitizerNeutralOutput,
}

/// A minimized, committed reproducer. `seed` records the generator seed
/// the program was shrunk from (reproduce with `shrink` + the predicate
/// named by `check`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// File-stem-style identifier.
    pub name: String,
    /// What this entry pins down, for humans.
    pub note: String,
    /// Generator seed the program was shrunk from.
    pub seed: u64,
    /// Assertion replayed by `tests/corpus_replay.rs`.
    pub check: CheckKind,
    /// MiniC rendering, when the check needs one.
    pub c: Option<String>,
    /// MiniPy rendering, when the check needs one.
    pub py: Option<String>,
    /// MiniAsm rendering, when the check needs one.
    pub asm: Option<String>,
}

/// The committed corpus directory (`tests/corpus/` at the repo root).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Loads every `*.json` entry in [`corpus_dir`], sorted by file name.
pub fn load_corpus() -> Result<Vec<CorpusEntry>, String> {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|r| r.ok().map(|d| d.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text =
                std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", p.display()))
        })
        .collect()
}

/// Writes `entry` as pretty JSON into `dir` as `<name>.json`.
pub fn write_entry(dir: &std::path::Path, entry: &CorpusEntry) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = dir.join(format!("{}.json", entry.name));
    let json = serde_json::to_string_pretty(entry).map_err(|e| e.to_string())?;
    std::fs::write(&path, json + "\n").map_err(|e| e.to_string())?;
    Ok(path)
}

fn need<'a>(src: &'a Option<String>, what: &str, entry: &CorpusEntry) -> Result<&'a str, String> {
    src.as_deref()
        .ok_or_else(|| format!("entry {} lacks its {what} source", entry.name))
}

/// Re-runs a corpus entry's assertion. `Ok(())` means the pinned
/// behaviour still holds.
pub fn run_entry(entry: &CorpusEntry) -> Result<(), String> {
    let driver = Driver::new();
    let no_divergence = |div: Vec<crate::diff::Divergence>| {
        if div.is_empty() {
            Ok(())
        } else {
            Err(div
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n"))
        }
    };
    match entry.check {
        CheckKind::CAgainstReplay => {
            no_divergence(driver.diff_c_vs_replay(entry.seed, need(&entry.c, "C", entry)?))
        }
        CheckKind::PyAgainstReplay => {
            no_divergence(driver.diff_py_vs_replay(entry.seed, need(&entry.py, "Py", entry)?))
        }
        CheckKind::AsmAgainstReplay => {
            no_divergence(driver.diff_asm_vs_replay(entry.seed, need(&entry.asm, "asm", entry)?))
        }
        CheckKind::CrossLanguageOutput => no_divergence(driver.diff_c_vs_py(
            entry.seed,
            need(&entry.c, "C", entry)?,
            need(&entry.py, "Py", entry)?,
        )),
        CheckKind::DuplicateFaultRecovery => duplicate_fault_recovery(need(&entry.c, "C", entry)?),
        CheckKind::TruncateFaultRecovery => truncate_fault_recovery(need(&entry.c, "C", entry)?),
        CheckKind::ChaosCrashRecovery => chaos_crash_recovery(need(&entry.c, "C", entry)?),
        CheckKind::RespawnStormDegraded => respawn_storm_degraded(need(&entry.c, "C", entry)?),
        CheckKind::StaticCoversSanitizer => static_covers_sanitizer(need(&entry.c, "C", entry)?),
        CheckKind::SanitizerNeutralOutput => sanitizer_neutral_output(need(&entry.c, "C", entry)?),
    }
}

/// The superset-oracle reproducer: the static findings must cover every
/// runtime trap, and at least one trap must actually fire so the entry
/// keeps exercising the sanitizer path.
fn static_covers_sanitizer(src: &str) -> Result<(), String> {
    let report = crate::sanitize::superset_oracle("corpus.c", src)?;
    if !report.holds() {
        return Err(format!(
            "runtime traps escaped the static findings: {:#?}",
            report.violations
        ));
    }
    if report.runtime_traps.is_empty() {
        return Err("no runtime traps fired; the entry no longer exercises the sanitizer".into());
    }
    Ok(())
}

/// The behaviour-neutrality reproducer: on a safe program the sanitized
/// VM must print the same output and exit with the same code as the
/// plain one (traps are observations, never behaviour changes).
fn sanitizer_neutral_output(src: &str) -> Result<(), String> {
    let program = minic::compile("corpus.c", src).map_err(|e| e.to_string())?;
    let mut plain = minic::vm::Vm::new(&program);
    let plain_exit = plain
        .run_to_completion()
        .map_err(|e| format!("plain run: {e}"))?;
    let mut sanitized = minic::vm::Vm::new(&program);
    sanitized.set_sanitizer(true);
    let sanitized_exit = loop {
        match sanitized.step() {
            Ok(minic::Event::Exited(code)) => break code,
            Ok(_) => {}
            Err(e) => return Err(format!("sanitized run faulted: {e}")),
        }
    };
    if plain.output() != sanitized.output() || plain_exit != sanitized_exit {
        return Err(format!(
            "sanitizer changed behaviour:\n\
             plain:     exit {plain_exit}, output {:?}\n\
             sanitized: exit {sanitized_exit}, output {:?}",
            plain.output(),
            sanitized.output(),
        ));
    }
    Ok(())
}

/// Supervision for corpus chaos replays: generous deadline (crashes do
/// not hang), tiny backoff, a small respawn budget.
fn corpus_supervision() -> Supervision {
    Supervision {
        deadline: Some(Duration::from_secs(10)),
        ping_deadline: Duration::from_millis(200),
        max_retries: 1,
        max_respawns: 2,
        backoff_base: Duration::from_micros(50),
        backoff_cap: Duration::from_millis(2),
        jitter_seed: 0xc0fe_efac_e5ca_1e01,
    }
}

/// The crash-recovery reproducer: the engine dies at a fixed port call
/// and the supervised session must still produce the fault-free trace.
fn chaos_crash_recovery(src: &str) -> Result<(), String> {
    let driver = Driver::new();
    let mut reference =
        MiTracker::load_c("corpus.c", src).map_err(|e| format!("reference load: {e}"))?;
    let want = driver
        .step_trace(&mut reference)
        .map_err(|e| format!("reference run: {e}"))?;
    reference.terminate();

    let reg = obs::Registry::new();
    let state = ChaosState::new();
    let mut chaos = MiTracker::load_spec(
        ProgramSpec::c("corpus.c", src),
        reg.clone(),
        corpus_supervision(),
        Some(chaos_wrapper(
            ChaosPlan {
                at_call: 4,
                fault: ChaosFault::Crash,
            },
            Arc::clone(&state),
            reg.clone(),
        )),
    )
    .map_err(|e| format!("chaos load: {e}"))?;
    let got = driver
        .step_trace(&mut chaos)
        .map_err(|e| format!("chaos run: {e}"))?;
    chaos.terminate();
    if !state.fired() {
        return Err("crash never fired; scenario too short for call 4".into());
    }
    if got != want {
        return Err(format!(
            "trace after recovery differs from the fault-free run:\n\
             reference: {} steps, output {:?}, exit {:?}\n\
             chaos:     {} steps, output {:?}, exit {:?}",
            want.steps.len(),
            want.output,
            want.exit,
            got.steps.len(),
            got.output,
            got.exit,
        ));
    }
    let snap = reg.snapshot();
    if snap.counter("mi.respawns") < 1 {
        return Err("recovery happened without counting mi.respawns".into());
    }
    Ok(())
}

/// The respawn-storm reproducer: every incarnation is dead on arrival, so
/// the session must exhaust its budget and degrade with a typed error.
fn respawn_storm_degraded(src: &str) -> Result<(), String> {
    let reg = obs::Registry::new();
    let cfg = corpus_supervision();
    let budget = cfg.max_respawns;
    let mut t = MiTracker::load_spec(
        ProgramSpec::c("corpus.c", src),
        reg.clone(),
        cfg,
        Some(dead_wrapper()),
    )
    .map_err(|e| format!("load: {e}"))?;
    match t.start() {
        Err(TrackerError::SessionDegraded(_)) => {}
        other => return Err(format!("expected SessionDegraded, got {other:?}")),
    }
    if t.respawns() != budget {
        return Err(format!(
            "expected exactly {budget} respawn attempts, saw {}",
            t.respawns()
        ));
    }
    if reg.snapshot().counter("mi.respawns") != u64::from(budget) {
        return Err("mi.respawns does not match the attempts made".into());
    }
    t.terminate();
    Ok(())
}

fn spawn_minic_engine(
    src: &str,
    endpoint: ChannelTransport,
) -> Result<std::thread::JoinHandle<()>, String> {
    let program = minic::compile("corpus.c", src).map_err(|e| e.to_string())?;
    Ok(std::thread::spawn(move || {
        let _ = Server::new(MinicEngine::new(&program), endpoint).serve();
    }))
}

/// The duplicated-frame reproducer: a bare legacy client silently
/// desyncs (observable as a pause report answering `GetExitCode`), while
/// the sequence-numbered envelope client discards the stale frame.
fn duplicate_fault_recovery(src: &str) -> Result<(), String> {
    // Enveloped client: the duplicate must be invisible.
    let reg = obs::Registry::new();
    let (a, b) = duplex();
    let handle = spawn_minic_engine(src, b)?;
    let mut client = Client::with_registry(
        FaultTransport::single(a, 1, FaultKind::Duplicate, reg.clone()),
        reg.clone(),
    );
    client.call(Command::Start).map_err(|e| e.to_string())?;
    match client.call(Command::GetExitCode) {
        Ok(Response::ExitCode(None)) => {}
        other => {
            return Err(format!(
                "enveloped client should see the real answer, got {other:?}"
            ))
        }
    }
    let _ = client.call(Command::Terminate);
    handle.join().map_err(|_| "engine thread panicked")?;
    if reg.snapshot().counter("mi.client.stale_frames") != 1 {
        return Err("stale-frame discard not counted".into());
    }

    // Bare legacy client: the duplicate masquerades as the next answer.
    let (a, b) = duplex();
    let handle = spawn_minic_engine(src, b)?;
    let mut bare = Client::new_bare(FaultTransport::single(
        a,
        1,
        FaultKind::Duplicate,
        obs::Registry::new(),
    ));
    bare.call(Command::Start).map_err(|e| e.to_string())?;
    match bare.call(Command::GetExitCode) {
        Ok(Response::Paused(_)) => {}
        other => {
            return Err(format!(
                "bare client desync no longer reproduces (got {other:?}); \
                 if intentional, retire this corpus entry"
            ))
        }
    }
    let _ = bare.call(Command::Terminate);
    handle.join().map_err(|_| "engine thread panicked")?;
    Ok(())
}

/// The truncated-frame reproducer: typed codec error, then recovery.
fn truncate_fault_recovery(src: &str) -> Result<(), String> {
    let reg = obs::Registry::new();
    let (a, b) = duplex();
    let handle = spawn_minic_engine(src, b)?;
    let mut client = Client::new(FaultTransport::single(
        a,
        2,
        FaultKind::Truncate,
        reg.clone(),
    ));
    client.call(Command::Start).map_err(|e| e.to_string())?;
    match client.call(Command::GetState) {
        Err(MiError::Codec(_)) => {}
        other => return Err(format!("expected a typed codec error, got {other:?}")),
    }
    match client.call(Command::GetState) {
        Ok(Response::State(_)) => {}
        other => return Err(format!("re-issue after the fault failed: {other:?}")),
    }
    let _ = client.call(Command::Terminate);
    handle.join().map_err(|_| "engine thread panicked")?;
    if reg
        .snapshot()
        .counter("conformance.fault.injected.truncate")
        != 1
    {
        return Err("fault injection not counted".into());
    }
    Ok(())
}

/// Shrinks the generator program for `seed` under `fails` and packages
/// the result as a corpus entry carrying the renderings `check` needs.
pub fn shrink_to_entry(
    seed: u64,
    name: &str,
    note: &str,
    check: CheckKind,
    fails: &mut dyn FnMut(&Program) -> bool,
) -> CorpusEntry {
    let shrunk = shrink(&gen::gen_program(seed), fails);
    let needs_c = matches!(
        check,
        CheckKind::CAgainstReplay
            | CheckKind::CrossLanguageOutput
            | CheckKind::DuplicateFaultRecovery
            | CheckKind::TruncateFaultRecovery
            | CheckKind::ChaosCrashRecovery
            | CheckKind::RespawnStormDegraded
    );
    let needs_py = matches!(
        check,
        CheckKind::PyAgainstReplay | CheckKind::CrossLanguageOutput
    );
    CorpusEntry {
        name: name.to_owned(),
        note: note.to_owned(),
        seed,
        check,
        c: needs_c.then(|| gen::render_c(&shrunk)),
        py: needs_py.then(|| gen::render_py(&shrunk)),
        asm: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_reaches_a_small_fixpoint() {
        // Predicate: the program still prints something. The minimum is a
        // single Print statement (plus f0, which gen always emits).
        let program = gen::gen_program(3);
        let has_print = |p: &Program| {
            fn any_print(body: &[Stmt]) -> bool {
                body.iter().any(|s| match s {
                    Stmt::Print(_) => true,
                    Stmt::If(_, a, b) => any_print(a) || any_print(b),
                    Stmt::Loop { body, .. } => any_print(body),
                    _ => false,
                })
            }
            any_print(&p.body)
        };
        let shrunk = shrink(&program, &mut |p| has_print(p));
        assert!(has_print(&shrunk));
        assert!(size(&shrunk) < size(&program));
        // The fixpoint is genuinely minimal for this predicate: exactly
        // one statement, a print of a leaf expression.
        assert_eq!(stmts_size(&shrunk.body), 1);
        assert!(matches!(&shrunk.body[..], [Stmt::Print(Expr::Lit(0))]));
        // Shrunk programs still render and run.
        let src = gen::render_c(&shrunk);
        let compiled = minic::compile("shrunk.c", &src).expect("renders valid C");
        minic::vm::Vm::new(&compiled)
            .run_to_completion()
            .expect("runs");
    }

    #[test]
    fn shrink_on_a_passing_program_is_identity() {
        let program = gen::gen_program(5);
        let same = shrink(&program, &mut |_| false);
        assert_eq!(same, program);
    }

    #[test]
    fn corpus_entries_roundtrip_json() {
        let entry = CorpusEntry {
            name: "x".into(),
            note: "n".into(),
            seed: 9,
            check: CheckKind::CAgainstReplay,
            c: Some("int main() { return 0; }".into()),
            py: None,
            asm: None,
        };
        let json = serde_json::to_string(&entry).unwrap();
        let back: CorpusEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(entry, back);
    }
}
