//! Conformance harness for the EasyTracker reproduction.
//!
//! The paper's central promise is a *language-agnostic* control and
//! inspection API: the same program driven through any tracker — MiTracker
//! over an in-process channel, MiTracker over a real `mi-server` child
//! process, the in-process PyTracker, or a [`easytracker::ReplayTracker`]
//! over a recording — must tell the same story. This crate turns that
//! promise into an executable oracle:
//!
//! * [`gen`] — seed-driven generators emitting semantically grounded
//!   MiniC/MiniPy programs from one shared AST (nested calls, bounded
//!   loops, heap allocation, pointer writes, frees) plus a RISC-V
//!   generator;
//! * [`diff`] — the lockstep differential driver comparing serialized
//!   state snapshots at every pause point, reason sequences under live
//!   control points, output, and exit codes;
//! * [`fault`] — deterministic fault injection for the MI boundary: wire
//!   faults (truncated, corrupted, duplicated frames; mid-command EOF)
//!   and liveness faults (hangs, stalls, engine crashes) plus seeded
//!   chaos schedules that kill a supervised session at an arbitrary call;
//! * [`sanitize`] — seed-driven memory-*unsafe* MiniC programs and the
//!   static ⊇ runtime superset oracle tying the `analysis` crate's
//!   findings to the VM sanitizer's traps;
//! * [`shrink`] — a delta-debugging reducer over the generator AST, and
//!   the committed reproducer corpus under `tests/corpus/`.
//!
//! Counters land under `conformance.*` in the obs registry the driver is
//! built with.

pub mod diff;
pub mod fault;
pub mod gen;
pub mod rng;
pub mod sanitize;
pub mod shrink;

pub use diff::{ChaosOutcome, Divergence, Driver};
pub use fault::{
    chaos_wrapper, counting_wrapper, dead_wrapper, ChaosFault, ChaosPlan, ChaosState, FaultKind,
    FaultTransport,
};
pub use sanitize::{gen_unsafe_c, superset_oracle, OracleReport};
pub use shrink::{shrink, CheckKind, CorpusEntry};

use std::path::PathBuf;
use std::process::Command;

/// Locates the `mi_server` binary for process-backed differential runs,
/// building it with cargo if it is not there yet.
///
/// Walks up from the test executable to the enclosing `target/` directory
/// first (CI builds the binary explicitly, so this is the common path),
/// then falls back to `cargo build -p mi --bin mi_server`.
pub fn mi_server_bin() -> Option<PathBuf> {
    if let Some(found) = locate_built() {
        return Some(found);
    }
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["build", "-p", "mi", "--bin", "mi_server"]);
    if !cfg!(debug_assertions) {
        cmd.arg("--release");
    }
    let status = cmd.status().ok()?;
    if !status.success() {
        return None;
    }
    locate_built()
}

fn locate_built() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let bin = format!("mi_server{}", std::env::consts::EXE_SUFFIX);
    for dir in exe.ancestors() {
        if dir.file_name().is_some_and(|n| n == "target") {
            for profile in ["debug", "release"] {
                let candidate = dir.join(profile).join(&bin);
                if candidate.is_file() {
                    return Some(candidate);
                }
            }
        }
        // The test binary itself lives in target/<profile>/deps/.
        let sibling = dir.join(&bin);
        if sibling.is_file() {
            return Some(sibling);
        }
    }
    None
}
