//! Committed-corpus replay.
//!
//! Every minimized reproducer under `tests/corpus/` (repo root) is
//! re-run on each build: the bug it pinned must stay fixed, and the
//! wire-level behaviours it demonstrates must keep reproducing. The
//! `#[ignore]`d `regenerate_corpus` test re-derives the entries from
//! their seeds through the shrinker — run it after changing the
//! generator or the reducer:
//!
//! ```text
//! cargo test -p conformance --test corpus_replay -- --include-ignored regenerate_corpus
//! ```

use conformance::shrink::{corpus_dir, load_corpus, run_entry, shrink_to_entry, write_entry};
use conformance::{gen, CheckKind};

#[test]
fn corpus_is_present_and_green() {
    let entries = load_corpus().expect("corpus directory readable");
    assert!(
        !entries.is_empty(),
        "tests/corpus/ must hold at least one committed reproducer"
    );
    let mut failures = Vec::new();
    for entry in &entries {
        if let Err(e) = run_entry(entry) {
            failures.push(format!("{}: {e}", entry.name));
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus entr{} regressed:\n{}",
        failures.len(),
        if failures.len() == 1 { "y" } else { "ies" },
        failures.join("\n")
    );
}

/// The committed entries really are shrinker outputs: re-deriving each
/// one from its recorded seed and predicate reproduces the committed
/// sources byte for byte (so the corpus cannot silently drift from the
/// generator).
#[test]
fn corpus_entries_rederive_from_their_seeds() {
    for committed in load_corpus().expect("corpus readable") {
        let fresh = rederive(&committed.name, committed.seed, committed.check);
        assert_eq!(
            fresh, committed,
            "{}: shrinking seed {} no longer yields the committed entry; \
             run the regenerate_corpus test and commit the result",
            committed.name, committed.seed
        );
    }
}

#[test]
#[ignore = "writes tests/corpus/; run after generator or reducer changes"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    for (name, seed, check) in SPECS {
        let entry = rederive(name, *seed, *check);
        run_entry(&entry).expect("fresh entry must be green before committing");
        let path = write_entry(&dir, &entry).expect("write corpus entry");
        println!("wrote {}", path.display());
    }
}

/// The corpus roster: every committed entry's seed, check kind, and the
/// shrink predicate that carves out its minimal reproducer.
const SPECS: &[(&str, u64, CheckKind)] = &[
    (
        "duplicate-frame-desync",
        0,
        CheckKind::DuplicateFaultRecovery,
    ),
    (
        "truncated-frame-recovery",
        0,
        CheckKind::TruncateFaultRecovery,
    ),
    (
        "negative-residue-cross-language",
        3,
        CheckKind::CrossLanguageOutput,
    ),
    ("engine-crash-recovery", 1, CheckKind::ChaosCrashRecovery),
    ("respawn-storm-degrades", 1, CheckKind::RespawnStormDegraded),
    (
        "static-superset-of-sanitizer",
        7,
        CheckKind::StaticCoversSanitizer,
    ),
    (
        "sanitizer-neutral-execution",
        3,
        CheckKind::SanitizerNeutralOutput,
    ),
];

fn rederive(name: &str, seed: u64, check: CheckKind) -> conformance::CorpusEntry {
    // The sanitizer entries are not shrinker outputs: their programs come
    // straight from the dedicated generators, so re-derivation is direct
    // construction from the seed.
    match check {
        CheckKind::StaticCoversSanitizer => {
            return conformance::CorpusEntry {
                name: name.to_owned(),
                note: "On this generated memory-unsafe program, every runtime \
                       sanitizer trap is covered by a static finding at the same \
                       (kind, function, line), and at least one trap fires — pins \
                       the static-superset-of-runtime containment relation."
                    .into(),
                seed,
                check,
                c: Some(conformance::gen_unsafe_c(seed)),
                py: None,
                asm: None,
            }
        }
        CheckKind::SanitizerNeutralOutput => {
            return conformance::CorpusEntry {
                name: name.to_owned(),
                note: "On this generated memory-safe program, the sanitized VM \
                       prints the same output and exits with the same code as the \
                       plain VM — pins that sanitizer traps are observations, \
                       never behaviour changes."
                    .into(),
                seed,
                check,
                c: Some(gen::render_c(&gen::gen_program(seed))),
                py: None,
                asm: None,
            }
        }
        _ => {}
    }
    let mut fails: Box<dyn FnMut(&gen::Program) -> bool> = match check {
        // The wire-fault and supervision scenarios reproduce with any
        // program the generator emits; shrinking keeps only what the
        // scenario needs to exchange a handful of frames.
        CheckKind::DuplicateFaultRecovery
        | CheckKind::TruncateFaultRecovery
        | CheckKind::ChaosCrashRecovery
        | CheckKind::RespawnStormDegraded => Box::new(move |p: &gen::Program| {
            let entry = probe_entry(seed, check, p);
            run_entry(&entry).is_ok()
        }),
        // Pins the truncating-vs-floor modulo normalization: keep the
        // smallest program whose C and Py renderings agree while still
        // printing a negative value before the residue line.
        CheckKind::CrossLanguageOutput => Box::new(move |p: &gen::Program| {
            let c = gen::render_c(p);
            let program = match minic::compile("probe.c", &c) {
                Ok(prog) => prog,
                Err(_) => return false,
            };
            let mut vm = minic::vm::Vm::new(&program);
            if vm.run_to_completion().is_err() {
                return false;
            }
            let prints_negative = vm.output().lines().any(|l| l.trim_start().starts_with('-'));
            prints_negative && run_entry(&probe_entry(seed, check, p)).is_ok()
        }),
        other => panic!("no shrink predicate for {other:?}"),
    };
    let note = match check {
        CheckKind::DuplicateFaultRecovery => {
            "A duplicated MI response frame desyncs a legacy bare-wire client \
             (GetExitCode answered with a stale pause report) while the \
             sequence-numbered envelope discards it."
        }
        CheckKind::TruncateFaultRecovery => {
            "A truncated MI response frame surfaces as a typed codec error and \
             the re-issued command succeeds."
        }
        CheckKind::CrossLanguageOutput => {
            "C/Py output equivalence on a program printing a negative value: \
             pins the truncating-modulo normalization in the Py rendering."
        }
        CheckKind::ChaosCrashRecovery => {
            "An engine crash at port call 4 is survived transparently: the \
             supervisor respawns, replays the session manifest, and the trace \
             matches the fault-free run step for step."
        }
        CheckKind::RespawnStormDegraded => {
            "An engine dead on every incarnation exhausts the respawn budget \
             and degrades with a typed SessionDegraded error instead of \
             retrying forever."
        }
        _ => unreachable!(),
    };
    shrink_to_entry(seed, name, note, check, &mut fails)
}

/// Packages an arbitrary candidate program as a throwaway entry so the
/// shrink predicate can reuse `run_entry`'s scenario implementations.
fn probe_entry(seed: u64, check: CheckKind, p: &gen::Program) -> conformance::CorpusEntry {
    conformance::CorpusEntry {
        name: "probe".into(),
        note: String::new(),
        seed,
        check,
        c: Some(gen::render_c(p)),
        py: Some(gen::render_py(p)),
        asm: None,
    }
}
