//! The 200-seed static ⊇ runtime sweep.
//!
//! For every seed, a generated memory-unsafe MiniC program is analyzed
//! statically and executed under the runtime sanitizer; every runtime
//! trap must be covered by a static finding at the same
//! `(kind, function, line)`. A single uncovered trap is a soundness bug
//! in the static checker and fails the sweep with the full report and
//! the offending source attached.

use conformance::{gen_unsafe_c, superset_oracle};
use state::DiagnosticKind;
use std::collections::HashSet;

const SEEDS: u64 = 200;

#[test]
fn static_findings_contain_runtime_traps_across_200_seeds() {
    let mut trapping_seeds = 0u64;
    let mut kinds_seen: HashSet<DiagnosticKind> = HashSet::new();
    for seed in 0..SEEDS {
        let src = gen_unsafe_c(seed);
        let report =
            superset_oracle("unsafe.c", &src).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            report.holds(),
            "seed {seed}: runtime traps escaped the static findings\n\
             uncovered: {:#?}\nstatic: {:#?}\n---\n{src}",
            report.violations,
            report.static_findings,
        );
        if !report.runtime_traps.is_empty() {
            trapping_seeds += 1;
        }
        kinds_seen.extend(report.trapped_kinds());
    }
    // The generator mixes defect and filler gadgets, so not every seed
    // needs to trap — but the sweep is only meaningful if most do, and
    // if every diagnostic kind shows up as a *runtime* trap somewhere.
    assert!(
        trapping_seeds > SEEDS / 2,
        "only {trapping_seeds}/{SEEDS} seeds trapped"
    );
    for kind in DiagnosticKind::ALL {
        assert!(
            kinds_seen.contains(&kind),
            "no seed produced a runtime {kind:?} trap; seen: {kinds_seen:?}"
        );
    }
}
