//! Differential fuzz runs.
//!
//! `fuzz_quick` runs on every `cargo test`. The `#[ignore]`d `fuzz_smoke`
//! tests are the bounded CI fuzz job (deterministic seed ranges, ≥200
//! generated programs per language pair):
//!
//! ```text
//! cargo test -p conformance -- --include-ignored fuzz_smoke
//! ```
//!
//! On divergence, the failure message carries the seed; the shrinker in
//! `conformance::shrink` turns the seed into a minimized corpus entry.

use conformance::Driver;

fn assert_conformant(driver: &Driver, seeds: std::ops::Range<u64>) {
    let mut failures = Vec::new();
    for seed in seeds {
        for d in driver.check_seed(seed) {
            failures.push(d.to_string());
        }
    }
    assert!(
        failures.is_empty(),
        "{} divergence(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn fuzz_quick() {
    let driver = Driver::new();
    assert_conformant(&driver, 0..25);
    let snap = driver.registry().snapshot();
    assert_eq!(snap.counter("conformance.programs_generated"), 50);
    assert_eq!(snap.counter("conformance.divergences"), 0);
    assert_eq!(snap.counter("conformance.pair.c_channel_vs_replay"), 25);
    assert_eq!(snap.counter("conformance.pair.c_unopt_vs_opt"), 25);
    assert_eq!(snap.counter("conformance.pair.py_live_vs_replay"), 25);
    assert_eq!(snap.counter("conformance.pair.c_vs_py_output"), 25);
    assert_eq!(snap.counter("conformance.pair.asm_channel_vs_replay"), 25);
}

#[test]
fn fuzz_quick_control_points() {
    let driver = Driver::new();
    let mut failures = Vec::new();
    for seed in 0..10 {
        let (div, _) = driver.check_control_points_c(seed);
        failures.extend(div.iter().map(|d| d.to_string()));
        let (div, _) = driver.check_control_points_py(seed);
        failures.extend(div.iter().map(|d| d.to_string()));
    }
    assert!(
        failures.is_empty(),
        "{} divergence(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The CI fuzz budget: 200 programs through every in-process pair.
#[test]
#[ignore = "bounded CI fuzz job; run with --include-ignored"]
fn fuzz_smoke() {
    let driver = Driver::new();
    assert_conformant(&driver, 0..200);
    let snap = driver.registry().snapshot();
    assert!(snap.counter("conformance.programs_generated") >= 400);
    assert_eq!(snap.counter("conformance.divergences"), 0);
    for pair in [
        "c_channel_vs_replay",
        "c_unopt_vs_opt",
        "py_live_vs_replay",
        "c_vs_py_output",
        "asm_channel_vs_replay",
    ] {
        assert_eq!(snap.counter(&format!("conformance.pair.{pair}")), 200);
    }
}

/// Control-point reason sequences, live vs replay, across the CI budget.
#[test]
#[ignore = "bounded CI fuzz job; run with --include-ignored"]
fn fuzz_smoke_control_points() {
    let driver = Driver::new();
    let mut failures = Vec::new();
    for seed in 0..50 {
        let (div, _) = driver.check_control_points_c(seed);
        failures.extend(div.iter().map(|d| d.to_string()));
        let (div, _) = driver.check_control_points_py(seed);
        failures.extend(div.iter().map(|d| d.to_string()));
    }
    assert!(
        failures.is_empty(),
        "{} divergence(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The real-process leg: `mi-server` children over stdio pipes must
/// produce byte-identical serialized states to the in-process channel.
#[test]
#[ignore = "spawns child processes; run with --include-ignored"]
fn fuzz_smoke_process() {
    let server = conformance::mi_server_bin().expect("mi_server binary buildable");
    let driver = Driver::new();
    let mut failures = Vec::new();
    for seed in 0..12 {
        let program = conformance::gen::gen_program(seed);
        let c = conformance::gen::render_c(&program);
        failures.extend(
            driver
                .diff_c_channel_vs_process(seed, &c, &server)
                .iter()
                .map(|d| d.to_string()),
        );
        let asm = conformance::gen::render_asm(&conformance::gen::gen_asm(seed));
        failures.extend(
            driver
                .diff_asm_channel_vs_process(seed, &asm, &server)
                .iter()
                .map(|d| d.to_string()),
        );
    }
    assert!(
        failures.is_empty(),
        "{} divergence(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
