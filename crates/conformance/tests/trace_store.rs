//! Trace-store lockstep: the store-backed replay path must be
//! pause-for-pause, state-for-state identical to the live tracker on
//! generated programs — forward, through a disk round-trip, and walking
//! the exact forward sequence backwards.
//!
//! The per-seed legs live in the differential driver itself
//! (`Driver::diff_c_vs_replay` / `diff_asm_vs_replay` now append the
//! store round-trip and reverse-walk checks to every replay pair), so
//! `trace_quick` runs on every `cargo test` and the `#[ignore]`d
//! `trace_sweep_200` is the CI trace gate:
//!
//! ```text
//! cargo test -p conformance -- --include-ignored trace_sweep_200
//! ```

use conformance::gen::{gen_asm, gen_program, render_asm, render_c};
use conformance::Driver;
use easytracker::{MiTracker, Recording, ReplayTracker, Tracker};

fn replay_sweep(driver: &Driver, seeds: std::ops::Range<u64>) {
    let mut failures = Vec::new();
    for seed in seeds {
        let c = render_c(&gen_program(seed));
        for d in driver.diff_c_vs_replay(seed, &c) {
            failures.push(d.to_string());
        }
        let asm = render_asm(&gen_asm(seed));
        for d in driver.diff_asm_vs_replay(seed, &asm) {
            failures.push(d.to_string());
        }
    }
    assert!(
        failures.is_empty(),
        "{} divergence(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn trace_quick() {
    replay_sweep(&Driver::new(), 0..10);
}

/// The CI trace gate: 200 seeds, MiniC and MiniAsm, every pause compared
/// forward, across a disk round-trip, and in reverse.
#[test]
#[ignore = "bounded CI sweep; run with --include-ignored"]
fn trace_sweep_200() {
    replay_sweep(&Driver::new(), 0..200);
}

/// The engine-side recording (`Record` over the MI boundary) and the
/// client-side capture (`Recording::capture` + fold) observe the same
/// execution: seeking the engine's store through MI answers states
/// byte-identical to the capture-built store at every pause.
#[test]
fn mi_recording_matches_capture_at_every_pause() {
    for seed in 0..5u64 {
        let c = render_c(&gen_program(seed));

        // Engine-side: arm Record, single-step to completion.
        let mut live = MiTracker::load_c("gen.c", &c).unwrap();
        live.record(8).unwrap();
        let mut reason = live.start().unwrap();
        while reason.is_alive() {
            reason = live.step().unwrap();
        }
        let (pauses, _, _) = live.trace_stats().unwrap();

        // Client-side: capture a fresh run, fold it into a store.
        let mut fresh = MiTracker::load_c("gen.c", &c).unwrap();
        let recording = Recording::capture(&mut fresh).unwrap();
        fresh.terminate();
        let replay = ReplayTracker::new(recording);
        assert_eq!(pauses, replay.recorded_pauses(), "seed {seed}");

        for n in 0..pauses {
            live.seek(n).unwrap();
            let via_mi = live.get_state().unwrap();
            let via_store = replay.store().state_at(n).unwrap();
            assert_eq!(
                serde_json::to_string(&via_mi).unwrap(),
                serde_json::to_string(&via_store).unwrap(),
                "seed {seed} pause {n}"
            );
        }
        live.terminate();
    }
}
