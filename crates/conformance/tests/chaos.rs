//! The chaos differential: seeded kill/hang schedules against supervised
//! MI sessions.
//!
//! Each seed generates a program, runs it fault-free for reference, then
//! re-runs it with one liveness fault (engine crash or boundary hang)
//! injected at a seeded port-call index. The supervised session must
//! either recover to the exact reference behaviour — same pause-reason
//! sequence, same output, same exit code — or degrade explicitly with
//! [`easytracker::TrackerError::SessionDegraded`]. A silently wrong
//! answer is the only failure.
//!
//! The always-on smoke sweep keeps CI fast; the full 200-schedule sweep
//! behind `#[ignore]` is the acceptance-criteria run, wired into its own
//! CI job with a hard timeout (`cargo test --test chaos -- --ignored`).

use conformance::{ChaosOutcome, Driver};

/// Runs `seeds` chaos schedules and asserts the invariant; returns the
/// outcome tally `(clean, recovered, degraded)`.
fn sweep(driver: &Driver, seeds: std::ops::Range<u64>) -> (usize, usize, usize) {
    let mut tally = (0usize, 0usize, 0usize);
    for seed in seeds {
        let (div, outcome) = driver.check_chaos_c(seed);
        assert!(
            div.is_empty(),
            "seed {seed} diverged silently under chaos:\n{}",
            div.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        match outcome {
            ChaosOutcome::Clean => tally.0 += 1,
            ChaosOutcome::Recovered => tally.1 += 1,
            ChaosOutcome::Degraded => tally.2 += 1,
        }
    }
    tally
}

/// A small always-on sweep: every schedule recovers or degrades, never
/// silently diverges, and the supervisor's work is visible in metrics.
#[test]
fn chaos_smoke_sweep_recovers_or_degrades() {
    let driver = Driver::new();
    let (clean, recovered, degraded) = sweep(&driver, 0..12);
    // The schedules are seeded to land inside the run, so the faults
    // must actually fire: an all-clean sweep means the harness is inert.
    assert!(
        recovered + degraded > 0,
        "no chaos fault ever fired (clean={clean})"
    );
    let snap = driver.registry().snapshot();
    assert!(
        snap.counter_prefix_sum("conformance.chaos.injected.") > 0,
        "chaos injections not counted"
    );
    if recovered > 0 {
        assert!(
            snap.counter("mi.respawns") + snap.counter("mi.retries") > 0,
            "recoveries happened without supervisor work being counted"
        );
    }
    assert_eq!(snap.counter("conformance.chaos.degraded"), degraded as u64);
}

/// The acceptance sweep: 200 seeded kill/hang schedules. Run with
/// `cargo test -p conformance --test chaos --release -- --ignored`.
#[test]
#[ignore = "full 200-schedule sweep; run explicitly (CI chaos job)"]
fn chaos_full_sweep_200_schedules() {
    let driver = Driver::new();
    let (clean, recovered, degraded) = sweep(&driver, 0..200);
    // Most schedules must exercise the supervisor rather than miss.
    assert!(
        recovered + degraded >= 100,
        "too few schedules fired a fault: clean={clean} recovered={recovered} degraded={degraded}"
    );
    assert!(recovered > 0, "no schedule ever recovered");
    let snap = driver.registry().snapshot();
    assert!(snap.counter("mi.respawns") > 0);
    assert!(
        snap.histogram("mi.supervisor.recovery").is_some(),
        "recovery latency histogram missing"
    );
    println!("chaos sweep: {clean} clean, {recovered} recovered, {degraded} degraded");
}
