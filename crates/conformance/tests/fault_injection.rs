//! MI fault-injection conformance.
//!
//! Every [`FaultKind`] is driven through a real client/server pair at two
//! levels: the raw MI [`Client`], and a full [`MiTracker`] speaking
//! through the faulty port. The contract at both levels is the same —
//! each injected wire fault surfaces as a *typed* error (or is
//! transparently absorbed by the sequence-numbered envelope), never a
//! panic, a hang, or a silent desync, and re-issuing the failed command
//! succeeds. Liveness faults (hang, stall, crash) have their own
//! contract: a hang expires the caller's deadline as [`MiError::Timeout`],
//! a stall merely delays the answer, and a crash is a permanent
//! [`MiError::Disconnected`].

use conformance::gen;
use conformance::{FaultKind, FaultTransport};
use easytracker::{MiTracker, Tracker, TrackerError};
use mi::minic_engine::MinicEngine;
use mi::protocol::{Command, Response};
use mi::transport::{duplex, ChannelTransport};
use mi::{Client, MiError, Server};
use std::time::{Duration, Instant};

fn spawn_engine(src: &str, endpoint: ChannelTransport) -> std::thread::JoinHandle<()> {
    let program = minic::compile("fault.c", src).expect("generated C compiles");
    std::thread::spawn(move || {
        let _ = Server::new(MinicEngine::new(&program), endpoint).serve();
    })
}

fn source() -> String {
    gen::render_c(&gen::gen_program(0))
}

/// Each wire-fault kind at the raw client: typed error or transparent
/// absorption, recovery on re-issue, and the injection counted.
#[test]
fn every_fault_kind_is_typed_and_recoverable_at_the_client() {
    for kind in FaultKind::WIRE {
        let reg = obs::Registry::new();
        let (a, b) = duplex();
        let handle = spawn_engine(&source(), b);
        // Fault the response to the *second* command, so the session is
        // already warm when the wire misbehaves.
        let mut client =
            Client::with_registry(FaultTransport::single(a, 2, kind, reg.clone()), reg.clone());
        client.call(Command::Start).expect("clean start");

        match kind {
            FaultKind::Truncate | FaultKind::Corrupt => match client.call(Command::GetExitCode) {
                Err(MiError::Codec(_)) => {}
                other => panic!(
                    "{}: expected a typed codec error, got {other:?}",
                    kind.name()
                ),
            },
            FaultKind::Eof => match client.call(Command::GetExitCode) {
                Err(MiError::Disconnected) => {}
                other => panic!("{}: expected Disconnected, got {other:?}", kind.name()),
            },
            FaultKind::Duplicate => {
                // The duplicate is absorbed: the first answer is correct...
                match client.call(Command::GetExitCode) {
                    Ok(Response::ExitCode(None)) => {}
                    other => panic!("{}: expected the real answer, got {other:?}", kind.name()),
                }
            }
            other => unreachable!("{} is not a wire fault", other.name()),
        }

        // ...and in every case the re-issued (or next) command succeeds:
        // the envelope discards whatever stale frame the fault left behind.
        match client.call(Command::GetExitCode) {
            Ok(Response::ExitCode(None)) => {}
            other => panic!("{}: recovery call failed: {other:?}", kind.name()),
        }

        let _ = client.call(Command::Terminate);
        handle.join().expect("engine thread lives");

        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(&format!("conformance.fault.injected.{}", kind.name())),
            1,
            "{}: injection not counted",
            kind.name()
        );
        if matches!(kind, FaultKind::Duplicate | FaultKind::Eof) {
            assert_eq!(
                snap.counter("mi.client.stale_frames"),
                1,
                "{}: stale frame not discarded by sequence number",
                kind.name()
            );
        }
    }
}

/// Each wire-fault kind through the full tracker API: [`TrackerError`]
/// surfaces (or the fault is absorbed), and afterwards the tracker still
/// drives the program to completion with the right output.
#[test]
fn every_fault_kind_is_recoverable_at_the_tracker() {
    let src = source();
    // Reference run over a clean channel for the expected output.
    let mut clean = MiTracker::load_c("fault.c", &src).expect("load");
    clean.start().expect("start");
    let mut reason = clean.resume().expect("resume");
    while reason.is_alive() {
        reason = clean.resume().expect("resume");
    }
    let expected_output = clean.get_output().expect("output");
    let expected_exit = clean.get_exit_code().expect("exit");
    clean.terminate();
    assert!(!expected_output.is_empty());

    for kind in FaultKind::WIRE {
        let reg = obs::Registry::new();
        let (a, b) = duplex();
        let handle = spawn_engine(&src, b);
        let port =
            Client::with_registry(FaultTransport::single(a, 2, kind, reg.clone()), reg.clone());
        let mut tracker = MiTracker::from_port_with_registry(Box::new(port), reg.clone());
        tracker.start().expect("clean start");

        // The faulted call: get_state is the second command on the wire.
        let first = tracker.get_state();
        match kind {
            FaultKind::Duplicate => {
                first.unwrap_or_else(|e| panic!("{}: absorbed fault errored: {e}", kind.name()));
            }
            _ => match first {
                Err(TrackerError::Protocol(_)) => {}
                other => panic!(
                    "{}: expected a typed protocol error through the tracker, got {other:?}",
                    kind.name()
                ),
            },
        }

        // Recovery: the same inspection re-issued, then run to completion.
        let state = tracker.get_state().expect("re-issued inspection succeeds");
        assert_eq!(state.frame.name(), "main");
        let mut reason = tracker.resume().expect("resume after fault");
        while reason.is_alive() {
            reason = tracker.resume().expect("resume");
        }
        assert_eq!(tracker.get_output().expect("output"), expected_output);
        assert_eq!(tracker.get_exit_code().expect("exit"), expected_exit);
        tracker.terminate();
        handle.join().expect("engine thread lives");

        assert_eq!(
            reg.snapshot()
                .counter(&format!("conformance.fault.injected.{}", kind.name())),
            1,
            "{}: injection not counted",
            kind.name()
        );
    }
}

/// A plan with several faults in one session: every one is counted and
/// the session survives them all.
#[test]
fn a_multi_fault_plan_is_survived_and_fully_counted() {
    let reg = obs::Registry::new();
    let (a, b) = duplex();
    let handle = spawn_engine(&source(), b);
    let plan = vec![
        (2, FaultKind::Truncate),
        (4, FaultKind::Duplicate),
        (6, FaultKind::Eof),
        (8, FaultKind::Corrupt),
    ];
    let mut client = Client::with_registry(FaultTransport::new(a, plan, reg.clone()), reg.clone());
    client.call(Command::Start).expect("clean start");
    // Issue enough commands to trip every planned fault; each recv index
    // not in the plan must deliver the real answer.
    let mut typed_errors = 0;
    for _ in 0..10 {
        match client.call(Command::GetExitCode) {
            Ok(Response::ExitCode(None)) => {}
            Err(MiError::Codec(_) | MiError::Disconnected) => typed_errors += 1,
            other => panic!("untyped outcome under the fault plan: {other:?}"),
        }
    }
    let _ = client.call(Command::Terminate);
    handle.join().expect("engine thread lives");

    let snap = reg.snapshot();
    for kind in FaultKind::WIRE {
        assert_eq!(
            snap.counter(&format!("conformance.fault.injected.{}", kind.name())),
            1,
            "{} missing from the counter set",
            kind.name()
        );
    }
    // Truncate, Eof and Corrupt produce one typed error each; Duplicate
    // is absorbed.
    assert_eq!(typed_errors, 3);
}

/// A hung boundary expires the caller's deadline as a typed
/// [`MiError::Timeout`] — the call never blocks past the deadline — and
/// because the hang does not consume the in-flight frame, the envelope
/// discards it as stale and the re-issued command succeeds.
#[test]
fn hang_faults_expire_the_deadline_and_recover_on_reissue() {
    let reg = obs::Registry::new();
    let (a, b) = duplex();
    let handle = spawn_engine(&source(), b);
    let mut client = Client::with_registry(
        FaultTransport::single(a, 2, FaultKind::Hang, reg.clone()),
        reg.clone(),
    );
    client.call(Command::Start).expect("clean start");

    let deadline = Duration::from_millis(200);
    let begin = Instant::now();
    match client.call_deadline(Command::GetExitCode, Some(deadline)) {
        Err(MiError::Timeout) => {}
        other => panic!("expected Timeout from the hang, got {other:?}"),
    }
    let elapsed = begin.elapsed();
    assert!(
        elapsed >= deadline - Duration::from_millis(10),
        "returned well before the deadline: {elapsed:?}"
    );
    assert!(
        elapsed < deadline * 10,
        "blocked far past the deadline: {elapsed:?}"
    );

    // The answer to the timed-out command is still in the pipe; the
    // sequence number lets the next call discard it and take its own.
    match client.call(Command::GetExitCode) {
        Ok(Response::ExitCode(None)) => {}
        other => panic!("re-issue after the hang failed: {other:?}"),
    }
    let _ = client.call(Command::Terminate);
    handle.join().expect("engine thread lives");

    let snap = reg.snapshot();
    assert_eq!(snap.counter("conformance.fault.injected.hang"), 1);
    assert_eq!(snap.counter("mi.client.stale_frames"), 1);
}

/// A stalled boundary delays the answer but still delivers it: a
/// generous deadline absorbs the stall with no error at all.
#[test]
fn stall_faults_delay_but_deliver() {
    let reg = obs::Registry::new();
    let (a, b) = duplex();
    let handle = spawn_engine(&source(), b);
    let mut client = Client::with_registry(
        FaultTransport::single(a, 2, FaultKind::Stall, reg.clone()),
        reg.clone(),
    );
    client.call(Command::Start).expect("clean start");
    match client.call_deadline(Command::GetExitCode, Some(Duration::from_secs(10))) {
        Ok(Response::ExitCode(None)) => {}
        other => panic!("stall should only delay, got {other:?}"),
    }
    let _ = client.call(Command::Terminate);
    handle.join().expect("engine thread lives");
    assert_eq!(
        reg.snapshot().counter("conformance.fault.injected.stall"),
        1
    );
}

/// A crashed boundary is a permanent, typed [`MiError::Disconnected`]:
/// the first call fails and so does every later one — recovery at this
/// level is impossible by design; it is the supervisor's job.
#[test]
fn crash_faults_are_permanent_disconnects() {
    let reg = obs::Registry::new();
    let (a, b) = duplex();
    let handle = spawn_engine(&source(), b);
    let mut client = Client::with_registry(
        FaultTransport::single(a, 2, FaultKind::Crash, reg.clone()),
        reg.clone(),
    );
    client.call(Command::Start).expect("clean start");
    match client.call(Command::GetExitCode) {
        Err(MiError::Disconnected) => {}
        other => panic!("expected Disconnected from the crash, got {other:?}"),
    }
    match client.call(Command::GetExitCode) {
        Err(MiError::Disconnected) => {}
        other => panic!("a crash must be permanent, got {other:?}"),
    }
    drop(client);
    handle.join().expect("engine thread lives");
    assert_eq!(
        reg.snapshot().counter("conformance.fault.injected.crash"),
        1
    );
}
