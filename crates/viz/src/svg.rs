//! A minimal SVG document builder.
//!
//! Only the features the diagram renderers need: rectangles, lines,
//! text, polylines with arrowheads, and groups. Text is XML-escaped.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

/// Escapes text content for XML.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl SvgDoc {
    /// Creates a document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    /// Grows the canvas if needed so `(x, y)` is inside it (plus margin).
    pub fn ensure(&mut self, x: f64, y: f64) {
        self.width = self.width.max(x + 10.0);
        self.height = self.height.max(y + 10.0);
    }

    /// Adds a filled, stroked rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: &str) {
        self.ensure(x + w, y + h);
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}" stroke="{stroke}"/>"#
        );
    }

    /// Adds a text label (`anchor`: start/middle/end).
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, fill: &str, content: &str) {
        self.ensure(x, y);
        let content = escape(content);
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{size:.1}" font-family="monospace" text-anchor="{anchor}" fill="{fill}">{content}</text>"#
        );
    }

    /// Adds a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        self.ensure(x1.max(x2), y1.max(y2));
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{stroke}" stroke-width="{width:.1}"/>"#
        );
    }

    /// Adds an arrow from `(x1, y1)` to `(x2, y2)` with a small head.
    pub fn arrow(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str) {
        self.line(x1, y1, x2, y2, stroke, 1.5);
        // Arrowhead: two short lines at the target.
        let dx = x2 - x1;
        let dy = y2 - y1;
        let len = (dx * dx + dy * dy).sqrt().max(0.001);
        let (ux, uy) = (dx / len, dy / len);
        let (px, py) = (-uy, ux);
        let hx = x2 - ux * 8.0;
        let hy = y2 - uy * 8.0;
        self.line(x2, y2, hx + px * 4.0, hy + py * 4.0, stroke, 1.5);
        self.line(x2, y2, hx - px * 4.0, hy - py * 4.0, stroke, 1.5);
    }

    /// Adds a cross (used for invalid pointers).
    pub fn cross(&mut self, x: f64, y: f64, r: f64, stroke: &str) {
        self.line(x - r, y - r, x + r, y + r, stroke, 2.0);
        self.line(x - r, y + r, x + r, y - r, stroke, 2.0);
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_wellformed_document() {
        let mut doc = SvgDoc::new(100.0, 50.0);
        doc.rect(5.0, 5.0, 20.0, 10.0, "#eee", "black");
        doc.text(10.0, 12.0, 10.0, "start", "black", "x < 3 & \"ok\"");
        doc.arrow(0.0, 0.0, 30.0, 30.0, "blue");
        doc.cross(50.0, 25.0, 5.0, "red");
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("&lt; 3 &amp; &quot;ok&quot;"));
        assert_eq!(svg.matches("<rect").count(), 2); // background + rect
    }

    #[test]
    fn canvas_grows_to_fit() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.rect(0.0, 0.0, 500.0, 300.0, "none", "black");
        let svg = doc.finish();
        assert!(svg.contains("width=\"510\""));
        assert!(svg.contains("height=\"310\""));
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
