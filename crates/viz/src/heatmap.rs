//! Per-line heatmaps: source listings annotated with profile units.
//!
//! Input is plain `(line, units)` data from a profile report; rendering
//! follows the [`crate::source`] listing idiom so tools can show the
//! heatmap where they showed the plain listing.

use crate::svg::SvgDoc;
use std::fmt::Write as _;

/// Options for heatmap rendering.
#[derive(Debug, Clone, Default)]
pub struct HeatmapView {
    /// Title (usually the file name).
    pub title: Option<String>,
    /// Label for the unit column (e.g. `"ops"`, `"hits"`).
    pub unit: Option<String>,
}

impl HeatmapView {
    /// Sets the title (builder style).
    #[must_use]
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Sets the unit-column label (builder style).
    #[must_use]
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = Some(unit.into());
        self
    }

    /// Renders an annotated listing: a unit count and a heat bar in
    /// front of every line that has one.
    ///
    /// # Examples
    ///
    /// ```
    /// let text = viz::heatmap::HeatmapView::default()
    ///     .render_text("a = 1\nb = 2", &[(2, 10)]);
    /// assert!(text.contains("10"));
    /// assert!(text.contains("| b = 2"));
    /// ```
    pub fn render_text(&self, source: &str, lines: &[(u32, u64)]) -> String {
        const BAR: usize = 8;
        let hottest = lines.iter().map(|&(_, u)| u).max().unwrap_or(0);
        let mut out = String::new();
        if let Some(t) = &self.title {
            let unit = self.unit.as_deref().unwrap_or("units");
            let _ = writeln!(out, "── {t} ({unit}) ──");
        }
        for (i, line) in source.lines().enumerate() {
            let n = (i + 1) as u32;
            let units = lines
                .iter()
                .find(|&&(l, _)| l == n)
                .map(|&(_, u)| u)
                .unwrap_or(0);
            if units == 0 {
                let _ = writeln!(out, "{:>10} {} {n:>3} | {line}", "", " ".repeat(BAR));
            } else {
                let filled = ((units * BAR as u64).div_ceil(hottest.max(1)) as usize).min(BAR);
                let bar = format!("{}{}", "▇".repeat(filled), " ".repeat(BAR - filled));
                let _ = writeln!(out, "{units:>10} {bar} {n:>3} | {line}");
            }
        }
        out
    }

    /// Renders the listing as SVG with heat-shaded line backgrounds.
    pub fn render_svg(&self, source: &str, lines: &[(u32, u64)]) -> String {
        const ROW: f64 = 15.0;
        let hottest = lines.iter().map(|&(_, u)| u).max().unwrap_or(0);
        let src_lines: Vec<&str> = source.lines().collect();
        let mut doc = SvgDoc::new(520.0, 30.0 + src_lines.len() as f64 * ROW);
        let mut y = 18.0;
        if let Some(t) = &self.title {
            doc.text(14.0, y, 12.0, "start", "black", t);
            y += 18.0;
        }
        for (i, line) in src_lines.iter().enumerate() {
            let n = (i + 1) as u32;
            let ly = y + i as f64 * ROW;
            let units = lines
                .iter()
                .find(|&&(l, _)| l == n)
                .map(|&(_, u)| u)
                .unwrap_or(0);
            if units > 0 && hottest > 0 {
                // Heat ramps white → red with intensity.
                let heat = units as f64 / hottest as f64;
                let chan = (255.0 - heat * 120.0) as u32;
                let fill = format!("#ff{chan:02x}{chan:02x}");
                doc.rect(10.0, ly - 11.0, 500.0, ROW, &fill, "none");
                doc.text(118.0, ly, 9.0, "end", "#822", &units.to_string());
            }
            doc.text(130.0, ly, 10.0, "start", "#999", &format!("{n:>3}"));
            doc.text(158.0, ly, 10.0, "start", "black", line);
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int main() {\nint x = 1;\nreturn x;\n}";

    #[test]
    fn text_annotates_hot_lines_and_leaves_cold_ones_blank() {
        let text = HeatmapView::default()
            .with_title("t.c")
            .with_unit("ops")
            .render_text(SRC, &[(2, 40), (3, 10)]);
        assert!(text.contains("── t.c (ops) ──"));
        assert!(text.contains("40"), "{text}");
        assert!(text.contains("| int x = 1;"));
        // Line 1 has no units: no count in front of it.
        let first = text.lines().nth(1).unwrap();
        assert!(first.trim_start().starts_with("1 | int main"), "{first}");
        // The hottest line has the longest bar.
        let hot_bars = |l: &str| l.chars().filter(|&c| c == '▇').count();
        let l2 = text.lines().nth(2).unwrap();
        let l3 = text.lines().nth(3).unwrap();
        assert!(hot_bars(l2) > hot_bars(l3), "{text}");
    }

    #[test]
    fn svg_shades_by_heat() {
        let svg = HeatmapView::default().render_svg(SRC, &[(2, 40), (3, 10)]);
        // The hottest line gets the strongest shade.
        assert!(svg.contains("#ff8787"), "{svg}");
        assert!(svg.contains("int x = 1;"));
    }

    #[test]
    fn empty_profile_renders_plain_listing() {
        let text = HeatmapView::default().render_text(SRC, &[]);
        assert_eq!(text.lines().count(), 4);
        assert!(!text.contains('▇'));
    }
}
